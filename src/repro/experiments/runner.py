"""Command-line experiment runner.

Examples::

    python -m repro.experiments.runner --all
    python -m repro.experiments.runner figure3 figure4 --quick
    python -m repro.experiments.runner --all --out results/ --jobs 4

``--jobs N`` fans independent experiments out over N worker processes
(and, when a single experiment is requested, parallelizes its phase-1
functional cache passes instead).  Every experiment is deterministic, so
results — including ``--out`` files — are byte-identical for any job
count; only wall-clock changes.  Results print in request order either
way.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'A Unified Architectural "
            "Tradeoff Methodology' (Chen & Somani, ISCA 1994)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (available: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller traces and sparser sweeps (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write <id>.txt and <id>.csv into DIR",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent experiments (default: 1); "
        "results are identical for any N",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="run the paper experiments, check every claim, write a "
        "markdown reproduction scorecard to FILE, and print it",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    return args


def _run_one(experiment_id: str, quick: bool) -> tuple[ExperimentResult, float]:
    """Worker: run one experiment and time it.

    Top-level so it pickles for :class:`ProcessPoolExecutor`; each worker
    process recomputes from scratch (the memoization caches in
    :mod:`repro.experiments._phi` are per-process).
    """
    started = time.perf_counter()
    result = run_experiment(experiment_id, quick=quick)
    return result, time.perf_counter() - started


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    args = _parse_args(argv)
    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.report:
        from repro.experiments.report import write_report

        path = write_report(args.report, quick=args.quick)
        print(path.read_text())
        print(f"[report written to {path}]")
        return 0
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print("nothing to run: pass experiment ids or --all", file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    if args.jobs > 1 and len(ids) > 1:
        # Fan whole experiments out across processes; consume futures in
        # request order so stdout and --out files match a sequential run.
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(args.jobs, len(ids))) as pool:
            futures = [
                pool.submit(_run_one, experiment_id, args.quick)
                for experiment_id in ids
            ]
            outcomes = [future.result() for future in futures]
    elif args.jobs > 1:
        # One experiment: parallelize inside it (phase-1 extraction).
        from repro.experiments._phi import set_phase1_jobs

        set_phase1_jobs(args.jobs)
        try:
            outcomes = [_run_one(experiment_id, args.quick) for experiment_id in ids]
        finally:
            set_phase1_jobs(1)
    else:
        outcomes = [_run_one(experiment_id, args.quick) for experiment_id in ids]

    for experiment_id, (result, elapsed) in zip(ids, outcomes):
        print(result.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
        if args.out:
            for path in result.save(args.out):
                print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
