"""Command-line experiment runner.

Examples::

    python -m repro.experiments.runner --all
    python -m repro.experiments.runner figure3 figure4 --quick
    python -m repro.experiments.runner --all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'A Unified Architectural "
            "Tradeoff Methodology' (Chen & Somani, ISCA 1994)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (available: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller traces and sparser sweeps (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write <id>.txt and <id>.csv into DIR",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="run the paper experiments, check every claim, write a "
        "markdown reproduction scorecard to FILE, and print it",
    )
    return parser.parse_args(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    args = _parse_args(argv)
    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.report:
        from repro.experiments.report import write_report

        path = write_report(args.report, quick=args.quick)
        print(path.read_text())
        print(f"[report written to {path}]")
        return 0
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print("nothing to run: pass experiment ids or --all", file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    for experiment_id in ids:
        started = time.perf_counter()
        result = run_experiment(experiment_id, quick=args.quick)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
        if args.out:
            for path in result.save(args.out):
                print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
