"""Ablation: latency-hiding features in the hit-ratio currency.

Section 3.3 notes that prefetching shrinks the effective ``R`` (only
unhidden misses stall the processor); the related work cites victim
caches (Jouppi) and prefetching-vs-non-blocking studies (Chen & Baer).
This ablation measures both on the stand-in traces and expresses them in
the paper's common currency:

* a next-line prefetcher's coverage, converted to the hit-ratio gain it
  is worth;
* a 4-line victim buffer's direct hit-ratio gain;

then compares each against what doubling the bus is worth at the same
operating point — extending the paper's Figure 3-5 ranking to two
features it mentions but does not curve.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.cache.prefetch import PrefetchPolicy, prefetch_covered_fraction
from repro.cache.victim import victim_hit_ratio_gain
from repro.core.bus_width import hit_ratio_gain_equivalent_to_doubling
from repro.core.params import SystemConfig
from repro.experiments._phi import spec92_events, spec92_traces
from repro.experiments.base import ExperimentResult
from repro.trace.spec92 import SPEC92_PROFILES
from repro.util.tables import format_table

CACHE = CacheConfig(8192, 32, 2)
CONFIG = SystemConfig(4, 32, 8.0)


def run(quick: bool = False) -> ExperimentResult:
    """Prefetch coverage and victim gain per program, vs bus doubling."""
    length = 6_000 if quick else 20_000
    result = ExperimentResult(
        experiment_id="ablation_latency_hiding",
        title="Prefetching and victim caching in the hit-ratio currency",
    )
    rows = []
    traces = spec92_traces(length, seed=7)
    for name in SPEC92_PROFILES:
        trace = traces[name]
        coverage = prefetch_covered_fraction(trace, CACHE, PrefetchPolicy.TAGGED)
        victim_gain = victim_hit_ratio_gain(trace, CACHE, victim_lines=4)

        # Convert coverage to a hit-ratio gain: hiding a fraction c of
        # misses is raising HR by c * (1 - HR).  The baseline HR comes
        # from the two-phase engine (write-allocate write-back classifies
        # loads and stores identically, so this matches the old
        # read-probe loop bit for bit, without stepping a Cache).
        hr = spec92_events(name, length, CACHE).stats.hit_ratio
        prefetch_gain = coverage * (1.0 - hr)
        bus_gain = hit_ratio_gain_equivalent_to_doubling(CONFIG, hr)
        rows.append(
            (
                name,
                f"{hr:.1%}",
                f"{coverage:.0%}",
                f"{100 * prefetch_gain:.2f}%",
                f"{100 * victim_gain:.2f}%",
                f"{100 * bus_gain:.2f}%",
            )
        )
    result.tables.append(
        format_table(
            [
                "program",
                "HR",
                "prefetch coverage",
                "prefetch gain",
                "victim gain",
                "bus-doubling gain",
            ],
            rows,
        )
    )
    result.notes.append(
        "sequential programs: next-line prefetching covers most misses "
        "and out-values doubling the bus (Chen & Baer's finding that "
        "prefetching beats non-blocking, recast in hit-ratio currency)."
    )
    result.notes.append(
        "scattered programs: coverage collapses and the bus wins — the "
        "methodology exposes the workload dependence a single ranking "
        "would hide."
    )
    return result
