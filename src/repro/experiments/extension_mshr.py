"""Extension: non-blocking caches with multiple outstanding misses.

Section 5.3 declines to evaluate the NB stalling factor but predicts
that "subsequent load/store accesses will be stalled unless the
mechanism for supporting multiple load/store miss is provided".  This
extension evaluates exactly that mechanism (MSHRs) and lands on a
sharper version of the paper's skepticism:

* an ideal NB cache with ONE outstanding miss already captures nearly
  all the benefit — phi drops ~10-20 % below full stalling;
* adding MSHRs barely moves phi on any of the six workloads, because
  the single external bus serializes the fills: two misses cannot
  overlap each other, only computation;
* therefore NB's value is bounded by the same bus the other features
  fight over — consistent with Chen & Baer's finding (paper ref. [9])
  that prefetching outperforms non-blocking caches.
"""

from __future__ import annotations

from repro.cache.cache import CacheConfig
from repro.cpu.nonblocking import mshr_stall_factors
from repro.cpu.replay import replay
from repro.core.stalling import StallPolicy
from repro.experiments.base import ExperimentResult
from repro.experiments._phi import spec92_events
from repro.memory.mainmem import MainMemory
from repro.trace.spec92 import SPEC92_PROFILES
from repro.util.tables import format_table

CACHE = CacheConfig(8192, 32, 2)
BETA_M = 8.0
BUS_WIDTH = 4
MSHR_COUNTS = (1, 2, 4, 8)


def run(quick: bool = False) -> ExperimentResult:
    """NB phi per MSHR count per workload, vs the FS baseline."""
    length = 6_000 if quick else 20_000
    result = ExperimentResult(
        experiment_id="extension_mshr",
        title="Non-blocking cache: stalling factor vs MSHR count (beta_m=8)",
    )
    rows = []
    spreads = []
    for name in SPEC92_PROFILES:
        events = spec92_events(name, length, CACHE, seed=7)
        fs = replay(
            events, MainMemory(BETA_M, BUS_WIDTH), StallPolicy.FULL_STALL
        )
        by_count = mshr_stall_factors(
            [], CACHE, BETA_M, BUS_WIDTH, MSHR_COUNTS, events=events
        )
        spreads.append(by_count[MSHR_COUNTS[0]] - by_count[MSHR_COUNTS[-1]])
        rows.append(
            (
                name,
                fs.stall_factor,
                *(by_count[count] for count in MSHR_COUNTS),
            )
        )
    result.tables.append(
        format_table(
            ["program", "FS phi", *(f"NB k={c}" for c in MSHR_COUNTS)],
            rows,
        )
    )
    worst_spread = max(spreads)
    result.notes.append(
        f"largest phi change from 1 to {MSHR_COUNTS[-1]} MSHRs: "
        f"{worst_spread:.2f} (of L/D = 8) — extra MSHRs are nearly "
        "worthless on a single bus, where fills serialize."
    )
    result.notes.append(
        "the NB-vs-FS gap (one outstanding miss) is the real benefit; "
        "this quantifies the paper's Section 5.3 caution about "
        "non-blocking caches."
    )
    return result
