"""Figure 1 — stalling factors from trace-driven simulation.

Average stalling factor (as a percentage of L/D) over the six SPEC92
stand-in programs for the BL, BNL1, BNL2 and BNL3 features, on an 8 KB
two-way write-allocate cache with 32-byte lines and a 4-byte bus, swept
over the memory cycle time.
"""

from __future__ import annotations

from repro.core.stalling import MEASURED_POLICIES
from repro.experiments._phi import measured_phi_percentages, FULL_INSTRUCTIONS, QUICK_INSTRUCTIONS
from repro.experiments.base import ExperimentResult

CACHE_BYTES = 8192
LINE_SIZE = 32
ASSOCIATIVITY = 2
BUS_WIDTH = 4

FULL_BETAS = (2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 40.0, 48.0)
QUICK_BETAS = (4.0, 8.0, 16.0, 32.0)


def run(quick: bool = False) -> ExperimentResult:
    """Measure the four partial-stalling policies across beta_m."""
    betas = QUICK_BETAS if quick else FULL_BETAS
    n_instructions = QUICK_INSTRUCTIONS if quick else FULL_INSTRUCTIONS
    result = ExperimentResult(
        experiment_id="figure1",
        title=(
            "Stalling factor (% of L/D), 8K 2-way write-allocate, "
            "L=32 B, D=4 B, six SPEC92 stand-ins"
        ),
        x_label="memory cycle time per 4 bytes (beta_m)",
        x_values=list(betas),
    )
    for policy in MEASURED_POLICIES:
        percentages = measured_phi_percentages(
            policy,
            LINE_SIZE,
            CACHE_BYTES,
            ASSOCIATIVITY,
            betas,
            BUS_WIDTH,
            n_instructions,
        )
        result.add_series(policy.value, list(percentages))

    bnl3 = result.series["BNL3"]
    small = [100.0 - v for beta, v in zip(betas, bnl3) if beta < 15]
    if small:
        result.notes.append(
            f"BNL3 read-miss latency reduction for beta_m < 15: "
            f"{min(small):.0f}-{max(small):.0f}% (paper: about 20-30%)."
        )
    result.notes.append(
        "BL, BNL1 and BNL2 stay very high and rise with beta_m; BNL1 and "
        "BNL2 are nearly indistinguishable (paper Figure 1)."
    )
    return result
