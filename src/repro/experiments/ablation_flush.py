"""Ablation: sensitivity of the unified comparison to the flush ratio.

The paper fixes alpha = 0.5 everywhere ("the other value of alpha can
also be used", Section 5.1).  This ablation sweeps alpha over [0, 1] at
the Figure 4 operating point and reports each feature's traded hit
ratio, showing which conclusions are alpha-robust:

* the bus > write buffers ranking holds for every alpha > 0 (at alpha=0
  the write buffers have nothing to hide and drop to zero);
* the pipelined crossover does NOT move with alpha (it cancels from the
  crossover inequality — verified numerically here).
"""

from __future__ import annotations

from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig
from repro.core.pipelined import pipelined_miss_volume_ratio
from repro.core.bus_width import miss_volume_ratio_for_doubling
from repro.core.tradeoff import hit_ratio_traded
from repro.experiments.base import ExperimentResult
from repro.util.interp import crossover

BASE_HIT_RATIO = 0.95
FLUSH_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def _crossover_for_alpha(alpha: float, line_size: int = 32) -> float | None:
    betas = [2.0 + 0.25 * i for i in range(73)]  # 2 .. 20
    pipe, bus = [], []
    for beta in betas:
        config = SystemConfig(4, line_size, beta, pipeline_turnaround=2.0)
        pipe.append(hit_ratio_traded(pipelined_miss_volume_ratio(config, alpha), BASE_HIT_RATIO))
        bus.append(
            hit_ratio_traded(
                miss_volume_ratio_for_doubling(config, alpha), BASE_HIT_RATIO
            )
        )
    return crossover(betas, pipe, bus)


def run(quick: bool = False) -> ExperimentResult:
    """Sweep alpha at (L=32, D=4, beta_m=8, q=2)."""
    del quick
    config = SystemConfig(4, 32, 8.0, pipeline_turnaround=2.0)
    result = ExperimentResult(
        experiment_id="ablation_flush",
        title="Flush-ratio (alpha) sensitivity at L=32, D=4, beta_m=8",
        x_label="flush ratio alpha",
        x_values=list(FLUSH_GRID),
    )
    for feature in (
        ArchFeature.DOUBLING_BUS,
        ArchFeature.WRITE_BUFFERS,
        ArchFeature.PIPELINED_MEMORY,
    ):
        traded = [
            100.0
            * hit_ratio_traded(
                feature_miss_ratio(feature, config, alpha), BASE_HIT_RATIO
            )
            for alpha in FLUSH_GRID
        ]
        result.add_series(feature.value, traded)

    bus = result.series[ArchFeature.DOUBLING_BUS.value]
    buffers = result.series[ArchFeature.WRITE_BUFFERS.value]
    interior = [
        (b, w) for b, w, a in zip(bus, buffers, FLUSH_GRID) if 0.0 < a < 1.0
    ]
    ranking_holds = all(b > w for b, w in interior)
    boundary_tie = abs(bus[-1] - buffers[-1]) < 1e-9
    result.notes.append(
        "bus > write buffers for every 0 < alpha < 1: "
        + ("yes" if ranking_holds else "NO")
    )
    result.notes.append(
        "at alpha = 1 the two tie exactly"
        + (" (verified)" if boundary_tie else " — EXPECTED TIE MISSING")
        + ": hiding all copy-backs equals halving all memory traffic."
    )
    crossings = {alpha: _crossover_for_alpha(alpha) for alpha in FLUSH_GRID}
    values = [v for v in crossings.values() if v is not None]
    spread = max(values) - min(values) if values else float("nan")
    result.notes.append(
        f"pipelined-vs-bus crossover vs alpha: spread {spread:.3f} cycles "
        "(analytically zero — alpha cancels from the inequality)."
    )
    result.notes.append(
        "at alpha=0 write buffers are worth exactly 0 (nothing to hide)."
    )
    return result
