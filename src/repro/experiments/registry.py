"""Experiment registry: ids -> run callables."""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    ablation_cache_geometry,
    ablation_dram,
    ablation_flush,
    ablation_latency_hiding,
    ablation_turnaround,
    ablation_write_buffer_depth,
    example1,
    extension_interleaving,
    extension_mshr,
    extension_nb_dependency,
    extension_software_tiling,
    extension_multilevel,
    extension_multiprogramming,
    extension_traffic,
    figure1,
    figure1_eq8,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    table2,
    table3,
)
from repro.experiments.base import ExperimentResult

#: Every reproducible paper artifact, in paper order.
EXPERIMENTS: dict[str, Callable[[bool], ExperimentResult]] = {
    "table2": table2.run,
    "table3": table3.run,
    "figure1": figure1.run,
    "figure1_eq8": figure1_eq8.run,
    "figure2": figure2.run,
    "example1": example1.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    # Ablations of the paper's fixed modelling choices (DESIGN.md).
    "ablation_flush": ablation_flush.run,
    "ablation_turnaround": ablation_turnaround.run,
    "ablation_cache_geometry": ablation_cache_geometry.run,
    "ablation_dram": ablation_dram.run,
    "ablation_latency_hiding": ablation_latency_hiding.run,
    "ablation_write_buffer_depth": ablation_write_buffer_depth.run,
    # Extensions beyond the paper (DESIGN.md: open curves it names).
    "extension_mshr": extension_mshr.run,
    "extension_interleaving": extension_interleaving.run,
    "extension_traffic": extension_traffic.run,
    "extension_multiprogramming": extension_multiprogramming.run,
    "extension_multilevel": extension_multilevel.run,
    "extension_nb_dependency": extension_nb_dependency.run,
    "extension_software_tiling": extension_software_tiling.run,
}


def get_experiment(experiment_id: str) -> Callable[[bool], ExperimentResult]:
    """Look up one experiment's run callable by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(quick)
