"""Shared builder for the Figures 3-5 unified-comparison sweeps."""

from __future__ import annotations

from repro.core.features import ArchFeature
from repro.core.params import SystemConfig
from repro.core.ranking import unified_comparison
from repro.core.stalling import StallPolicy
from repro.experiments._phi import measured_phi_map
from repro.experiments.base import ExperimentResult

BASE_HIT_RATIO = 0.95
FLUSH_RATIO = 0.5
TURNAROUND = 2.0
BUS_WIDTH = 4

FULL_BETAS = tuple(float(b) for b in range(2, 21, 2))
QUICK_BETAS = (2.0, 6.0, 10.0, 14.0, 20.0)

_SERIES_LABELS = {
    ArchFeature.DOUBLING_BUS: "doubling bus",
    ArchFeature.WRITE_BUFFERS: "write buffers",
    ArchFeature.PIPELINED_MEMORY: "pipelined mem",
}


def build_unified_figure(
    experiment_id: str,
    line_size: int,
    stall_policy: StallPolicy,
    quick: bool,
) -> ExperimentResult:
    """One Figure 3/4/5 panel: all feature curves plus the BNL curve.

    ``stall_policy`` selects which measured partially-stalling feature
    (BNL1 for Figures 3-4, BNL3 for Figure 5) appears alongside the
    analytic curves.
    """
    betas = QUICK_BETAS if quick else FULL_BETAS
    config = SystemConfig(
        bus_width=BUS_WIDTH,
        line_size=line_size,
        memory_cycle=betas[0],
        pipeline_turnaround=TURNAROUND,
    )
    phi_map = measured_phi_map(stall_policy, line_size, betas, quick)
    comparison = unified_comparison(
        config,
        BASE_HIT_RATIO,
        betas,
        flush_ratio=FLUSH_RATIO,
        measured_stall_factors=phi_map,
    )

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=(
            f"Architectural tradeoff, 50% flushes, L={line_size}, D=4, "
            f"q=2, base HR=95% ({stall_policy.value} measured)"
        ),
        x_label="non-pipelined memory cycle time per 4 bytes (beta_m)",
        x_values=list(betas),
    )
    for feature, label in _SERIES_LABELS.items():
        result.add_series(
            label,
            [100.0 * v for v in comparison.sweeps[feature].hit_ratio_traded],
        )
    result.add_series(
        stall_policy.value,
        [
            100.0 * v
            for v in comparison.sweeps[ArchFeature.PARTIAL_STALLING].hit_ratio_traded
        ],
    )

    crossover = comparison.pipelined_crossover_vs(ArchFeature.DOUBLING_BUS)
    if line_size == 2 * BUS_WIDTH:
        expectation = (
            "pipelining never overtakes doubling the bus at L = 2D "
            "(paper Figure 3)"
        )
    else:
        expectation = "paper: about five to six clock cycles for q=2, L/D>=2"
    if crossover is None:
        result.notes.append(f"pipelined-vs-bus crossover: none ({expectation}).")
    else:
        result.notes.append(
            f"pipelined-vs-bus crossover at beta_m = {crossover:.2f} "
            f"({expectation})."
        )
    ranking = comparison.ranking_at(betas[-1])
    labels = [
        _SERIES_LABELS.get(feature, stall_policy.value) for feature in ranking
    ]
    result.notes.append(
        "ranking at beta_m="
        f"{betas[-1]:.0f}: {' > '.join(labels)}"
    )
    result.notes.append(
        "solid pipelined curve meets the x axis at beta_m = q = 2."
    )
    return result
