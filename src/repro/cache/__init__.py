"""Cache simulator substrate.

A trace-driven, set-associative cache model with the design axes the
paper's Section 2 enumerates: replacement policy, write handling
(write-back/write-through x write-allocate/write-around), line size, and
split instruction/data organization.  The timing aspects (blocking
behaviour during a fill) live in :mod:`repro.cpu`; this package decides
*hit or miss* and tracks state and statistics.
"""

from repro.cache.address import AddressMap
from repro.cache.cache import AccessOutcome, Cache, CacheConfig
from repro.cache.events import EventStream, extract_events
from repro.cache.hierarchy import SplitCacheSystem
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.multilevel import (
    MultilevelStats,
    TwoLevelCache,
    effective_memory_cycle,
    single_level_equivalent,
)
from repro.cache.prefetch import (
    PrefetchingCache,
    PrefetchPolicy,
    PrefetchStats,
    prefetch_covered_fraction,
)
from repro.cache.stats import CacheStats
from repro.cache.victim import VictimCache, VictimStats, victim_hit_ratio_gain
from repro.cache.write_policy import AllocatePolicy, WritePolicy

__all__ = [
    "AddressMap",
    "Cache",
    "CacheConfig",
    "AccessOutcome",
    "CacheStats",
    "EventStream",
    "extract_events",
    "SplitCacheSystem",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "PLRUPolicy",
    "make_policy",
    "WritePolicy",
    "AllocatePolicy",
    "VictimCache",
    "VictimStats",
    "victim_hit_ratio_gain",
    "PrefetchingCache",
    "PrefetchPolicy",
    "PrefetchStats",
    "prefetch_covered_fraction",
    "TwoLevelCache",
    "MultilevelStats",
    "effective_memory_cycle",
    "single_level_equivalent",
]
