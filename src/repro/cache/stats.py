"""Cache statistics, aligned with the paper's Table 1 quantities."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Mutable counters accumulated by one :class:`repro.cache.Cache`.

    The derived properties map directly onto the paper's parameters:
    ``read_miss_bytes`` is ``R`` (for write-allocate it already includes
    write-miss fills), ``write_around_count`` is ``W``, and
    ``flush_ratio`` is ``alpha``.
    """

    line_size: int
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    write_allocate_fills: int = 0
    write_around_count: int = 0
    write_through_count: int = 0
    flushed_lines: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total references seen."""
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def hits(self) -> int:
        """Total hits."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Total misses (``Lambda_m`` when every miss costs a memory trip)."""
        return self.read_misses + self.write_misses

    @property
    def hit_ratio(self) -> float:
        """``HR`` over all references; 0 when nothing was accessed."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """``MR = 1 - HR``."""
        return 1.0 - self.hit_ratio if self.accesses else 0.0

    @property
    def line_fills(self) -> int:
        """Lines read from memory (read misses + allocated write misses)."""
        return self.read_misses + self.write_allocate_fills

    @property
    def read_miss_bytes(self) -> float:
        """``R`` — bytes fetched from memory on misses."""
        return self.line_fills * self.line_size

    @property
    def flush_bytes(self) -> float:
        """``alpha * R`` — dirty bytes copied back on evictions."""
        return self.flushed_lines * self.line_size

    @property
    def flush_ratio(self) -> float:
        """``alpha`` — copy-back traffic relative to fill traffic."""
        fills = self.read_miss_bytes
        return self.flush_bytes / fills if fills else 0.0
