"""Single-pass reuse-distance phase 1: one profile, every LRU geometry.

The stepping :class:`repro.cache.Cache` answers hit/miss questions for
one geometry per pass — a cold design-space sweep therefore costs
O(geometries x references) of pure-Python stepping.  For the registry's
common case — **LRU, write-back, write-allocate** — the Mattson
inclusion property collapses that product: an LRU set always contains
exactly the ``A`` most recently touched distinct lines mapping to it, so
a reference hits iff its per-set *stack distance* (distinct lines of the
same set touched since its previous touch) is below the associativity.
One reuse-distance pass over the trace answers **every** size and
associativity at once; per-geometry event streams become O(refs log
refs) numpy arithmetic instead of stepping.

The module is layered as memoizable views so a sweep shares work:

``ReuseProfile``
    Per *trace*: the memory references as flat arrays (instruction
    index, byte address, store flag, operand size).  This is the only
    per-reference Python loop and it runs once per trace, not per
    geometry.  :mod:`repro.cache.reuse_store` persists it.
``_LineView``
    Per ``line_size``: line ids, previous/next-touch tables, and the
    line-grouped order used for dirtiness scans.
``_SetView``
    Per ``(line_size, n_sets)``: per-set local ranks and the stack
    distances themselves (an inversion count over last-touch ranks,
    computed by a vectorized bottom-up mergesort).  Shared by every
    associativity of that set count.
:func:`derive_events`
    Per ``(line_size, n_sets, associativity)``: hit/miss flags, LRU
    victim identification, copy-back dirtiness and
    :class:`~repro.cache.stats.CacheStats` — a handful of cumsum /
    gather passes.  The result is pinned byte-identical to
    :func:`repro.cache.events.extract_events` (the stepping oracle) by
    the equivalence suite in ``tests/cache/test_reuse.py`` and
    ``tests/cpu/test_replay_equivalence.py``.

Why the derivations are exact (the invariants the vectorized passes
rely on, each checked against the oracle by the test suite):

* **Stack distance.** For a non-cold reference ``i`` with previous
  same-line touch ``p``, every same-set reference ``k`` strictly
  between them satisfies ``k`` *in the window* automatically when
  ``prev[k] > p`` (since ``k > prev[k]``).  Counting window references
  with ``prev[k] <= p`` as first touches therefore equals the window
  population minus the count of *earlier-in-set* references with
  ``prev[k] > p`` — an inversion count, which cross-set composite
  values confine to one set per comparison.
* **Fills and evictions.** Under write-allocate every miss fills, ways
  fill monotonically and nothing invalidates, so the first ``A`` fills
  of a set land in empty ways and every later fill evicts.
* **Victim identity.** A reference ``j`` is the *last touch of an
  evicted residency* iff its line leaves the set after ``j``: either
  its next touch is a miss, or there is no next touch and at least
  ``A`` distinct other lines are touched in the set afterwards.  Within
  a set, an earlier last-touch is evicted no later than a later one
  (its stack depth is always at least as large), so the k-th
  qualifying last-touch pairs with the k-th evicting fill.
* **Dirtiness.** A residency is dirty iff it absorbed a store: its
  fill was a write-allocate store miss or any later touch before the
  next miss of that line was a store hit.

Everything else — FIFO/random/PLRU replacement, write-through,
write-around, victim caches, prefetchers — keeps using the stepping
extractor (see :func:`unsupported_reason`), exactly as
:mod:`repro.cpu.replay` keeps the step simulator for its own corners.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.cache.cache import CacheConfig
from repro.cache.events import EventStream
from repro.cache.stats import CacheStats
from repro.cache.write_policy import AllocatePolicy, WritePolicy
from repro.obs import tracing
from repro.trace.record import Instruction, OpKind

#: Bumped whenever the profile array schema changes; part of the on-disk
#: key (:mod:`repro.cache.reuse_store`).
PROFILE_SCHEMA_VERSION = 1

#: Array fields persisted per profile, in schema order.
PROFILE_ARRAYS = ("index", "address", "is_store", "size")

#: Upper bound on memoized ``(line_size, n_sets)`` set views per profile
#: (each holds a few int64 arrays over the references); registry sweeps
#: use far fewer, the bound only protects pathological callers.
_MAX_SET_VIEWS = 16


def unsupported_reason(config: CacheConfig) -> str | None:
    """Why ``config`` must fall back to the stepping extractor.

    Returns ``None`` when the reuse engine covers the configuration
    (LRU replacement, write-back, write-allocate — the inclusion
    property breaks under anything else), otherwise a short token used
    as the ``reason`` label of ``engine.phase1.dispatches``.
    """
    if config.replacement != "lru":
        return f"replacement={config.replacement}"
    if config.write_policy is not WritePolicy.WRITE_BACK:
        return f"write_policy={config.write_policy.value}"
    if config.allocate_policy is not AllocatePolicy.WRITE_ALLOCATE:
        return f"allocate={config.allocate_policy.value}"
    return None


def supports(config: CacheConfig) -> bool:
    """Whether :func:`derive_events` covers ``config`` exactly."""
    return unsupported_reason(config) is None


#: Base block width of the merge counter: within-block pairs are counted
#: by one broadcast comparison, halving the number of merge levels.
_BASE_BLOCK = 32


def _count_greater_left(values: np.ndarray) -> np.ndarray:
    """``out[i] = #{k < i : values[k] > values[i]}`` for an int64 array.

    Bottom-up vectorized mergesort: at each level the blocks hold the
    elements of contiguous original ranges (sorted), so counting, for
    every right-half element, the left-half elements greater than it
    visits each out-of-order pair exactly once — O(n log^2 n) total in
    O(log n) numpy passes, no per-element Python.  Blocks of
    :data:`_BASE_BLOCK` seed the recursion with one O(n * base)
    broadcast, and each merge is two ``searchsorted`` + scatter passes
    (cheaper than re-sorting the concatenation).
    """
    n = values.shape[0]
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    # Rank-compress: distinct ranks (stable, so ties rank in position
    # order, preserving the strict ``>`` relation), then pad with -1 —
    # smaller than every rank, so pads never count as greater.
    order = np.argsort(values, kind="stable")
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    m = max(_BASE_BLOCK, 1 << (n - 1).bit_length())
    vals = np.full(m, -1, dtype=np.int64)
    vals[:n] = ranks

    # Base case: slots still hold original positions, so within-block
    # greater-left counts land directly in position order.
    blocks = vals.reshape(-1, _BASE_BLOCK)
    earlier = (
        np.arange(_BASE_BLOCK)[:, None] < np.arange(_BASE_BLOCK)[None, :]
    )
    pairwise = blocks[:, :, None] > blocks[:, None, :]
    counts = (pairwise & earlier).sum(axis=1, dtype=np.int64).ravel()[:n]
    sort0 = np.argsort(blocks, axis=1, kind="stable")
    vals = np.take_along_axis(blocks, sort0, axis=1)
    idx = np.take_along_axis(
        np.arange(m, dtype=np.int64).reshape(-1, _BASE_BLOCK), sort0, axis=1
    )

    width = _BASE_BLOCK
    while width < m:
        pair = 2 * width
        v2 = vals.reshape(-1, pair)
        i2 = idx.reshape(-1, pair)
        # Each row is two sorted runs; numpy's stable sort (timsort)
        # merges them in near-linear time, and the permutation encodes
        # the cross-run counts.  For the right-run element of in-row
        # rank ``j`` landing at merged position ``q``, stability (left
        # run wins ties; the runs tie only on pads) means exactly
        # ``q - j`` left elements are <= it, so ``width - (q - j)`` are
        # greater — and all of them precede it in the original order.
        perm = np.argsort(v2, kind="stable", axis=1)
        positions = np.empty_like(perm)
        np.put_along_axis(
            positions,
            perm,
            np.broadcast_to(
                np.arange(pair, dtype=np.int64), perm.shape
            ),
            axis=1,
        )
        at_most = positions[:, width:] - np.arange(width, dtype=np.int64)
        targets = i2[:, width:]
        real = targets < n
        # Each element sits in exactly one right half per level, so the
        # fancy-indexed += never hits duplicate targets.
        counts[targets[real]] += (width - at_most)[real]
        vals = np.take_along_axis(v2, perm, axis=1)
        idx = np.take_along_axis(i2, perm, axis=1)
        width = pair
    return counts


class _LineView:
    """Per-``line_size`` tables shared by every geometry using it."""

    def __init__(self, profile: "ReuseProfile", line_size: int) -> None:
        address = profile.address
        n = address.shape[0]
        self.line_size = line_size
        self.line_addr = address & ~np.int64(line_size - 1)
        self.offset = address & np.int64(line_size - 1)
        _, line_id = np.unique(self.line_addr, return_inverse=True)
        self.line_id = line_id.astype(np.int64, copy=False)
        # Line-grouped order: by line id, time order within each line.
        order = np.argsort(self.line_id, kind="stable")
        self.line_order = order
        prev = np.full(n, -1, dtype=np.int64)
        nxt = np.full(n, n, dtype=np.int64)
        if n:
            same = self.line_id[order][1:] == self.line_id[order][:-1]
            prev[order[1:][same]] = order[:-1][same]
            nxt[order[:-1][same]] = order[1:][same]
        self.prev = prev
        self.next = nxt
        self.cold = prev < 0
        # Inclusive store prefix over the line-grouped order (dirtiness
        # scans difference it across residency episodes).
        self.store_grouped = profile.is_store[order].astype(np.int64)
        self.cum_store = np.cumsum(self.store_grouped)


class _SetView:
    """Per-``(line_size, n_sets)`` stack distances, any associativity."""

    def __init__(
        self, profile: "ReuseProfile", lines: _LineView, n_sets: int
    ) -> None:
        n = profile.n_accesses
        self.n_sets = n_sets
        set_of = (lines.line_addr // np.int64(lines.line_size)) & np.int64(
            n_sets - 1
        )
        self.set_of = set_of
        # Set-grouped order: by set, time order within each set.
        order = np.argsort(set_of, kind="stable")
        self.order = order
        counts = np.bincount(set_of, minlength=n_sets)
        self.counts = counts
        starts = np.zeros(n_sets, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        self.starts = starts
        pos = np.empty(n, dtype=np.int64)  # position in set-grouped order
        pos[order] = np.arange(n, dtype=np.int64)
        self.pos = pos
        local = pos - starts[set_of]  # rank within own set
        self.local = local

        prev, cold = lines.prev, lines.cold
        p_local = np.where(cold, -1, local[np.maximum(prev, 0)])
        # Inversions over last-touch ranks, confined to one set per
        # comparison by set-dominant composite values (an earlier set's
        # value is always smaller, contributing no "greater" pairs).
        # Two classes of references are dropped from the count first:
        #
        # * *cold* references carry the minimal last-touch rank of their
        #   set, so they are never "greater" than anything (and their
        #   own count feeds a sentinel distance nobody reads);
        # * *immediate re-touches* (``p_local == local - 1``) add
        #   exactly 1 to the population *and* the duplicate count of
        #   every window that contains them — any such window's anchor
        #   has ``p_local_anchor < local - 1`` (equality would make the
        #   re-touch share the anchor's line, contradicting the
        #   anchor's prev pointer), so the two contributions cancel in
        #   the stack distance.  Their own windows are empty (sd = 0).
        #
        # High-locality traces re-touch constantly (a stride-1 walk
        # re-touches its line once per element), so the O(k log^2 k)
        # inversion count runs over a small fraction of the references.
        retouch = ~cold & (p_local == local - 1)
        counted = ~(cold | retouch)
        duplicates = np.zeros(n, dtype=np.int64)
        composite = set_of * np.int64(n + 1) + (p_local + 1)
        counted_in_order = order[counted[order]]
        duplicates[counted_in_order] = _count_greater_left(
            composite[counted_in_order]
        )
        # Re-add the dropped re-touches analytically: a per-set prefix
        # count of re-touches, differenced across each window.
        retouch_prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(retouch[order], out=retouch_prefix[1:])
        window_retouches = retouch_prefix[pos] - retouch_prefix[
            starts[set_of] + p_local + 1
        ]
        # Stack distance: window population minus re-touches of lines
        # already counted; cold references get an out-of-range sentinel
        # (and are forced to miss explicitly during derivation).
        self.sd = np.where(
            cold,
            np.int64(n),
            local - p_local - 1 - duplicates - window_retouches,
        )

        # stab[j]: distinct lines of the set touched strictly after j.
        # Each reference t is the first touch after position c of its
        # line exactly for c in [pos(prev(t)) + 1, pos(t) - 1] (from the
        # set start when cold): +1/-1 a difference array and cumsum.
        plus = np.where(cold, starts[set_of], pos[np.maximum(prev, 0)] + 1)
        delta = np.bincount(plus, minlength=n + 1) - np.bincount(
            pos, minlength=n + 1
        )
        self.stab = np.cumsum(delta[:n])[pos] if n else np.zeros(0, np.int64)


class ReuseProfile:
    """Geometry-independent reuse profile of one trace.

    Holds the trace's memory references as parallel arrays plus lazily
    built, memoized line/set views.  One profile serves every LRU
    write-back geometry of a sweep.
    """

    def __init__(
        self,
        n_instructions: int,
        index: np.ndarray,
        address: np.ndarray,
        is_store: np.ndarray,
        size: np.ndarray,
    ) -> None:
        self.n_instructions = int(n_instructions)
        self.index = index
        self.address = address
        self.is_store = is_store
        self.size = size
        self._line_views: dict[int, _LineView] = {}
        self._set_views: dict[tuple[int, int], _SetView] = {}

    @property
    def n_accesses(self) -> int:
        """Number of loads/stores profiled."""
        return int(self.index.shape[0])

    def line_view(self, line_size: int) -> _LineView:
        """Memoized per-line-size tables."""
        view = self._line_views.get(line_size)
        if view is None:
            view = _LineView(self, line_size)
            self._line_views[line_size] = view
        return view

    def set_view(self, line_size: int, n_sets: int) -> _SetView:
        """Memoized per-(line size, set count) stack distances."""
        key = (line_size, n_sets)
        view = self._set_views.get(key)
        if view is None:
            if len(self._set_views) >= _MAX_SET_VIEWS:
                self._set_views.pop(next(iter(self._set_views)))
            view = _SetView(self, self.line_view(line_size), n_sets)
            self._set_views[key] = view
        return view


def build_profile(instructions: Iterable[Instruction]) -> ReuseProfile:
    """One pass over the trace: the geometry-independent reference lists.

    The per-reference Python loop of a sweep lives here and only here —
    it runs once per trace, after which every geometry is array math.
    """
    alu = OpKind.ALU
    store = OpKind.STORE
    idx: list[int] = []
    address: list[int] = []
    stores: list[bool] = []
    size: list[int] = []
    n = 0
    with tracing.span("phase1.build_profile") as sp:
        for i, inst in enumerate(instructions):
            n += 1
            kind = inst.kind
            if kind is alu:
                continue
            idx.append(i)
            address.append(inst.address)
            stores.append(kind is store)
            size.append(inst.size)
        sp.set(instructions=n, accesses=len(idx))
    return ReuseProfile(
        n_instructions=n,
        index=np.asarray(idx, dtype=np.int64),
        address=np.asarray(address, dtype=np.int64),
        is_store=np.asarray(stores, dtype=bool),
        size=np.asarray(size, dtype=np.int64),
    )


def derive_events(profile: ReuseProfile, config: CacheConfig) -> EventStream:
    """Derive the exact :class:`EventStream` for one LRU/WB geometry.

    Byte-identical to ``extract_events(trace, config)`` — arrays and
    :class:`CacheStats` both — for every configuration
    :func:`supports` accepts; raises ``ValueError`` otherwise.
    """
    reason = unsupported_reason(config)
    if reason is not None:
        raise ValueError(f"reuse engine cannot derive {reason!r} configs")
    n = profile.n_accesses
    assoc = config.associativity
    lines = profile.line_view(config.line_size)
    if n == 0:
        return _empty_stream(profile, config)
    sets = profile.set_view(config.line_size, config.n_sets)

    with tracing.span(
        "phase1.derive_events",
        cache_bytes=config.total_bytes,
        line_size=config.line_size,
        associativity=assoc,
    ):
        miss = lines.cold | (sets.sd >= assoc)

        # Fill ordinals per set: the first A fills land in invalid ways,
        # every later fill evicts the set's current LRU line.
        miss_grouped = miss[sets.order]
        fill_count = np.cumsum(miss_grouped)
        offsets = np.where(
            sets.starts > 0, fill_count[sets.starts - 1], 0
        )
        fills_through = fill_count - np.repeat(offsets, sets.counts)
        evicting_grouped = miss_grouped & (fills_through > assoc)

        # Qualifying last touches: the line leaves the set before being
        # touched again (next touch misses, or no next touch and >= A
        # distinct other lines follow).
        nxt = lines.next
        has_next = nxt < n
        next_miss = np.zeros(n, dtype=bool)
        next_miss[has_next] = miss[nxt[has_next]]
        qualifying = np.where(has_next, next_miss, sets.stab >= assoc)

        # Within a set, earlier last-touches are evicted no later than
        # later ones and the counts match, so the k-th qualifying last
        # touch is the victim of the k-th evicting fill.  Both masks are
        # scanned in set-grouped order, so flatnonzero aligns them
        # set-by-set.
        victim_touch = sets.order[np.flatnonzero(qualifying[sets.order])]
        evicting_fill = sets.order[np.flatnonzero(evicting_grouped)]

        # Dirtiness at the victim's last touch: any store since the
        # residency's fill (misses segment each line's touch chain into
        # residencies; every chain starts with a cold miss, so the
        # running maximum never crosses a line boundary).
        grouped = lines.line_order
        positions = np.arange(n, dtype=np.int64)
        fill_at = np.maximum.accumulate(
            np.where(miss[grouped], positions, -1)
        )
        cum_store = lines.cum_store
        dirty_grouped = (
            cum_store - cum_store[fill_at] + lines.store_grouped[fill_at]
        ) > 0
        dirty = np.empty(n, dtype=bool)
        dirty[grouped] = dirty_grouped
        victim_dirty = dirty[victim_touch]

        dirty_victim = np.zeros(n, dtype=bool)
        flush_line = np.full(n, -1, dtype=np.int64)
        flushed_fills = evicting_fill[victim_dirty]
        dirty_victim[flushed_fills] = True
        flush_line[flushed_fills] = lines.line_addr[
            victim_touch[victim_dirty]
        ]

        is_store = profile.is_store
        store_miss = int(np.count_nonzero(is_store & miss))
        stats = CacheStats(
            line_size=config.line_size,
            read_hits=int(np.count_nonzero(~is_store & ~miss)),
            read_misses=int(np.count_nonzero(~is_store & miss)),
            write_hits=int(np.count_nonzero(is_store & ~miss)),
            write_misses=store_miss,
            write_allocate_fills=store_miss,
            flushed_lines=int(np.count_nonzero(victim_dirty)),
            evictions=int(evicting_fill.shape[0]),
        )

    return EventStream(
        config=config,
        n_instructions=profile.n_instructions,
        index=profile.index,
        line=lines.line_addr,
        offset=lines.offset,
        is_miss=miss,
        dirty_victim=dirty_victim,
        is_store=is_store,
        stats=stats,
        flush_line=flush_line,
        write_through=np.zeros(n, dtype=bool),
        write_around=np.zeros(n, dtype=bool),
        size=profile.size,
    )


def _empty_stream(profile: ReuseProfile, config: CacheConfig) -> EventStream:
    """The zero-access stream (ALU-only or empty traces)."""
    return EventStream(
        config=config,
        n_instructions=profile.n_instructions,
        index=np.asarray([], dtype=np.int64),
        line=np.asarray([], dtype=np.int64),
        offset=np.asarray([], dtype=np.int64),
        is_miss=np.asarray([], dtype=bool),
        dirty_victim=np.asarray([], dtype=bool),
        is_store=np.asarray([], dtype=bool),
        stats=CacheStats(line_size=config.line_size),
        flush_line=np.asarray([], dtype=np.int64),
        write_through=np.asarray([], dtype=bool),
        write_around=np.asarray([], dtype=bool),
        size=np.asarray([], dtype=np.int64),
    )
