"""Content-addressed store of per-trace :class:`ReuseProfile`\\ s.

The reuse engine (:mod:`repro.cache.reuse`) needs one profile per
*trace* — not per (trace, geometry) like the event streams — so the
store here is keyed on the trace fingerprint alone.  A cold LRU sweep
then pays one trace generation + one profiling pass, after which every
geometry derives from the same arrays.

Layout mirrors :mod:`repro.cache.events_store` deliberately: ``.npz``
payload (the arrays in :data:`~repro.cache.reuse.PROFILE_ARRAYS`) plus a
JSON sidecar, both written atomically into the *same* directory as the
event streams — so ``REPRO_EVENTS_CACHE_DIR`` redirects both stores and
wiping one cold-start wipes the other.  Persistence obeys the same
``REPRO_EVENTS_CACHE`` opt-out.

Two knobs are specific to this store:

* ``REPRO_REUSE_PROFILE=0`` (or ``off``) disables the reuse engine
  entirely — every phase-1 extraction steps :class:`repro.cache.Cache`
  as before (the runner's ``--no-reuse-profile`` flag sets this, which
  also propagates to ``--jobs`` worker processes);
* a small in-process memo keeps the most recent profiles (with their
  lazily built line/set views) alive across the many
  ``get_or_extract`` calls of one sweep, so the expensive stack-distance
  arithmetic is shared, not just the reference arrays.

Determinism note: like the events store, normal hit/miss paths record
no metrics counters.  The one exception is the diagnostic-only
``reuse_store.corrupt_reextract`` counter (a present entry that fails to
load, silently rebuilt); :func:`repro.obs.manifest.stable_view` strips
it so cold/warm metrics snapshots stay byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections.abc import Callable, Sequence
from pathlib import Path

import numpy as np

from repro.cache import events_store
from repro.cache.reuse import (
    PROFILE_ARRAYS,
    PROFILE_SCHEMA_VERSION,
    ReuseProfile,
    build_profile,
)
from repro.obs import metrics, tracing
from repro.trace.record import Instruction

log = logging.getLogger("repro.reuse_store")

#: Bump when the on-disk layout (file naming, sidecar format) changes.
PROFILE_STORE_VERSION = 1

#: Set to ``0``/``off``/``false`` to disable the reuse engine (phase 1
#: falls back to stepping ``Cache`` for every geometry).
REUSE_PROFILE_ENV = "REPRO_REUSE_PROFILE"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})

#: In-process memo bound: profiles for this many distinct traces (each
#: holds the reference arrays plus memoized set views).  Registry sweeps
#: touch 7 traces; the bound only protects pathological callers.
_MAX_MEMO = 8

_memo: dict[str, ReuseProfile] = {}


def reuse_enabled() -> bool:
    """Whether the reuse engine is active (checked per call, so tests
    and ``--no-reuse-profile`` can flip it at runtime)."""
    value = os.environ.get(REUSE_PROFILE_ENV)
    return value is None or value.strip().lower() not in _DISABLED_VALUES


def key_material(trace_fingerprint: str) -> str:
    """The human-readable string whose SHA-256 addresses one profile."""
    return (
        f"reuse/{PROFILE_STORE_VERSION}"
        f"|profile/{PROFILE_SCHEMA_VERSION}"
        f"|trace/{trace_fingerprint}"
    )


def entry_key(trace_fingerprint: str) -> str:
    """Content address (hex SHA-256) of one trace's profile."""
    material = key_material(trace_fingerprint)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _paths(key: str) -> tuple[Path, Path]:
    root = events_store.cache_dir()
    return root / f"{key}.profile.npz", root / f"{key}.profile.json"


def save(trace_fingerprint: str, profile: ReuseProfile) -> None:
    """Persist one profile (best-effort: failures only log)."""
    if not events_store.cache_enabled():
        return
    key = entry_key(trace_fingerprint)
    npz_path, meta_path = _paths(key)
    meta = {
        "store_version": PROFILE_STORE_VERSION,
        "profile_schema_version": PROFILE_SCHEMA_VERSION,
        "key_material": key_material(trace_fingerprint),
        "n_instructions": profile.n_instructions,
    }
    arrays = {name: getattr(profile, name) for name in PROFILE_ARRAYS}

    def _write_npz(tmp: str) -> None:
        with open(tmp, "wb") as handle:  # a file object keeps the name as-is
            np.savez(handle, **arrays)

    def _write_meta(tmp: str) -> None:
        Path(tmp).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    try:
        with tracing.span("reuse_store.save", key=key[:12]):
            npz_path.parent.mkdir(parents=True, exist_ok=True)
            events_store._atomic_write(npz_path, _write_npz)
            events_store._atomic_write(meta_path, _write_meta)
    except OSError as exc:
        log.debug("reuse_store: save failed for %s: %s", key[:12], exc)


def load(trace_fingerprint: str) -> ReuseProfile | None:
    """Load one profile, or None on miss/corruption/schema mismatch."""
    if not events_store.cache_enabled():
        return None
    key = entry_key(trace_fingerprint)
    npz_path, meta_path = _paths(key)
    try:
        with tracing.span("reuse_store.load", key=key[:12]):
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if (
                meta.get("store_version") != PROFILE_STORE_VERSION
                or meta.get("profile_schema_version") != PROFILE_SCHEMA_VERSION
                or meta.get("key_material") != key_material(trace_fingerprint)
            ):
                return None
            with np.load(npz_path) as payload:
                arrays = {name: payload[name] for name in PROFILE_ARRAYS}
            return ReuseProfile(
                n_instructions=int(meta["n_instructions"]), **arrays
            )
    except Exception as exc:  # noqa: BLE001 - any corruption => rebuild
        if not isinstance(exc, FileNotFoundError):
            # Diagnostic-only (stable_view strips it): the profile is
            # rebuilt transparently, but repeated corruption means a
            # sick disk or a concurrent writer bug.
            metrics.inc("reuse_store.corrupt_reextract")
            log.warning(
                "reuse_store: corrupt profile %s (%s: %s); rebuilding",
                key[:12],
                type(exc).__name__,
                exc,
            )
        return None


def get_or_build(
    trace_fingerprint: str,
    trace_factory: Callable[[], Sequence[Instruction]],
    profile_factory: Callable[[], ReuseProfile] | None = None,
) -> ReuseProfile:
    """Memoized profile for one trace: memo hit, disk hit, or build.

    ``trace_factory`` only runs when neither the memo nor the disk has
    the profile, so a geometry fan over one trace generates the trace at
    most once — and usually never, on warm stores.  When
    ``profile_factory`` is given it replaces
    ``build_profile(trace_factory())`` on that cold path; callers must
    guarantee it produces byte-identical arrays (loop-nest generators
    derive them analytically, see
    :func:`repro.trace.loops.square_matmul_profile_arrays`).  The memo
    obeys the ``REPRO_EVENTS_CACHE`` opt-out along with the disk files:
    that env promises full recomputation, in-process or not.
    """
    caching = events_store.cache_enabled()
    if caching:
        profile = _memo.get(trace_fingerprint)
        if profile is not None:
            return profile
    profile = load(trace_fingerprint)
    if profile is None:
        if profile_factory is not None:
            profile = profile_factory()
        else:
            profile = build_profile(trace_factory())
        save(trace_fingerprint, profile)
    if caching:
        if len(_memo) >= _MAX_MEMO:
            _memo.pop(next(iter(_memo)))
        _memo[trace_fingerprint] = profile
    return profile


def clear_memory() -> None:
    """Drop the in-process profile memo (tests; not the disk store)."""
    _memo.clear()
