"""Phase 1 of the two-phase simulation engine: functional event extraction.

The cache's hit/miss/copy-back behaviour is completely independent of
memory timing: which references miss, which victims are dirty, which
stores generate write-through/write-around traffic, and which later
references re-touch an in-flight line are all decided by the cache
geometry and the reference stream alone.  This module runs that untimed
functional pass **once** per ``(trace, CacheConfig)`` and emits a compact
:class:`EventStream` — numpy arrays over the memory references — from
which the timing replay engines (:mod:`repro.cpu.replay`) can compute
exact cycle accounting for any ``(policy, beta_m)`` point without ever
stepping instructions again.

Schema (all arrays are parallel, one entry per load/store, in program
order; see ``docs/ENGINE.md``):

==============  ======================================================
array           meaning
==============  ======================================================
index           instruction index of the reference within the trace
line            line-aligned address referenced
offset          byte offset of the reference within its line
is_miss         the reference filled a line (read miss or
                write-allocate miss)
dirty_victim    the fill evicted a dirty line (a copy-back is owed)
is_store        the reference was a store
flush_line      line address of the dirty victim owed a copy-back,
                -1 when none (== dirty_victim as a flag)
write_through   the store was propagated to memory (write-through hit,
                or a write-allocate miss under write-through)
write_around    the store missed and went straight to memory (no fill)
size            operand size in bytes (drives ``write_duration``)
==============  ======================================================

Derived per-miss structures (the exact inputs Eq. 8 and the Table 2
stall semantics need) are computed lazily and cached on the stream:

* ``miss_index`` / ``miss_offset`` / ``miss_dirty`` — per-fill arrays;
* ``first_access_after_miss`` — instruction index of the first
  load/store after each miss that is *not* itself the next miss (what a
  bus-locked cache stalls);
* a CSR map from each miss to the in-fill-line re-touches inside its
  window (what the BNL policies stall on);
* ``general_walk`` — the sparse subset of accesses the general replay
  kernel (write buffers / pipelined memory / write-through traffic)
  must visit; every skipped access is a provable timing no-op;
* ``mshr_walk(k)`` — the analogous subset for the k-MSHR non-blocking
  replay kernel;
* ``inter_miss_distances`` — Eq. (8)'s ``dc_i`` sample.

The functional pass reuses :class:`repro.cache.Cache` itself rather than
a re-implementation, so the event stream is correct by construction for
every replacement/write/allocate policy the cache model supports.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cache.cache import Cache, CacheConfig
from repro.cache.stats import CacheStats
from repro.obs import tracing
from repro.trace.record import Instruction, OpKind

#: Bumped whenever the array schema or its semantics change; part of the
#: on-disk cache key (``repro.cache.events_store``), so stale cached
#: streams are invalidated automatically.
EVENT_SCHEMA_VERSION = 2

#: Array fields persisted by the on-disk cache, in schema order.
EVENT_ARRAYS = (
    "index",
    "line",
    "offset",
    "is_miss",
    "dirty_victim",
    "is_store",
    "flush_line",
    "write_through",
    "write_around",
    "size",
)


class EventStream:
    """Compact functional summary of one ``(trace, geometry)`` pair."""

    def __init__(
        self,
        config: CacheConfig,
        n_instructions: int,
        index: np.ndarray,
        line: np.ndarray,
        offset: np.ndarray,
        is_miss: np.ndarray,
        dirty_victim: np.ndarray,
        is_store: np.ndarray,
        stats: CacheStats,
        flush_line: np.ndarray | None = None,
        write_through: np.ndarray | None = None,
        write_around: np.ndarray | None = None,
        size: np.ndarray | None = None,
    ) -> None:
        self.config = config
        self.n_instructions = n_instructions
        self.index = index
        self.line = line
        self.offset = offset
        self.is_miss = is_miss
        self.dirty_victim = dirty_victim
        self.is_store = is_store
        n = index.shape[0]
        # The v1 constructor predates these arrays; synthesizing the
        # write-back/write-allocate defaults keeps old callers working.
        self.flush_line = (
            flush_line
            if flush_line is not None
            else np.full(n, -1, dtype=np.int64)
        )
        self.write_through = (
            write_through
            if write_through is not None
            else np.zeros(n, dtype=bool)
        )
        self.write_around = (
            write_around
            if write_around is not None
            else np.zeros(n, dtype=bool)
        )
        self.size = size if size is not None else np.full(n, 4, dtype=np.int64)
        #: final cache statistics of the functional pass (hit ratios,
        #: fill/flush counts) — the timing-independent half of a
        #: :class:`~repro.cpu.processor.TimingResult`.
        self.stats = stats
        self._derived: _Derived | None = None

    # -- basic shape ----------------------------------------------------

    @property
    def n_accesses(self) -> int:
        """Number of loads/stores in the trace."""
        return int(self.index.shape[0])

    @property
    def n_fills(self) -> int:
        """Number of line fills (== ``stats.line_fills``)."""
        return int(self.is_miss.sum())

    @property
    def line_size(self) -> int:
        """Line size of the extracted geometry."""
        return self.config.line_size

    # -- derived per-miss structures ------------------------------------

    @property
    def derived(self) -> "_Derived":
        """Per-miss window structures, computed once on first use."""
        if self._derived is None:
            self._derived = _Derived(self)
        return self._derived

    def inter_miss_distances(self) -> list[int]:
        """Eq. (8)'s ``dc_i``: per miss, the instruction distance to the
        first subsequent access that engages the in-flight line (a
        re-touch of the missed line or the next miss), omitting misses
        whose fill is never engaged before the trace ends."""
        d = self.derived
        distances: list[int] = []
        for k in range(len(d.miss_index)):
            touch_lo, touch_hi = d.touch_ptr[k], d.touch_ptr[k + 1]
            first_touch = d.touch_index[touch_lo] if touch_hi > touch_lo else None
            next_miss = (
                d.miss_index[k + 1] if k + 1 < len(d.miss_index) else None
            )
            candidates = [c for c in (first_touch, next_miss) if c is not None]
            if candidates:
                distances.append(min(candidates) - d.miss_index[k])
        return distances


class GeneralWalk:
    """The access subset the general replay kernel visits, as parallel
    plain lists (position order == program order).

    Skipped accesses are hits with no memory traffic and provably no
    Table 2 window interaction — timing no-ops under every policy the
    kernel covers (see ``docs/ENGINE.md``)."""

    def __init__(
        self,
        index: list[int],
        line: list[int],
        offset: list[int],
        is_miss: list[bool],
        flush_line: list[int],
        timed_write: list[bool],
        write_around: list[bool],
        size: list[int],
    ) -> None:
        self.index = index
        self.line = line
        self.offset = offset
        self.is_miss = is_miss
        self.flush_line = flush_line
        #: the access posts a timed write (write-through or write-around)
        self.timed_write = timed_write
        self.write_around = write_around
        self.size = size

    def __len__(self) -> int:
        return len(self.index)


class MshrWalk:
    """The access subset the k-MSHR replay kernel visits."""

    def __init__(
        self,
        index: list[int],
        line: list[int],
        offset: list[int],
        is_miss: list[bool],
        flush_line: list[int],
        is_load: list[bool],
    ) -> None:
        self.index = index
        self.line = line
        self.offset = offset
        self.is_miss = is_miss
        self.flush_line = flush_line
        self.is_load = is_load

    def __len__(self) -> int:
        return len(self.index)


class _Derived:
    """Replay-ready views of an :class:`EventStream` (plain lists, which
    the per-miss replay loop indexes far faster than numpy scalars)."""

    def __init__(self, events: EventStream) -> None:
        self._events = events
        is_miss = events.is_miss
        miss_pos = np.flatnonzero(is_miss)
        self._miss_pos = miss_pos
        n_miss = miss_pos.shape[0]
        k = events.n_accesses

        #: instruction index / critical offset / dirty flag per fill
        self.miss_index: list[int] = events.index[miss_pos].tolist()
        self.miss_offset: list[int] = events.offset[miss_pos].tolist()
        self.miss_dirty: list[bool] = events.dirty_victim[miss_pos].tolist()

        # Instruction index of the first load/store after each miss that
        # is not itself the next miss; -1 when the window is empty.
        nxt = miss_pos + 1
        safe = np.minimum(nxt, max(k - 1, 0))
        in_window = (nxt < k) & ~is_miss[safe] if k else np.zeros(0, bool)
        first = np.where(in_window, events.index[safe], -1)
        self.first_access_after_miss: list[int] = first.tolist()
        self._first_after_pos = safe[in_window] if k else np.zeros(0, np.int64)

        # CSR: per miss, the subsequent accesses that re-touch the line
        # while it could still be in flight (strictly before next miss).
        if n_miss:
            owner = np.cumsum(is_miss) - 1  # most recent miss per access
            fill_line = events.line[miss_pos][np.maximum(owner, 0)]
            touch = (~is_miss) & (owner >= 0) & (events.line == fill_line)
            counts = np.bincount(owner[touch], minlength=n_miss)
            ptr = np.zeros(n_miss + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
            self.touch_ptr: list[int] = ptr.tolist()
            self.touch_index: list[int] = events.index[touch].tolist()
            self.touch_offset: list[int] = events.offset[touch].tolist()
            self._touch_mask = touch
        else:
            self.touch_ptr = [0]
            self.touch_index = []
            self.touch_offset = []
            self._touch_mask = np.zeros(k, dtype=bool)

        self._general_walk: GeneralWalk | None = None
        self._mshr_walks: dict[int, MshrWalk] = {}
        self._owner_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- general kernel walk --------------------------------------------

    @property
    def general_walk(self) -> GeneralWalk:
        """Accesses the general replay kernel must visit.

        The union over the policies it covers: every miss, every timed
        write (write-through/write-around traffic), every in-window
        re-touch of the most recent fill line (BNL1-3/NB word waits),
        and the first access after each miss (the single access a
        bus-locked fill can stall).  Any other access is a hit with no
        memory traffic, off the fill line, generating no float ops in
        the oracle — skipping it is exact."""
        if self._general_walk is not None:
            return self._general_walk
        ev = self._events
        relevant = ev.is_miss | ev.write_through | ev.write_around
        relevant[self._first_after_pos] = True
        relevant |= self._touch_mask
        pos = np.flatnonzero(relevant)
        timed = (ev.write_through | ev.write_around)[pos]
        self._general_walk = GeneralWalk(
            index=ev.index[pos].tolist(),
            line=ev.line[pos].tolist(),
            offset=ev.offset[pos].tolist(),
            is_miss=ev.is_miss[pos].tolist(),
            flush_line=ev.flush_line[pos].tolist(),
            timed_write=timed.tolist(),
            write_around=ev.write_around[pos].tolist(),
            size=ev.size[pos].tolist(),
        )
        return self._general_walk

    # -- MSHR kernel walk -----------------------------------------------

    def _owners(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per access: id of the last same-line fill strictly before it
        (-1 if none) and the number of fills strictly before it; per
        fill (prefix-summed): whether its line had been filled before
        (the conservative superset of MSHR-table overwrites)."""
        if self._owner_arrays is not None:
            return self._owner_arrays
        ev = self._events
        lines = ev.line.tolist()
        misses = ev.is_miss.tolist()
        n = len(lines)
        owner = np.empty(n, dtype=np.int64)
        fills_before = np.empty(n, dtype=np.int64)
        refill_prefix = [0]
        last_fill_of_line: dict[int, int] = {}
        fid = 0
        for p in range(n):
            ln = lines[p]
            owner[p] = last_fill_of_line.get(ln, -1)
            fills_before[p] = fid
            if misses[p]:
                refill_prefix.append(refill_prefix[-1] + (ln in last_fill_of_line))
                last_fill_of_line[ln] = fid
                fid += 1
        self._owner_arrays = (
            owner,
            fills_before,
            np.asarray(refill_prefix, dtype=np.int64),
        )
        return self._owner_arrays

    def mshr_walk(self, mshr_count: int) -> MshrWalk:
        """Accesses the k-MSHR replay kernel must visit.

        Every miss, plus every hit whose owning fill can still be in
        flight when the hit issues.  A hit is skippable when at least
        ``k`` *distinct-line* fills were issued between its owner and
        itself: issuing the k-th of those forced a wait for the
        earliest outstanding completion, and fill end times are
        monotone in issue order, so the owner's fill had completed by
        then.  Same-line re-fills may silently replace an MSHR entry
        without a wait, so they are excluded from the count (the
        ``refill_prefix`` correction)."""
        cached = self._mshr_walks.get(mshr_count)
        if cached is not None:
            return cached
        ev = self._events
        is_miss = ev.is_miss
        owner, fills_before, refill_prefix = self._owners()
        between = fills_before - owner - 1
        refills_between = refill_prefix[fills_before] - refill_prefix[
            np.minimum(owner + 1, refill_prefix.shape[0] - 1)
        ]
        may_wait = (
            (~is_miss) & (owner >= 0) & (between - refills_between < mshr_count)
        )
        pos = np.flatnonzero(is_miss | may_wait)
        walk = MshrWalk(
            index=ev.index[pos].tolist(),
            line=ev.line[pos].tolist(),
            offset=ev.offset[pos].tolist(),
            is_miss=is_miss[pos].tolist(),
            flush_line=ev.flush_line[pos].tolist(),
            is_load=(~ev.is_store[pos]).tolist(),
        )
        self._mshr_walks[mshr_count] = walk
        return walk


def extract_events(
    instructions: Sequence[Instruction], config: CacheConfig
) -> EventStream:
    """Run the untimed functional cache pass and build the event stream.

    One pass through :class:`~repro.cache.Cache` per call; memoize at
    the caller when the same ``(trace, geometry)`` recurs (see
    ``repro.experiments._phi.spec92_event_streams``), and use
    :mod:`repro.cache.events_store` to persist streams across runs.
    """
    cache = Cache(config)
    amap = cache.address_map
    read, write = cache.read, cache.write
    line_address, line_offset = amap.line_address, amap.offset
    alu = OpKind.ALU
    store = OpKind.STORE

    idx: list[int] = []
    line: list[int] = []
    offset: list[int] = []
    miss: list[bool] = []
    dirty: list[bool] = []
    stores: list[bool] = []
    flush_line: list[int] = []
    write_through: list[bool] = []
    write_around: list[bool] = []
    size: list[int] = []
    n = 0
    with tracing.span(
        "phase1.extract_events",
        cache_bytes=config.total_bytes,
        line_size=config.line_size,
        associativity=config.associativity,
    ) as sp:
        for i, inst in enumerate(instructions):
            n += 1
            kind = inst.kind
            if kind is alu:
                continue
            address = inst.address
            is_store = kind is store
            outcome = write(address) if is_store else read(address)
            idx.append(i)
            line.append(line_address(address))
            offset.append(line_offset(address))
            miss.append(outcome.fill_line)
            flushed = outcome.flush_line_address
            dirty.append(flushed is not None)
            flush_line.append(-1 if flushed is None else flushed)
            stores.append(is_store)
            write_through.append(outcome.write_through)
            write_around.append(outcome.write_around)
            size.append(inst.size)
        sp.set(instructions=n, accesses=len(idx), fills=sum(miss))

    return EventStream(
        config=config,
        n_instructions=n,
        index=np.asarray(idx, dtype=np.int64),
        line=np.asarray(line, dtype=np.int64),
        offset=np.asarray(offset, dtype=np.int64),
        is_miss=np.asarray(miss, dtype=bool),
        dirty_victim=np.asarray(dirty, dtype=bool),
        is_store=np.asarray(stores, dtype=bool),
        stats=cache.stats,
        flush_line=np.asarray(flush_line, dtype=np.int64),
        write_through=np.asarray(write_through, dtype=bool),
        write_around=np.asarray(write_around, dtype=bool),
        size=np.asarray(size, dtype=np.int64),
    )
