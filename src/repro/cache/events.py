"""Phase 1 of the two-phase simulation engine: functional event extraction.

The cache's hit/miss/copy-back behaviour is completely independent of
memory timing: which references miss, which victims are dirty, and which
later references re-touch an in-flight line are all decided by the cache
geometry and the reference stream alone.  This module runs that untimed
functional pass **once** per ``(trace, CacheConfig)`` and emits a compact
:class:`EventStream` — numpy arrays over the memory references — from
which the timing replay engines (:mod:`repro.cpu.replay`) can compute
exact cycle accounting for any ``(policy, beta_m)`` point without ever
stepping instructions again.

Schema (all arrays are parallel, one entry per load/store, in program
order; see ``docs/ENGINE.md``):

==============  ======================================================
array           meaning
==============  ======================================================
index           instruction index of the reference within the trace
line            line-aligned address referenced
offset          byte offset of the reference within its line
is_miss         the reference filled a line (read miss or
                write-allocate miss)
dirty_victim    the fill evicted a dirty line (a copy-back is owed)
is_store        the reference was a store
==============  ======================================================

Derived per-miss structures (the exact inputs Eq. 8 and the Table 2
stall semantics need) are computed lazily and cached on the stream:

* ``miss_index`` / ``miss_offset`` / ``miss_dirty`` — per-fill arrays;
* ``first_access_after_miss`` — instruction index of the first
  load/store after each miss that is *not* itself the next miss (what a
  bus-locked cache stalls);
* a CSR map from each miss to the in-fill-line re-touches inside its
  window (what the BNL policies stall on);
* ``inter_miss_distances`` — Eq. (8)'s ``dc_i`` sample.

The functional pass reuses :class:`repro.cache.Cache` itself rather than
a re-implementation, so the event stream is correct by construction for
every replacement/write/allocate policy the cache model supports.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cache.cache import Cache, CacheConfig
from repro.cache.stats import CacheStats
from repro.obs import tracing
from repro.trace.record import Instruction, OpKind


class EventStream:
    """Compact functional summary of one ``(trace, geometry)`` pair."""

    def __init__(
        self,
        config: CacheConfig,
        n_instructions: int,
        index: np.ndarray,
        line: np.ndarray,
        offset: np.ndarray,
        is_miss: np.ndarray,
        dirty_victim: np.ndarray,
        is_store: np.ndarray,
        stats: CacheStats,
    ) -> None:
        self.config = config
        self.n_instructions = n_instructions
        self.index = index
        self.line = line
        self.offset = offset
        self.is_miss = is_miss
        self.dirty_victim = dirty_victim
        self.is_store = is_store
        #: final cache statistics of the functional pass (hit ratios,
        #: fill/flush counts) — the timing-independent half of a
        #: :class:`~repro.cpu.processor.TimingResult`.
        self.stats = stats
        self._derived: _Derived | None = None

    # -- basic shape ----------------------------------------------------

    @property
    def n_accesses(self) -> int:
        """Number of loads/stores in the trace."""
        return int(self.index.shape[0])

    @property
    def n_fills(self) -> int:
        """Number of line fills (== ``stats.line_fills``)."""
        return int(self.is_miss.sum())

    @property
    def line_size(self) -> int:
        """Line size of the extracted geometry."""
        return self.config.line_size

    # -- derived per-miss structures ------------------------------------

    @property
    def derived(self) -> "_Derived":
        """Per-miss window structures, computed once on first use."""
        if self._derived is None:
            self._derived = _Derived(self)
        return self._derived

    def inter_miss_distances(self) -> list[int]:
        """Eq. (8)'s ``dc_i``: per miss, the instruction distance to the
        first subsequent access that engages the in-flight line (a
        re-touch of the missed line or the next miss), omitting misses
        whose fill is never engaged before the trace ends."""
        d = self.derived
        distances: list[int] = []
        for k in range(len(d.miss_index)):
            touch_lo, touch_hi = d.touch_ptr[k], d.touch_ptr[k + 1]
            first_touch = d.touch_index[touch_lo] if touch_hi > touch_lo else None
            next_miss = (
                d.miss_index[k + 1] if k + 1 < len(d.miss_index) else None
            )
            candidates = [c for c in (first_touch, next_miss) if c is not None]
            if candidates:
                distances.append(min(candidates) - d.miss_index[k])
        return distances


class _Derived:
    """Replay-ready views of an :class:`EventStream` (plain lists, which
    the per-miss replay loop indexes far faster than numpy scalars)."""

    def __init__(self, events: EventStream) -> None:
        is_miss = events.is_miss
        miss_pos = np.flatnonzero(is_miss)
        n_miss = miss_pos.shape[0]
        k = events.n_accesses

        #: instruction index / critical offset / dirty flag per fill
        self.miss_index: list[int] = events.index[miss_pos].tolist()
        self.miss_offset: list[int] = events.offset[miss_pos].tolist()
        self.miss_dirty: list[bool] = events.dirty_victim[miss_pos].tolist()

        # Instruction index of the first load/store after each miss that
        # is not itself the next miss; -1 when the window is empty.
        nxt = miss_pos + 1
        safe = np.minimum(nxt, max(k - 1, 0))
        in_window = (nxt < k) & ~is_miss[safe] if k else np.zeros(0, bool)
        first = np.where(in_window, events.index[safe], -1)
        self.first_access_after_miss: list[int] = first.tolist()

        # CSR: per miss, the subsequent accesses that re-touch the line
        # while it could still be in flight (strictly before next miss).
        if n_miss:
            owner = np.cumsum(is_miss) - 1  # most recent miss per access
            fill_line = events.line[miss_pos][np.maximum(owner, 0)]
            touch = (~is_miss) & (owner >= 0) & (events.line == fill_line)
            counts = np.bincount(owner[touch], minlength=n_miss)
            ptr = np.zeros(n_miss + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
            self.touch_ptr: list[int] = ptr.tolist()
            self.touch_index: list[int] = events.index[touch].tolist()
            self.touch_offset: list[int] = events.offset[touch].tolist()
        else:
            self.touch_ptr = [0]
            self.touch_index = []
            self.touch_offset = []


def extract_events(
    instructions: Sequence[Instruction], config: CacheConfig
) -> EventStream:
    """Run the untimed functional cache pass and build the event stream.

    One pass through :class:`~repro.cache.Cache` per call; memoize at
    the caller when the same ``(trace, geometry)`` recurs (see
    ``repro.experiments._phi.spec92_event_streams``).
    """
    cache = Cache(config)
    amap = cache.address_map
    read, write = cache.read, cache.write
    line_address, line_offset = amap.line_address, amap.offset
    alu = OpKind.ALU
    store = OpKind.STORE

    idx: list[int] = []
    line: list[int] = []
    offset: list[int] = []
    miss: list[bool] = []
    dirty: list[bool] = []
    stores: list[bool] = []
    n = 0
    with tracing.span(
        "phase1.extract_events",
        cache_bytes=config.total_bytes,
        line_size=config.line_size,
        associativity=config.associativity,
    ) as sp:
        for i, inst in enumerate(instructions):
            n += 1
            kind = inst.kind
            if kind is alu:
                continue
            address = inst.address
            is_store = kind is store
            outcome = write(address) if is_store else read(address)
            idx.append(i)
            line.append(line_address(address))
            offset.append(line_offset(address))
            miss.append(outcome.fill_line)
            dirty.append(outcome.flush_line_address is not None)
            stores.append(is_store)
        sp.set(instructions=n, accesses=len(idx), fills=sum(miss))

    return EventStream(
        config=config,
        n_instructions=n,
        index=np.asarray(idx, dtype=np.int64),
        line=np.asarray(line, dtype=np.int64),
        offset=np.asarray(offset, dtype=np.int64),
        is_miss=np.asarray(miss, dtype=bool),
        dirty_victim=np.asarray(dirty, dtype=bool),
        is_store=np.asarray(stores, dtype=bool),
        stats=cache.stats,
    )
