"""Two-level cache hierarchy.

The paper models one on-chip cache in front of memory; by 1994, boards
already carried L2 SRAM.  The methodology still applies — Section 4.5's
mean-memory-delay argument only needs the *average* miss penalty — so
this module provides the substrate to demonstrate it: an L1/L2 pair with
hit/miss simulation, plus :func:`effective_memory_cycle`, the constant
``beta_m`` a single-level model must use so Eq. (2) reproduces the
two-level system's delay (the same move the page-mode DRAM ablation
makes for row locality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.cache import Cache, CacheConfig
from repro.trace.record import Instruction, OpKind


@dataclass(frozen=True)
class MultilevelStats:
    """Aggregate hit/miss accounting across both levels."""

    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int

    @property
    def l1_miss_ratio(self) -> float:
        """Local L1 miss ratio."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_local_miss_ratio(self) -> float:
        """L2 misses per L2 access (the 'local' ratio)."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def global_miss_ratio(self) -> float:
        """References missing *both* levels, per L1 access."""
        return self.l2_misses / self.l1_accesses if self.l1_accesses else 0.0


class TwoLevelCache:
    """An L1 backed by a (same-or-larger-line) L2.

    L1 misses probe the L2; L2 hits fill the L1 at ``l2_hit_cycles`` per
    L1-line-sized transfer, L2 misses go to memory.  Dirty L1 victims
    write back into the L2 (which marks them dirty); dirty L2 victims
    are the only traffic reaching memory besides fills.
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        l2_hit_cycles: float = 2.0,
    ) -> None:
        if l2_config.line_size < l1_config.line_size:
            raise ValueError(
                "L2 line must be at least the L1 line "
                f"({l2_config.line_size} < {l1_config.line_size})"
            )
        if l2_config.total_bytes < l1_config.total_bytes:
            raise ValueError("L2 must be at least as large as L1")
        if l2_hit_cycles < 1:
            raise ValueError(f"l2_hit_cycles must be >= 1, got {l2_hit_cycles}")
        self.l1 = Cache(l1_config)
        self.l2 = Cache(l2_config)
        self.l2_hit_cycles = float(l2_hit_cycles)
        self._l2_hits = 0

    def access(self, inst: Instruction) -> bool:
        """One load/store; returns True when L1 hit (no L2 probe)."""
        if inst.kind is OpKind.ALU:
            raise ValueError("two-level cache handles memory operations only")
        l1 = self.l1
        if inst.kind is OpKind.LOAD:
            outcome = l1.read(inst.address)
        else:
            outcome = l1.write(inst.address)
        if outcome.hit:
            return True

        # L1 dirty victim writes back into the L2.
        if outcome.flush_line_address is not None:
            self.l2.write(outcome.flush_line_address)

        # The L1 fill probes the L2.
        l2_outcome = self.l2.read(inst.address)
        if l2_outcome.hit:
            self._l2_hits += 1
        return False

    def run(self, instructions: list[Instruction]) -> MultilevelStats:
        """Execute a stream; returns the combined statistics."""
        for inst in instructions:
            if inst.kind.is_memory:
                self.access(inst)
        return self.stats()

    def stats(self) -> MultilevelStats:
        """Current counters as a snapshot."""
        l1 = self.l1.stats
        l2 = self.l2.stats
        return MultilevelStats(
            l1_accesses=l1.accesses,
            l1_misses=l1.misses,
            l2_accesses=l2.read_hits + l2.read_misses,
            l2_misses=l2.read_misses,
        )


def effective_memory_cycle(
    stats: MultilevelStats,
    l2_hit_cycles: float,
    memory_cycle: float,
) -> float:
    """The constant ``beta_m`` a single-level Eq. (2) model must use.

    Each L1 miss pays ``l2_hit_cycles`` per chunk on an L2 hit and
    ``memory_cycle`` per chunk on an L2 miss (the L2-hit leg is folded
    into the miss path, as an L2 lookup precedes the memory trip), so
    the average per-chunk cost weights the two by the local L2 ratio::

        beta_eff = (1 - m2) * l2_hit + m2 * (l2_hit + memory_cycle)
    """
    if stats.l1_misses == 0:
        return l2_hit_cycles
    m2 = stats.l2_local_miss_ratio
    return (1.0 - m2) * l2_hit_cycles + m2 * (l2_hit_cycles + memory_cycle)


def single_level_equivalent(
    instructions: list[Instruction],
    l1_config: CacheConfig,
    l2_config: CacheConfig,
    l2_hit_cycles: float,
    memory_cycle: float,
) -> tuple[MultilevelStats, float]:
    """Run the hierarchy and return (stats, equivalent beta_m).

    Feeding the returned ``beta_m`` and the L1 characterization into
    Eq. (2) reproduces the hierarchy's mean memory delay — the
    Section 4.5 argument extended one level down.
    """
    hierarchy = TwoLevelCache(l1_config, l2_config, l2_hit_cycles)
    stats = hierarchy.run(instructions)
    return stats, effective_memory_cycle(stats, l2_hit_cycles, memory_cycle)


def stats_via_events(events, l2_config: CacheConfig) -> MultilevelStats:
    """:class:`MultilevelStats` from an L1 event stream; steps only the L2.

    The L2 never sees the raw reference stream — only the L1's miss and
    copy-back traffic, which the phase-1 event stream
    (:class:`repro.cache.events.EventStream`) records in full: per fill,
    an optional write of the dirty victim line followed by the fill read
    (the exact sequence :meth:`TwoLevelCache.access` issues).  Replaying
    that far shorter stream through a fresh :class:`Cache` reproduces
    :meth:`TwoLevelCache.run` bit for bit while the L1 side comes from
    phase 1 — usually the reuse engine or the on-disk store, with no
    stepping at all.
    """
    if l2_config.line_size < events.config.line_size:
        raise ValueError(
            "L2 line must be at least the L1 line "
            f"({l2_config.line_size} < {events.config.line_size})"
        )
    if l2_config.total_bytes < events.config.total_bytes:
        raise ValueError("L2 must be at least as large as L1")
    l2 = Cache(l2_config)
    miss_pos = np.flatnonzero(events.is_miss)
    addresses = (events.line[miss_pos] + events.offset[miss_pos]).tolist()
    victims = events.flush_line[miss_pos].tolist()
    read, write = l2.read, l2.write
    for address, victim in zip(addresses, victims):
        if victim >= 0:
            write(victim)
        read(address)
    l1 = events.stats
    l2_stats = l2.stats
    return MultilevelStats(
        l1_accesses=l1.accesses,
        l1_misses=l1.misses,
        l2_accesses=l2_stats.read_hits + l2_stats.read_misses,
        l2_misses=l2_stats.read_misses,
    )


def single_level_equivalent_from_events(
    events,
    l2_config: CacheConfig,
    l2_hit_cycles: float,
    memory_cycle: float,
) -> tuple[MultilevelStats, float]:
    """:func:`single_level_equivalent` driven by an L1 event stream."""
    if l2_hit_cycles < 1:
        raise ValueError(f"l2_hit_cycles must be >= 1, got {l2_hit_cycles}")
    stats = stats_via_events(events, l2_config)
    return stats, effective_memory_cycle(stats, l2_hit_cycles, memory_cycle)
