"""Sequential prefetching cache (paper Section 3.3's latency-hiding note;
Smith 1982, Chen & Baer 1992 — the paper's references [3] and [9]).

Section 3.3 observes that "techniques such as cache line prefetching ...
can be used to hide or reduce the penalty of some read misses.  In these
cases, R will represent the memory references whose miss penalty cannot
be hidden."  This module provides that reduced-R measurement: a
next-line prefetcher (prefetch-on-miss or tagged) runs alongside the
cache, and the covered misses are exactly the reduction in effective
``R`` the tradeoff model should use.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.cache.cache import Cache, CacheConfig
from repro.trace.record import Instruction, OpKind


class PrefetchPolicy(Enum):
    """When the next line is fetched."""

    ON_MISS = "prefetch-on-miss"
    TAGGED = "tagged"  # also on first demand hit to a prefetched line

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class PrefetchStats:
    """Prefetcher effectiveness counters."""

    issued: int = 0
    useful: int = 0
    demand_misses: int = 0
    covered_misses: int = 0

    @property
    def accuracy(self) -> float:
        """Useful prefetches per issued prefetch."""
        return self.useful / self.issued if self.issued else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses hidden by prefetching."""
        total = self.demand_misses + self.covered_misses
        return self.covered_misses / total if total else 0.0


class PrefetchingCache:
    """A cache with a one-block-lookahead sequential prefetcher.

    The prefetched line is installed immediately (timing idealization:
    the paper's model folds partial hiding into a scaled ``beta_m`` or a
    reduced ``R``; we measure the fully-hidden bound).  ``stats`` counts
    how many demand misses prefetching covered.
    """

    def __init__(
        self,
        config: CacheConfig,
        policy: PrefetchPolicy = PrefetchPolicy.ON_MISS,
    ) -> None:
        self.cache = Cache(config)
        self.policy = policy
        self.stats = PrefetchStats()
        #: prefetched lines not yet demand-touched (their "tag" bit).
        self._pending_tags: set[int] = set()

    def _prefetch(self, line_address: int) -> None:
        next_line = line_address + self.cache.config.line_size
        if self.cache.contains(next_line):
            return
        # Install without perturbing the demand statistics.
        before_hits = self.cache.stats.read_hits
        before_misses = self.cache.stats.read_misses
        self.cache.read(next_line)
        self.cache.stats.read_hits = before_hits
        self.cache.stats.read_misses = before_misses
        self.stats.issued += 1
        self._pending_tags.add(self.cache.address_map.line_address(next_line))

    def access(self, inst: Instruction) -> bool:
        """One load/store; returns True when it hit (incl. prefetched)."""
        if inst.kind is OpKind.ALU:
            raise ValueError("prefetching cache handles memory operations only")
        cache = self.cache
        line_address = cache.address_map.line_address(inst.address)
        was_present = cache.contains(inst.address)
        was_prefetched = line_address in self._pending_tags

        outcome = (
            cache.read(inst.address)
            if inst.kind is OpKind.LOAD
            else cache.write(inst.address)
        )

        if was_present and was_prefetched:
            # First demand touch of a prefetched line: a covered miss.
            self._pending_tags.discard(line_address)
            self.stats.useful += 1
            self.stats.covered_misses += 1
            if self.policy is PrefetchPolicy.TAGGED:
                self._prefetch(line_address)
        elif not was_present:
            self.stats.demand_misses += 1
            self._pending_tags.discard(line_address)
            self._prefetch(line_address)
        return outcome.hit

    def effective_read_bytes(self) -> float:
        """The paper's reduced ``R``: bytes of *unhidden* miss traffic.

        Demand misses still pay their fill; covered misses were hidden.
        (Prefetch traffic itself consumes bus bandwidth but not processor
        stall time — the quantity Eq. 2's R term models.)
        """
        return self.stats.demand_misses * self.cache.config.line_size


def prefetch_covered_fraction(
    instructions: list[Instruction],
    config: CacheConfig,
    policy: PrefetchPolicy = PrefetchPolicy.ON_MISS,
) -> float:
    """Fraction of read-miss traffic a sequential prefetcher hides.

    Feed ``1 - fraction`` as an R multiplier into the Eq. 2 model to
    price prefetching in the unified hit-ratio currency.
    """
    prefetcher = PrefetchingCache(config, policy)
    for inst in instructions:
        if inst.kind.is_memory:
            prefetcher.access(inst)
    return prefetcher.stats.coverage
