"""Address decomposition: byte address -> (tag, set index, line offset)."""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class AddressMap:
    """Maps byte addresses onto a cache geometry.

    Parameters
    ----------
    line_size:
        Bytes per line; power of two.
    n_sets:
        Number of sets; power of two (1 for fully associative).
    """

    line_size: int
    n_sets: int

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if not _is_power_of_two(self.n_sets):
            raise ValueError(f"n_sets must be a power of two, got {self.n_sets}")

    def line_address(self, address: int) -> int:
        """The line-aligned address containing ``address``."""
        return address & ~(self.line_size - 1)

    def offset(self, address: int) -> int:
        """Byte offset of ``address`` within its line."""
        return address & (self.line_size - 1)

    def set_index(self, address: int) -> int:
        """Which set the address maps to."""
        return (address // self.line_size) & (self.n_sets - 1)

    def tag(self, address: int) -> int:
        """The tag stored to disambiguate lines within a set."""
        return address // self.line_size // self.n_sets

    def rebuild_address(self, tag: int, set_index: int) -> int:
        """Inverse of (tag, set_index) -> line address; used for flushes."""
        return ((tag * self.n_sets) + set_index) * self.line_size
