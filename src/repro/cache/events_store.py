"""Content-addressed on-disk cache of extracted :class:`EventStream`\\ s.

Phase 1 of the two-phase engine (the functional cache pass of
:func:`repro.cache.events.extract_events`) is deterministic: the same
trace run against the same :class:`~repro.cache.cache.CacheConfig`
always yields the same event arrays.  This module persists those arrays
so repeated runs — benchmark reruns, ``--all`` invocations, CI — skip
both trace generation and the pure-Python cache stepping entirely.

Key derivation (see ``docs/ENGINE.md``): the cache key is the SHA-256 of
a human-readable *key material* string joining

* the store layout version (:data:`STORE_VERSION`),
* the event-array schema version
  (:data:`repro.cache.events.EVENT_SCHEMA_VERSION`),
* the trace fingerprint (e.g. ``spec92/1/swm256/60000/7`` from
  :func:`repro.trace.spec92.trace_fingerprint` — generator version,
  program, length, seed), and
* every :class:`CacheConfig` field that can influence the functional
  pass.

Bumping any version constant therefore invalidates exactly the entries
it should; no mtime heuristics, no manual cleanup required.  Payloads
are ``.npz`` files (the arrays named by
:data:`~repro.cache.events.EVENT_ARRAYS`) next to a JSON sidecar holding
the metadata and :class:`~repro.cache.stats.CacheStats` counters, both
written atomically (temp file + ``os.replace``) so a killed run never
leaves a truncated entry.  Any load failure — corrupt file, schema
mismatch, partial write — silently falls back to re-extraction.

Opt-out / redirection:

* ``REPRO_EVENTS_CACHE=0`` (or ``off``) disables the store entirely
  (the experiment runner's ``--no-events-cache`` flag sets this, which
  also propagates to ``--jobs`` worker processes);
* ``REPRO_EVENTS_CACHE_DIR=<path>`` overrides the default location
  ``$XDG_CACHE_HOME/repro/events`` (``~/.cache/repro/events``).

Determinism note: the store intentionally records no metrics counters
on its normal hit/miss paths — a cold and a warm run must produce
byte-identical metrics snapshots.  Cache activity is visible through
span tracing (``events_store.load`` / ``events_store.save``) and debug
logging.  The one exception is the **diagnostic-only**
``events_store.corrupt_reextract`` counter, bumped when a present entry
fails to load (corrupt payload, truncated sidecar) and silently falls
back to re-extraction; :func:`repro.obs.manifest.stable_view` strips it
(see :data:`~repro.obs.manifest.DIAGNOSTIC_COUNTERS`) so the
determinism contract is unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
from collections.abc import Callable, Sequence
from pathlib import Path

import numpy as np

from repro.cache.cache import CacheConfig
from repro.cache.events import (
    EVENT_ARRAYS,
    EVENT_SCHEMA_VERSION,
    EventStream,
    extract_events,
)
from repro.cache.stats import CacheStats
from repro.obs import metrics, tracing
from repro.trace.record import Instruction

log = logging.getLogger("repro.events_store")

#: Bump when the on-disk layout (file naming, sidecar format) changes.
STORE_VERSION = 1

#: Set to ``0``/``off``/``false`` to disable the store.
EVENTS_CACHE_ENV = "REPRO_EVENTS_CACHE"

#: Overrides the default cache directory.
EVENTS_CACHE_DIR_ENV = "REPRO_EVENTS_CACHE_DIR"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})


def cache_enabled() -> bool:
    """Whether the on-disk store is active (checked per call, so tests
    and ``--no-events-cache`` can flip it at runtime)."""
    value = os.environ.get(EVENTS_CACHE_ENV)
    return value is None or value.strip().lower() not in _DISABLED_VALUES


def cache_dir() -> Path:
    """Resolved cache directory (not created until first save)."""
    override = os.environ.get(EVENTS_CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "events"


def key_material(trace_fingerprint: str, config: CacheConfig) -> str:
    """The human-readable string whose SHA-256 addresses one entry."""
    return (
        f"store/{STORE_VERSION}"
        f"|events/{EVENT_SCHEMA_VERSION}"
        f"|trace/{trace_fingerprint}"
        f"|cache/{config.total_bytes}/{config.line_size}"
        f"/{config.associativity}/{config.replacement}"
        f"/{config.write_policy.name}/{config.allocate_policy.name}"
    )


def entry_key(trace_fingerprint: str, config: CacheConfig) -> str:
    """Content address (hex SHA-256) of one ``(trace, geometry)`` entry."""
    material = key_material(trace_fingerprint, config)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _paths(key: str) -> tuple[Path, Path]:
    root = cache_dir()
    return root / f"{key}.npz", root / f"{key}.json"


def _atomic_write(path: Path, writer: Callable[[str], None]) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    os.close(fd)
    try:
        writer(tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save(trace_fingerprint: str, config: CacheConfig, events: EventStream) -> None:
    """Persist one extracted stream (best-effort: failures only log)."""
    if not cache_enabled():
        return
    key = entry_key(trace_fingerprint, config)
    npz_path, meta_path = _paths(key)
    stats = {
        f.name: getattr(events.stats, f.name)
        for f in dataclasses.fields(events.stats)
    }
    meta = {
        "store_version": STORE_VERSION,
        "event_schema_version": EVENT_SCHEMA_VERSION,
        "key_material": key_material(trace_fingerprint, config),
        "n_instructions": events.n_instructions,
        "stats": stats,
    }
    arrays = {name: getattr(events, name) for name in EVENT_ARRAYS}

    def _write_npz(tmp: str) -> None:
        with open(tmp, "wb") as handle:  # a file object keeps the name as-is
            np.savez(handle, **arrays)

    def _write_meta(tmp: str) -> None:
        Path(tmp).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    try:
        with tracing.span("events_store.save", key=key[:12]):
            npz_path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write(npz_path, _write_npz)
            _atomic_write(meta_path, _write_meta)
    except OSError as exc:
        log.debug("events_store: save failed for %s: %s", key[:12], exc)


def load(trace_fingerprint: str, config: CacheConfig) -> EventStream | None:
    """Load one entry, or None on miss/corruption/schema mismatch."""
    if not cache_enabled():
        return None
    key = entry_key(trace_fingerprint, config)
    npz_path, meta_path = _paths(key)
    try:
        with tracing.span("events_store.load", key=key[:12]):
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if (
                meta.get("store_version") != STORE_VERSION
                or meta.get("event_schema_version") != EVENT_SCHEMA_VERSION
                or meta.get("key_material") != key_material(trace_fingerprint, config)
            ):
                return None
            with np.load(npz_path) as payload:
                arrays = {name: payload[name] for name in EVENT_ARRAYS}
            stats = CacheStats(**meta["stats"])
            return EventStream(
                config=config,
                n_instructions=int(meta["n_instructions"]),
                stats=stats,
                **arrays,
            )
    except Exception as exc:  # noqa: BLE001 - any corruption => re-extract
        if not isinstance(exc, FileNotFoundError):
            # A present-but-unloadable entry is worth a signal: the data
            # is regenerated transparently, but repeated corruption means
            # a sick disk or a concurrent writer bug.  Diagnostic-only —
            # stable_view strips the counter (DIAGNOSTIC_COUNTERS).
            metrics.inc("events_store.corrupt_reextract")
            log.warning(
                "events_store: corrupt entry %s (%s: %s); re-extracting",
                key[:12],
                type(exc).__name__,
                exc,
            )
        return None


def get_or_extract(
    trace_fingerprint: str,
    config: CacheConfig,
    trace_factory: Callable[[], Sequence[Instruction]],
    profile_factory: Callable[[], "object"] | None = None,
) -> EventStream:
    """The main entry point: disk hit, or extract + persist.

    ``trace_factory`` is only invoked on a miss, so warm runs skip trace
    generation entirely (a significant cost for the loop-nest traces).
    ``profile_factory``, when given, builds the
    :class:`repro.cache.reuse.ReuseProfile` directly — generators whose
    reference stream is analytically known (the loop nests) use it to
    skip both Instruction materialization and the per-reference
    ``build_profile`` loop; it must be byte-identical to
    ``build_profile(trace_factory())`` and is ignored on the stepping
    fallback paths.
    """
    cached = load(trace_fingerprint, config)
    if cached is not None:
        log.debug("events_store: hit %s", trace_fingerprint)
        return cached
    events = _extract(trace_fingerprint, config, trace_factory, profile_factory)
    save(trace_fingerprint, config, events)
    return events


def _extract(
    trace_fingerprint: str,
    config: CacheConfig,
    trace_factory: Callable[[], Sequence[Instruction]],
    profile_factory: Callable[[], "object"] | None = None,
) -> EventStream:
    """Extract one stream through the fastest exact engine available.

    LRU/write-back/write-allocate geometries derive from the per-trace
    reuse profile (:mod:`repro.cache.reuse`) — byte-identical to
    stepping, one shared O(refs log refs) pass per trace instead of a
    pure-Python cache pass per geometry.  Everything else, and any run
    with ``REPRO_REUSE_PROFILE=0``, steps :class:`repro.cache.Cache`.
    Either way the choice is recorded in the diagnostic-only
    ``engine.phase1.dispatches{engine=,reason=}`` counter (mirroring
    ``engine.step_fallback.dispatches``; stripped by ``stable_view``
    because warm runs never reach this function at all).
    """
    from repro.cache import reuse, reuse_store

    if not reuse_store.reuse_enabled():
        metrics.inc("engine.phase1.dispatches", engine="step", reason="disabled")
        return extract_events(trace_factory(), config)
    reason = reuse.unsupported_reason(config)
    if reason is not None:
        metrics.inc("engine.phase1.dispatches", engine="step", reason=reason)
        return extract_events(trace_factory(), config)
    profile = reuse_store.get_or_build(
        trace_fingerprint, trace_factory, profile_factory
    )
    metrics.inc("engine.phase1.dispatches", engine="reuse", reason="lru_wb_wa")
    return reuse.derive_events(profile, config)
