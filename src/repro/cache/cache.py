"""Set-associative cache model.

The cache answers hit/miss questions, manages line state (valid/dirty),
applies the configured replacement and write policies, and reports every
memory-side transfer its caller must perform: line fills, dirty-line
copy-backs, write-arounds, and write-throughs.  Timing is the caller's
job (:mod:`repro.cpu` charges the cycles), which keeps this model usable
for both pure miss-ratio studies and cycle-accurate runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.address import AddressMap
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.cache.write_policy import AllocatePolicy, WritePolicy


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache.

    The paper's Figure 1 configuration is
    ``CacheConfig(total_bytes=8192, line_size=32, associativity=2)`` with
    the default write-back/write-allocate policies.
    """

    total_bytes: int
    line_size: int
    associativity: int
    replacement: str = "lru"
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    allocate_policy: AllocatePolicy = AllocatePolicy.WRITE_ALLOCATE

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.total_bytes):
            raise ValueError(f"total_bytes must be a power of two, got {self.total_bytes}")
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.associativity <= 0:
            raise ValueError(f"associativity must be positive, got {self.associativity}")
        if self.total_bytes % (self.line_size * self.associativity):
            raise ValueError(
                "total_bytes must be divisible by line_size * associativity "
                f"({self.total_bytes} / {self.line_size}*{self.associativity})"
            )
        if not _is_power_of_two(self.n_sets):
            raise ValueError(
                f"derived set count {self.n_sets} must be a power of two"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.total_bytes // (self.line_size * self.associativity)

    @property
    def n_lines(self) -> int:
        """Total line frames."""
        return self.total_bytes // self.line_size


@dataclass(frozen=True)
class AccessOutcome:
    """Everything the memory side must do for one access.

    Attributes
    ----------
    hit:
        Whether the reference hit in the cache.
    line_address:
        Line-aligned address of the referenced data.
    fill_line:
        True when a full line must be fetched from memory.
    flush_line_address:
        Line address of a dirty victim to copy back, or ``None``.
    write_around:
        True when a store bypasses the cache straight to memory.
    write_through:
        True when a store hit must also update memory.
    """

    hit: bool
    line_address: int
    fill_line: bool = False
    flush_line_address: int | None = None
    write_around: bool = False
    write_through: bool = False
    #: line address of any evicted victim, clean or dirty (dirty victims
    #: additionally appear in flush_line_address).  Lets wrappers such as
    #: the victim cache capture clean victims too.
    victim_line_address: int | None = None


@dataclass
class _Line:
    valid: bool = False
    dirty: bool = False
    tag: int = 0


class Cache:
    """A set-associative cache with pluggable policies.

    Use :meth:`read` / :meth:`write` per reference; each returns an
    :class:`AccessOutcome` describing required memory transfers.
    Statistics accumulate in :attr:`stats`.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.address_map = AddressMap(config.line_size, config.n_sets)
        self._sets: list[list[_Line]] = [
            [_Line() for _ in range(config.associativity)]
            for _ in range(config.n_sets)
        ]
        self._policies: list[ReplacementPolicy] = [
            make_policy(config.replacement, config.associativity)
            for _ in range(config.n_sets)
        ]
        self.stats = CacheStats(line_size=config.line_size)

    # -- lookup helpers -------------------------------------------------

    def _find(self, set_index: int, tag: int) -> int | None:
        for way, line in enumerate(self._sets[set_index]):
            if line.valid and line.tag == tag:
                return way
        return None

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no side effects)."""
        set_index = self.address_map.set_index(address)
        tag = self.address_map.tag(address)
        return self._find(set_index, tag) is not None

    def is_dirty(self, address: int) -> bool:
        """Whether the resident line holding ``address`` is dirty."""
        set_index = self.address_map.set_index(address)
        tag = self.address_map.tag(address)
        way = self._find(set_index, tag)
        return way is not None and self._sets[set_index][way].dirty

    # -- fills and evictions --------------------------------------------

    def _allocate(
        self, set_index: int, tag: int, dirty: bool
    ) -> tuple[int | None, bool]:
        """Install a line; returns (victim line address or None, victim
        was dirty).  Dirty victims are counted as flushed."""
        policy = self._policies[set_index]
        ways = self._sets[set_index]
        victim_way = None
        for way, line in enumerate(ways):
            if not line.valid:
                victim_way = way
                break
        victim_address = None
        victim_dirty = False
        if victim_way is None:
            victim_way = policy.victim()
            victim = ways[victim_way]
            self.stats.evictions += 1
            victim_address = self.address_map.rebuild_address(victim.tag, set_index)
            victim_dirty = victim.dirty
            if victim.dirty:
                self.stats.flushed_lines += 1
        ways[victim_way] = _Line(valid=True, dirty=dirty, tag=tag)
        policy.touch(victim_way)
        return victim_address, victim_dirty

    # -- the access protocol --------------------------------------------

    def read(self, address: int) -> AccessOutcome:
        """A load touching ``address``."""
        set_index = self.address_map.set_index(address)
        tag = self.address_map.tag(address)
        line_address = self.address_map.line_address(address)
        way = self._find(set_index, tag)
        if way is not None:
            self.stats.read_hits += 1
            self._policies[set_index].touch(way)
            return AccessOutcome(hit=True, line_address=line_address)
        self.stats.read_misses += 1
        victim, victim_dirty = self._allocate(set_index, tag, dirty=False)
        return AccessOutcome(
            hit=False,
            line_address=line_address,
            fill_line=True,
            flush_line_address=victim if victim_dirty else None,
            victim_line_address=victim,
        )

    def write(self, address: int) -> AccessOutcome:
        """A store touching ``address``."""
        config = self.config
        set_index = self.address_map.set_index(address)
        tag = self.address_map.tag(address)
        line_address = self.address_map.line_address(address)
        way = self._find(set_index, tag)
        if way is not None:
            self.stats.write_hits += 1
            self._policies[set_index].touch(way)
            if config.write_policy is WritePolicy.WRITE_BACK:
                self._sets[set_index][way].dirty = True
                return AccessOutcome(hit=True, line_address=line_address)
            self.stats.write_through_count += 1
            return AccessOutcome(
                hit=True, line_address=line_address, write_through=True
            )

        self.stats.write_misses += 1
        if config.allocate_policy is AllocatePolicy.WRITE_AROUND:
            self.stats.write_around_count += 1
            return AccessOutcome(
                hit=False, line_address=line_address, write_around=True
            )

        # Write-allocate: fetch the line, then perform the write into it.
        self.stats.write_allocate_fills += 1
        dirty = config.write_policy is WritePolicy.WRITE_BACK
        victim, victim_dirty = self._allocate(set_index, tag, dirty=dirty)
        write_through = config.write_policy is WritePolicy.WRITE_THROUGH
        if write_through:
            self.stats.write_through_count += 1
        return AccessOutcome(
            hit=False,
            line_address=line_address,
            fill_line=True,
            flush_line_address=victim if victim_dirty else None,
            victim_line_address=victim,
            write_through=write_through,
        )

    def mark_dirty(self, address: int) -> bool:
        """Mark the resident line holding ``address`` dirty (no stats).

        Used by wrappers (e.g. the victim cache) that restore a line whose
        dirtiness was tracked outside this cache.  Returns False when the
        line is not resident.
        """
        set_index = self.address_map.set_index(address)
        tag = self.address_map.tag(address)
        way = self._find(set_index, tag)
        if way is None:
            return False
        self._sets[set_index][way].dirty = True
        return True

    def invalidate(self, address: int) -> int | None:
        """Drop the line holding ``address``; returns its line address if
        it was dirty (the caller owes a copy-back), else ``None``."""
        set_index = self.address_map.set_index(address)
        tag = self.address_map.tag(address)
        way = self._find(set_index, tag)
        if way is None:
            return None
        line = self._sets[set_index][way]
        was_dirty = line.dirty
        self._sets[set_index][way] = _Line()
        self._policies[set_index].reset_way(way)
        self.stats.invalidations += 1
        if was_dirty:
            self.stats.flushed_lines += 1
            return self.address_map.line_address(address)
        return None

    def resident_lines(self) -> list[int]:
        """Line addresses of every valid line (diagnostics and tests)."""
        addresses = []
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid:
                    addresses.append(
                        self.address_map.rebuild_address(line.tag, set_index)
                    )
        return sorted(addresses)
