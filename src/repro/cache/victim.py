"""Victim cache (Jouppi 1990, the paper's reference [7]).

A small fully-associative buffer holding lines recently evicted from the
main cache.  A main-cache miss that hits in the victim buffer swaps the
line back at on-chip cost instead of paying a memory fill — one of the
"other architectural features" the paper's related work positions
against its hit-ratio currency.  The unified methodology prices it like
everything else: the buffer's whole effect is an increase in *effective*
hit ratio, measurable with :func:`victim_hit_ratio_gain` and directly
comparable to, say, the 0.5–0.6 × (1−HR) a doubled bus is worth.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.cache import AccessOutcome, Cache, CacheConfig
from repro.trace.record import Instruction, OpKind


@dataclass
class VictimStats:
    """Aggregate accounting for the cache + victim buffer combination."""

    accesses: int = 0
    main_hits: int = 0
    rescues: int = 0
    memory_fills: int = 0
    flushes_to_memory: int = 0

    @property
    def effective_hits(self) -> int:
        """Main hits plus victim rescues — no memory trip either way."""
        return self.main_hits + self.rescues

    @property
    def effective_hit_ratio(self) -> float:
        """Hit ratio with rescues counted as hits."""
        return self.effective_hits / self.accesses if self.accesses else 0.0

    @property
    def rescue_ratio(self) -> float:
        """Fraction of main-cache misses the buffer rescued."""
        misses = self.accesses - self.main_hits
        return self.rescues / misses if misses else 0.0


class VictimCache:
    """A main cache backed by a small fully-associative victim buffer.

    Evicted lines (clean or dirty) enter the buffer in LRU order; a
    miss that finds its line there swaps it back without touching
    memory.  Dirty state survives the round trip.  Only lines displaced
    out of a *full* buffer reach memory (flushed if dirty).
    """

    def __init__(self, config: CacheConfig, victim_lines: int = 4) -> None:
        if victim_lines <= 0:
            raise ValueError(f"victim_lines must be positive, got {victim_lines}")
        self.main = Cache(config)
        self.victim_lines = victim_lines
        #: line address -> dirty, in LRU order (oldest first).
        self._buffer: OrderedDict[int, bool] = OrderedDict()
        self.stats = VictimStats()

    def __len__(self) -> int:
        return len(self._buffer)

    def holds(self, line_address: int) -> bool:
        """Whether the buffer currently holds ``line_address``."""
        return line_address in self._buffer

    def _stash(self, line_address: int, dirty: bool) -> int | None:
        """Put an evicted line into the buffer; returns the line address
        of a dirty overflow that must be flushed to memory, or None."""
        if line_address in self._buffer:
            dirty = dirty or self._buffer.pop(line_address)
        flushed = None
        if len(self._buffer) >= self.victim_lines:
            oldest, oldest_dirty = self._buffer.popitem(last=False)
            if oldest_dirty:
                flushed = oldest
        self._buffer[line_address] = dirty
        return flushed

    def _absorb_eviction(self, outcome: AccessOutcome, main: Cache) -> int | None:
        """Route a main-cache eviction (clean or dirty) through the buffer.

        Jouppi's buffer captures every victim; only what overflows the
        buffer (and is dirty) reaches memory, so a dirty victim the
        buffer absorbed must be uncounted from the main cache's flush
        statistics.
        """
        if outcome.victim_line_address is None:
            return None
        dirty = outcome.flush_line_address is not None
        if dirty:
            # The main cache already counted a flush; the buffer
            # intercepts it — memory only sees buffer overflows.
            main.stats.flushed_lines -= 1
        return self._stash(outcome.victim_line_address, dirty=dirty)

    def access(self, inst: Instruction) -> AccessOutcome:
        """One load/store through the combination.

        The outcome describes memory-side work only: rescues report
        ``hit=True`` without a fill; ``flush_line_address`` is a dirty
        line overflowing the buffer.
        """
        if inst.kind is OpKind.ALU:
            raise ValueError("victim cache handles memory operations only")
        main = self.main
        line_address = main.address_map.line_address(inst.address)
        self.stats.accesses += 1

        if main.contains(inst.address):
            self.stats.main_hits += 1
            outcome = (
                main.read(inst.address)
                if inst.kind is OpKind.LOAD
                else main.write(inst.address)
            )
            return outcome

        rescued = line_address in self._buffer
        was_dirty = self._buffer.pop(line_address, False) if rescued else False

        outcome = (
            main.read(inst.address)
            if inst.kind is OpKind.LOAD
            else main.write(inst.address)
        )
        flushed = self._absorb_eviction(outcome, main)

        if rescued:
            self.stats.rescues += 1
            if was_dirty:
                main.mark_dirty(inst.address)
            return AccessOutcome(
                hit=True,
                line_address=line_address,
                fill_line=False,
                flush_line_address=flushed,
            )

        self.stats.memory_fills += 1
        if flushed is not None:
            self.stats.flushes_to_memory += 1
        return AccessOutcome(
            hit=False,
            line_address=line_address,
            fill_line=outcome.fill_line,
            flush_line_address=flushed,
            write_around=outcome.write_around,
            write_through=outcome.write_through,
        )


def victim_hit_ratio_gain(
    instructions: list[Instruction],
    config: CacheConfig,
    victim_lines: int = 4,
) -> float:
    """Hit-ratio increase a victim buffer delivers on a trace.

    This is the quantity the unified methodology prices directly:
    compare it against
    :func:`repro.core.bus_width.hit_ratio_gain_equivalent_to_doubling`
    to decide whether the buffer out-values a wider bus.
    """
    plain = Cache(config)
    combined = VictimCache(config, victim_lines)
    for inst in instructions:
        if inst.kind is OpKind.ALU:
            continue
        if inst.kind is OpKind.LOAD:
            plain.read(inst.address)
        else:
            plain.write(inst.address)
        combined.access(inst)
    return combined.stats.effective_hit_ratio - plain.stats.hit_ratio
