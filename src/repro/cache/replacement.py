"""Replacement policies for one cache set.

Each policy tracks way usage for a single set; the cache owns one policy
instance per set.  All policies share the same three-call protocol:

* :meth:`ReplacementPolicy.touch` — a way was accessed (hit or fill);
* :meth:`ReplacementPolicy.victim` — choose the way to evict;
* :meth:`ReplacementPolicy.reset_way` — a way was invalidated.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class ReplacementPolicy(ABC):
    """Per-set replacement state machine."""

    def __init__(self, n_ways: int) -> None:
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        self.n_ways = n_ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record an access (hit or line fill) to ``way``."""

    @abstractmethod
    def victim(self) -> int:
        """The way to evict next."""

    def reset_way(self, way: int) -> None:
        """A way was invalidated; default: no state change needed."""

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.n_ways:
            raise ValueError(f"way {way} out of range [0, {self.n_ways})")


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via an access-ordered list."""

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        # Most recent at the end; starts in way order so victim() is way 0.
        self._order = list(range(n_ways))

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def reset_way(self, way: int) -> None:
        self._check_way(way)
        self._order.remove(way)
        self._order.insert(0, way)


class FIFOPolicy(ReplacementPolicy):
    """Round-robin eviction in fill order; hits do not reorder."""

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        self._next = 0
        self._filled: set[int] = set()

    def touch(self, way: int) -> None:
        self._check_way(way)
        if way not in self._filled:
            self._filled.add(way)
            self._next = (way + 1) % self.n_ways

    def victim(self) -> int:
        return self._next

    def reset_way(self, way: int) -> None:
        self._check_way(way)
        self._filled.discard(way)
        self._next = way


class RandomPolicy(ReplacementPolicy):
    """Uniformly random eviction (seeded for reproducibility)."""

    def __init__(self, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_ways)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        self._check_way(way)

    def victim(self) -> int:
        return self._rng.randrange(self.n_ways)


class PLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU; requires a power-of-two way count.

    One bit per internal node of a balanced binary tree points away from
    the most recent access; following the bits from the root finds the
    pseudo-LRU way in O(log ways).
    """

    def __init__(self, n_ways: int) -> None:
        super().__init__(n_ways)
        if n_ways & (n_ways - 1):
            raise ValueError(f"PLRU needs a power-of-two way count, got {n_ways}")
        self._bits = [0] * max(1, n_ways - 1)

    def touch(self, way: int) -> None:
        self._check_way(way)
        if self.n_ways == 1:
            return
        node = 0
        low, high = 0, self.n_ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self._bits[node] = 1  # point away: toward the upper half
                node = 2 * node + 1
                high = mid
            else:
                self._bits[node] = 0  # point toward the lower half
                node = 2 * node + 2
                low = mid

    def victim(self) -> int:
        if self.n_ways == 1:
            return 0
        node = 0
        low, high = 0, self.n_ways
        while high - low > 1:
            mid = (low + high) // 2
            if self._bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": PLRUPolicy,
}


def make_policy(name: str, n_ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (lru/fifo/random/plru)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(n_ways)
