"""Split instruction/data cache organization (paper assumption 1).

The paper's RISC model has separate on-chip instruction and data caches
with their own buses.  ``SplitCacheSystem`` routes each instruction to
the right cache and exposes the combined characterization the
execution-time model needs (``R`` from the data side, ``RI`` from the
instruction side).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import AccessOutcome, Cache, CacheConfig
from repro.trace.record import Instruction, OpKind


@dataclass(frozen=True)
class SplitAccessResult:
    """Per-instruction outcome from both caches."""

    instruction_outcome: AccessOutcome | None
    data_outcome: AccessOutcome | None


class SplitCacheSystem:
    """An instruction cache and a data cache behind separate buses."""

    def __init__(
        self,
        data_config: CacheConfig,
        instruction_config: CacheConfig | None = None,
        instruction_bytes_per_op: int = 4,
    ) -> None:
        self.dcache = Cache(data_config)
        self.icache = Cache(instruction_config) if instruction_config else None
        self.instruction_bytes_per_op = instruction_bytes_per_op
        self._pc = 0

    def execute(self, inst: Instruction) -> SplitAccessResult:
        """Run one instruction through the hierarchy.

        The instruction fetch uses a synthetic sequential PC (the paper's
        instruction caches are close to always-hit; Section 3.4); the data
        access goes to the data cache for loads/stores.
        """
        instruction_outcome = None
        if self.icache is not None:
            instruction_outcome = self.icache.read(self._pc)
            self._pc += self.instruction_bytes_per_op
        data_outcome = None
        if inst.kind is OpKind.LOAD:
            data_outcome = self.dcache.read(inst.address)
        elif inst.kind is OpKind.STORE:
            data_outcome = self.dcache.write(inst.address)
        return SplitAccessResult(instruction_outcome, data_outcome)

    def run(self, instructions: list[Instruction]) -> None:
        """Execute a whole stream (statistics accumulate in the caches)."""
        for inst in instructions:
            self.execute(inst)
