"""Write-handling policy enums (paper Sections 2 and 3.1).

The paper's model distinguishes two write-miss modes:

* **write-allocate** — the missing line is read into the cache first, so
  write misses are folded into the read volume ``R`` and ``W = 0``;
* **write-around** — the store goes straight to memory over the external
  bus (one ``beta_m`` cycle for operands up to ``D`` bytes), counted by
  ``W``.

Orthogonally, hits update memory **write-back** (dirty lines flushed on
eviction, producing the ``alpha R`` copy-back traffic) or
**write-through** (every store also goes to memory).  The paper's
analyses all use the write-back/write-allocate combination; the others
exist to let the simulator explore the full design space.
"""

from __future__ import annotations

from enum import Enum


class WritePolicy(Enum):
    """How store *hits* propagate to memory."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AllocatePolicy(Enum):
    """How store *misses* are handled."""

    WRITE_ALLOCATE = "write-allocate"
    WRITE_AROUND = "write-around"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
