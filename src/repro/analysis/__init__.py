"""Analysis layer: from simulations to the paper's model parameters.

* :mod:`repro.analysis.characterize` — extract ``{E, R, W, alpha, phi}``
  from a trace run (Table 1);
* :mod:`repro.analysis.hit_ratio_model` — hit-ratio-versus-cache-size
  models (power-law fits, table interpolation);
* :mod:`repro.analysis.short_levy` — the Short & Levy hit-ratio points
  behind Example 1;
* :mod:`repro.analysis.smith_targets` — design-target miss-ratio tables
  for the Figure 6 validation;
* :mod:`repro.analysis.chip_area` — cache area and pin-count models for
  the Section 5.2 implications.
"""

from repro.analysis.calibration import (
    CalibrationResult,
    bisect_knob,
    calibrate_hit_ratio,
    calibrate_spatial_locality,
)
from repro.analysis.characterize import CharacterizedRun, characterize
from repro.analysis.design_advisor import (
    DesignBrief,
    Recommendation,
    best_single_feature,
    recommend,
)
from repro.analysis.chip_area import (
    CacheAreaModel,
    PackageModel,
    bus_width_pin_delta,
)
from repro.analysis.pareto import (
    Bundle,
    BundlePoint,
    design_frontier,
    evaluate_bundles,
    pareto_front,
)
from repro.analysis.hit_ratio_model import (
    HitRatioCurve,
    PowerLawMissModel,
    fit_power_law,
)
from repro.analysis.short_levy import SHORT_LEVY_HIT_RATIOS, short_levy_curve
from repro.analysis.smith_targets import (
    DESIGN_TARGET_MISS_RATIOS,
    design_target_table,
)

__all__ = [
    "characterize",
    "CharacterizedRun",
    "HitRatioCurve",
    "PowerLawMissModel",
    "fit_power_law",
    "SHORT_LEVY_HIT_RATIOS",
    "short_levy_curve",
    "DESIGN_TARGET_MISS_RATIOS",
    "design_target_table",
    "CacheAreaModel",
    "PackageModel",
    "bus_width_pin_delta",
    "DesignBrief",
    "Recommendation",
    "recommend",
    "best_single_feature",
    "Bundle",
    "BundlePoint",
    "evaluate_bundles",
    "pareto_front",
    "design_frontier",
    "CalibrationResult",
    "bisect_knob",
    "calibrate_hit_ratio",
    "calibrate_spatial_locality",
]
