"""Hit-ratio versus cache-size models.

The tradeoff results convert hit-ratio differences into cache-size
differences ("reducing the hit ratio, hence the cache size").  Two model
families support that conversion:

* :class:`HitRatioCurve` — log-size interpolation through measured or
  published (size, hit-ratio) points, e.g. the Short & Levy table;
* :class:`PowerLawMissModel` — the classic ``MR(C) = MR(C0) (C/C0)^-k``
  power law (k around 0.3-0.5 for real workloads), fit from points with
  :func:`fit_power_law`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PowerLawMissModel:
    """``MR(C) = reference_miss * (C / reference_size) ** -exponent``."""

    reference_size: float
    reference_miss: float
    exponent: float

    def __post_init__(self) -> None:
        if self.reference_size <= 0:
            raise ValueError("reference_size must be positive")
        if not 0.0 < self.reference_miss <= 1.0:
            raise ValueError("reference_miss must be in (0, 1]")
        if self.exponent < 0:
            raise ValueError("exponent must be non-negative")

    def miss_ratio(self, cache_bytes: float) -> float:
        """Miss ratio at ``cache_bytes`` (clipped into (0, 1])."""
        if cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        value = self.reference_miss * (cache_bytes / self.reference_size) ** (
            -self.exponent
        )
        return min(1.0, value)

    def hit_ratio(self, cache_bytes: float) -> float:
        """``1 - MR``."""
        return 1.0 - self.miss_ratio(cache_bytes)

    def size_for_hit_ratio(self, hit_ratio: float) -> float:
        """Invert the law: bytes needed to reach ``hit_ratio``."""
        if not 0.0 <= hit_ratio < 1.0:
            raise ValueError("hit_ratio must be in [0, 1)")
        if self.exponent == 0:
            raise ValueError("a flat model cannot be inverted")
        target_miss = 1.0 - hit_ratio
        return self.reference_size * (target_miss / self.reference_miss) ** (
            -1.0 / self.exponent
        )


def fit_power_law(points: dict[float, float]) -> PowerLawMissModel:
    """Least-squares power-law fit through ``{cache_bytes: miss_ratio}``.

    Fits ``log MR = log MR0 - k log(C/C0)`` with the smallest size as the
    reference; needs at least two points.
    """
    if len(points) < 2:
        raise ValueError("need at least two (size, miss) points")
    sizes = np.array(sorted(points))
    misses = np.array([points[s] for s in sizes])
    if (sizes <= 0).any() or (misses <= 0).any() or (misses > 1).any():
        raise ValueError("sizes must be positive and miss ratios in (0, 1]")
    reference = sizes[0]
    x = np.log(sizes / reference)
    y = np.log(misses)
    slope, intercept = np.polyfit(x, y, 1)
    return PowerLawMissModel(
        reference_size=float(reference),
        reference_miss=float(math.exp(intercept)),
        exponent=float(-slope),
    )


class HitRatioCurve:
    """Monotone log-size interpolation through (size, hit-ratio) points.

    Outside the sampled range the curve clamps to its end points rather
    than extrapolating — design decisions should not ride on invented
    hit ratios.
    """

    def __init__(self, points: dict[float, float]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two (size, hit-ratio) points")
        sizes = sorted(points)
        ratios = [points[s] for s in sizes]
        if any(s <= 0 for s in sizes):
            raise ValueError("cache sizes must be positive")
        if any(not 0.0 <= hr <= 1.0 for hr in ratios):
            raise ValueError("hit ratios must be in [0, 1]")
        if any(b < a for a, b in zip(ratios, ratios[1:])):
            raise ValueError("hit ratios must be non-decreasing with size")
        self._log_sizes = np.log(np.array(sizes, dtype=float))
        self._ratios = np.array(ratios, dtype=float)
        self._sizes = sizes

    def hit_ratio(self, cache_bytes: float) -> float:
        """Interpolated hit ratio at ``cache_bytes``."""
        if cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        return float(
            np.interp(math.log(cache_bytes), self._log_sizes, self._ratios)
        )

    def size_for_hit_ratio(self, hit_ratio: float) -> float:
        """Smallest sampled-range size achieving ``hit_ratio``.

        Raises when the target exceeds the best sampled hit ratio.
        """
        if hit_ratio > self._ratios[-1]:
            raise ValueError(
                f"hit ratio {hit_ratio} above the curve's maximum "
                f"{self._ratios[-1]}"
            )
        if hit_ratio <= self._ratios[0]:
            return float(self._sizes[0])
        log_size = float(np.interp(hit_ratio, self._ratios, self._log_sizes))
        return math.exp(log_size)
