"""Workload calibration: make a synthetic stream hit a target statistic.

The SPEC92 stand-ins (DESIGN.md, substitutions) were tuned by hand; this
module provides the systematic version, used to build new stand-ins and
to document how the shipped ones were obtained.  The central tool is a
robust bisection over one generator knob against a measured statistic:

* :func:`calibrate_hit_ratio` — size a working set so a cache
  configuration sees a target hit ratio;
* :func:`calibrate_spatial_locality` — tune a mix's run length until
  consecutive references co-locate on lines at a target rate.

Both return the knob value and the achieved statistic, so calibration
results are reproducible artifacts rather than folklore.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.cache.cache import Cache, CacheConfig
from repro.trace.record import Instruction, OpKind
from repro.trace.stats import summarize
from repro.trace.synthetic import (
    SyntheticTraceBuilder,
    mix,
    sequential_sweep,
    working_set,
)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration search."""

    knob: float
    achieved: float
    target: float
    iterations: int

    @property
    def error(self) -> float:
        """Absolute target miss."""
        return abs(self.achieved - self.target)


def bisect_knob(
    measure: Callable[[float], float],
    target: float,
    low: float,
    high: float,
    increasing: bool,
    tolerance: float = 0.01,
    max_iterations: int = 24,
) -> CalibrationResult:
    """Bisection on a monotone (possibly noisy) knob-to-statistic map.

    ``increasing`` declares the direction of monotonicity; the search
    stops at ``tolerance`` on the statistic or after ``max_iterations``.
    Raises when the target lies outside the bracket's achieved range.
    """
    if low >= high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    value_low, value_high = measure(low), measure(high)
    lo_stat, hi_stat = (
        (value_low, value_high) if increasing else (value_high, value_low)
    )
    if not lo_stat - tolerance <= target <= hi_stat + tolerance:
        raise ValueError(
            f"target {target:.4f} outside achievable range "
            f"[{lo_stat:.4f}, {hi_stat:.4f}]"
        )
    best = (low, value_low) if abs(value_low - target) < abs(
        value_high - target
    ) else (high, value_high)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        mid = 0.5 * (low + high)
        achieved = measure(mid)
        if abs(achieved - target) < abs(best[1] - target):
            best = (mid, achieved)
        if abs(achieved - target) <= tolerance:
            break
        if (achieved < target) == increasing:
            low = mid
        else:
            high = mid
    return CalibrationResult(
        knob=best[0], achieved=best[1], target=target, iterations=iterations
    )


def _measure_hit_ratio(
    instructions: list[Instruction], config: CacheConfig
) -> float:
    cache = Cache(config)
    for inst in instructions:
        if inst.kind is OpKind.LOAD:
            cache.read(inst.address)
        elif inst.kind is OpKind.STORE:
            cache.write(inst.address)
    return cache.stats.hit_ratio


def calibrate_hit_ratio(
    target_hit_ratio: float,
    cache_config: CacheConfig,
    n_instructions: int = 20_000,
    seed: int = 0,
    tolerance: float = 0.02,
) -> CalibrationResult:
    """Size a hot working set so the cache sees ``target_hit_ratio``.

    The knob is the hot-region size as a multiple of the cache size
    (log-ish range [0.25, 16]); bigger hot sets mean lower hit ratios,
    so the statistic is decreasing in the knob.
    """
    if not 0.05 < target_hit_ratio < 0.999:
        raise ValueError(
            f"target_hit_ratio must be in (0.05, 0.999), got {target_hit_ratio}"
        )

    def measure(multiple: float) -> float:
        rng = random.Random(seed)
        builder = SyntheticTraceBuilder(seed=seed, loadstore_fraction=0.3)
        hot = max(1024, int(cache_config.total_bytes * multiple))
        pattern = working_set(
            0, hot, 16 * hot, hot_probability=0.95, rng=rng, align=8
        )
        return _measure_hit_ratio(
            builder.build(pattern, n_instructions), cache_config
        )

    return bisect_knob(
        measure,
        target_hit_ratio,
        low=0.25,
        high=16.0,
        increasing=False,
        tolerance=tolerance,
    )


def calibrate_spatial_locality(
    target_locality: float,
    line_size: int = 32,
    n_instructions: int = 20_000,
    n_streams: int = 3,
    seed: int = 0,
    tolerance: float = 0.03,
) -> CalibrationResult:
    """Tune a sequential mix's run length to a target spatial locality.

    Longer runs keep consecutive references on one stream (hence often
    one line), raising :attr:`repro.trace.stats.TraceStats.spatial_locality`.
    """
    if not 0.0 < target_locality < 0.95:
        raise ValueError(
            f"target_locality must be in (0, 0.95), got {target_locality}"
        )

    def measure(run_length: float) -> float:
        rng = random.Random(seed)
        streams = [
            sequential_sweep(i << 24, 1 << 20, 8) for i in range(n_streams)
        ]
        pattern = mix(
            streams,
            weights=[1.0] * n_streams,
            rng=rng,
            run_length=max(1, int(round(run_length))),
        )
        builder = SyntheticTraceBuilder(seed=seed, loadstore_fraction=0.3)
        trace = builder.build(pattern, n_instructions)
        return summarize(trace, line_size=line_size).spatial_locality

    return bisect_knob(
        measure,
        target_locality,
        low=1.0,
        high=256.0,
        increasing=True,
        tolerance=tolerance,
    )
