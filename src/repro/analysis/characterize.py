"""Extract the paper's Table 1 characterization from a trace run.

``characterize`` runs a functional (untimed) cache simulation and maps
the statistics onto ``{E, R, W, alpha}``; with ``measure_phi=True`` it
also runs the timing simulator per requested stalling policy to measure
``phi``.  The result feeds straight into :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import Cache, CacheConfig
from repro.core.params import WorkloadCharacter
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.record import Instruction, OpKind


@dataclass(frozen=True)
class CharacterizedRun:
    """A workload characterization plus its bookkeeping.

    ``workload`` is directly usable by the Eq. (2) model; ``references``
    is ``Lambda_h + Lambda_m`` (needed to convert between miss counts and
    miss ratios); ``stall_factors`` maps each measured policy to its
    ``phi`` (empty when ``measure_phi`` was off).
    """

    workload: WorkloadCharacter
    references: int
    hit_ratio: float
    stall_factors: dict[StallPolicy, float]


def characterize(
    instructions: list[Instruction],
    cache_config: CacheConfig,
    measure_phi: bool = False,
    policies: tuple[StallPolicy, ...] = (StallPolicy.BUS_NOT_LOCKED_1,),
    memory_cycle: float = 8.0,
    bus_width: int = 4,
) -> CharacterizedRun:
    """Run a trace through a cache and produce its Table 1 parameters.

    Parameters
    ----------
    instructions:
        The instruction stream (``E`` = its length).
    cache_config:
        Data-cache configuration to characterize against; ``R``, ``W``
        and ``alpha`` are configuration-dependent quantities.
    measure_phi:
        Also run the timing simulator for each of ``policies`` at
        ``memory_cycle``/``bus_width`` to measure stalling factors.
    """
    cache = Cache(cache_config)
    count = 0
    for inst in instructions:
        count += 1
        if inst.kind is OpKind.LOAD:
            cache.read(inst.address)
        elif inst.kind is OpKind.STORE:
            cache.write(inst.address)
    stats = cache.stats

    workload = WorkloadCharacter(
        instructions=count,
        read_bytes=stats.read_miss_bytes,
        write_around_misses=stats.write_around_count,
        flush_ratio=stats.flush_ratio,
    )

    stall_factors: dict[StallPolicy, float] = {}
    if measure_phi:
        for policy in policies:
            simulator = TimingSimulator(
                cache_config,
                MainMemory(memory_cycle, bus_width),
                policy=policy,
            )
            stall_factors[policy] = simulator.run(instructions).stall_factor

    return CharacterizedRun(
        workload=workload,
        references=stats.accesses,
        hit_ratio=stats.hit_ratio,
        stall_factors=stall_factors,
    )
