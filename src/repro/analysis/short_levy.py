"""Short & Levy hit-ratio data behind the paper's Example 1 (Section 5.2).

The paper cites Short and Levy's trace-driven simulation [14] for two
anchor facts:

* raising the hit ratio from 91 % to 95.5 % requires growing the cache
  from 8 KB to about 32 KB;
* a 64-bit-bus, 32 KB-cache processor matches a 32-bit-bus, 128 KB-cache
  processor, which (via the asymptotic rule ``HR2 = 2 HR1 - 1``) pins the
  128 KB hit ratio at 97.75 %.

Those three points are the table below; :func:`short_levy_curve` wraps
them in an interpolating :class:`~repro.analysis.hit_ratio_model.HitRatioCurve`
for sizes in between.
"""

from __future__ import annotations

from repro.analysis.hit_ratio_model import HitRatioCurve

KIB = 1024

#: Hit ratios by cache size (bytes), from Example 1's anchor points.
SHORT_LEVY_HIT_RATIOS: dict[float, float] = {
    8 * KIB: 0.91,
    32 * KIB: 0.955,
    128 * KIB: 0.9775,
}


def short_levy_curve() -> HitRatioCurve:
    """The Example 1 hit-ratio-versus-size curve."""
    return HitRatioCurve(SHORT_LEVY_HIT_RATIOS)
