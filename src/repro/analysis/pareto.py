"""Pareto frontier over feature bundles.

The advisor ranks single features; real designs combine them.  The
closed forms do not compose, but the numeric solver
(:mod:`repro.core.solver`) does: this module enumerates feature bundles
(bus doubling x write buffers x pipelined memory), evaluates each
bundle's performance as the speedup over the bare baseline, prices it in
package pins and rbe area, and returns the Pareto-efficient set — the
bundles no other bundle beats on every axis at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.analysis.chip_area import CacheAreaModel, bus_width_pin_delta
from repro.core.params import SystemConfig, workload_from_hit_ratio
from repro.core.execution import execution_time
from repro.core.solver import SystemUnderTest
from repro.memory.interleaved import banks_for_turnaround


@dataclass(frozen=True)
class Bundle:
    """One feature combination (plus optional cache growth).

    ``cache_factor`` > 1 marks the paper's baseline alternative: spend
    the budget on a bigger cache instead of (or on top of) features.
    """

    double_bus: bool
    write_buffers: bool
    pipelined: bool
    cache_factor: int = 1

    @property
    def label(self) -> str:
        """Human-readable bundle name."""
        parts = []
        if self.cache_factor > 1:
            parts.append(f"{self.cache_factor}x cache")
        if self.double_bus:
            parts.append("2x bus")
        if self.write_buffers:
            parts.append("write buffers")
        if self.pipelined:
            parts.append("pipelined mem")
        return " + ".join(parts) if parts else "baseline"


@dataclass(frozen=True)
class BundlePoint:
    """A bundle with its value and costs.

    ``memory_banks`` prices the pipelined memory in hardware: the banks
    that realize Eq. (9)'s turnaround
    (:func:`repro.memory.interleaved.banks_for_turnaround`); an
    unpipelined memory needs one.
    """

    bundle: Bundle
    speedup: float
    pin_cost: float
    area_cost_rbe: float
    memory_banks: int

    def dominates(self, other: BundlePoint) -> bool:
        """Pareto dominance: at least as good everywhere, better somewhere."""
        at_least = (
            self.speedup >= other.speedup
            and self.pin_cost <= other.pin_cost
            and self.area_cost_rbe <= other.area_cost_rbe
            and self.memory_banks <= other.memory_banks
        )
        strictly = (
            self.speedup > other.speedup
            or self.pin_cost < other.pin_cost
            or self.area_cost_rbe < other.area_cost_rbe
            or self.memory_banks < other.memory_banks
        )
        return at_least and strictly


def evaluate_bundles(
    config: SystemConfig,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
    write_buffer_depth_lines: int = 4,
    hit_ratio_curve=None,
    cache_bytes: int | None = None,
    cache_factors: tuple[int, ...] = (2, 4),
) -> list[BundlePoint]:
    """Speedup and costs for all eight feature bundles.

    The pipelined + doubled-bus combination pipelines the *wide* memory
    (Eq. 9 on the doubled configuration).

    Passing ``hit_ratio_curve`` and ``cache_bytes`` adds the paper's
    baseline alternative — cache-growth points at ``cache_factors`` —
    priced in the same rbe area as the write buffers, which is what
    makes the frontier discriminate (feature-only bundles have pairwise
    incomparable costs).
    """
    instructions = 1_000_000.0
    baseline_workload = workload_from_hit_ratio(
        base_hit_ratio, config, instructions, flush_ratio=flush_ratio
    )
    baseline_time = execution_time(baseline_workload, config)
    area_model = CacheAreaModel()
    points = []

    if hit_ratio_curve is not None:
        if cache_bytes is None:
            raise ValueError("cache growth points need cache_bytes")
        base_area = area_model.area(cache_bytes, config.line_size, 2)
        for factor in cache_factors:
            grown_hr = hit_ratio_curve.hit_ratio(cache_bytes * factor)
            grown_workload = workload_from_hit_ratio(
                grown_hr, config, instructions, flush_ratio=flush_ratio
            )
            grown_time = execution_time(grown_workload, config)
            extra_area = (
                area_model.area(cache_bytes * factor, config.line_size, 2)
                - base_area
            )
            points.append(
                BundlePoint(
                    bundle=Bundle(False, False, False, cache_factor=factor),
                    speedup=baseline_time / grown_time,
                    pin_cost=0.0,
                    area_cost_rbe=extra_area,
                    memory_banks=1,
                )
            )

    for double_bus, buffers, pipelined in product((False, True), repeat=3):
        bundle = Bundle(double_bus, buffers, pipelined)
        bundle_config = config.doubled_bus() if double_bus else config
        under_test = SystemUnderTest(
            bundle_config, write_buffers=buffers, pipelined=pipelined
        )
        time = under_test.execution_time_at(
            base_hit_ratio, instructions, 0.3, flush_ratio
        )
        pins = (
            bus_width_pin_delta(config.bus_width * 8, config.bus_width * 16)
            if double_bus
            else 0.0
        )
        area = (
            write_buffer_depth_lines
            * bundle_config.line_size
            * 8
            * area_model.rbe_per_bit
            if buffers
            else 0.0
        )
        banks = (
            banks_for_turnaround(
                config.memory_cycle, config.pipeline_turnaround
            )
            if pipelined
            else 1
        )
        points.append(
            BundlePoint(
                bundle=bundle,
                speedup=baseline_time / time,
                pin_cost=pins,
                area_cost_rbe=area,
                memory_banks=banks,
            )
        )
    return points


def pareto_front(points: list[BundlePoint]) -> list[BundlePoint]:
    """The non-dominated subset, sorted by descending speedup."""
    front = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    return sorted(front, key=lambda p: -p.speedup)


def design_frontier(
    config: SystemConfig,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
) -> list[BundlePoint]:
    """One-call: evaluate all bundles and return the Pareto front."""
    return pareto_front(evaluate_bundles(config, base_hit_ratio, flush_ratio))
