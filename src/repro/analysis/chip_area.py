"""Chip-area and pin-count models for the Section 5.2 implications.

The paper's Example 1 argues that for small caches, growing the cache
(chip area) buys the same performance as doubling the external bus
(package pins), while for large caches the bus is the cheaper currency.
Quantifying that argument needs two cost models:

* :class:`CacheAreaModel` — on-chip SRAM area in register-bit
  equivalents (rbe), following the classic Mulder/Quach/Flynn accounting:
  data bits cost ~0.6 rbe, tag/status bits likewise, plus per-line and
  per-set overheads.  Absolute calibration does not matter for the
  paper's argument; *ratios* between configurations do.
* :class:`PackageModel` — package pins as a function of bus widths and
  overhead pins; doubling the data bus from 32 to 64 bits costs 32
  signal pins plus extra power/ground pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheAreaModel:
    """SRAM-bit-based cache area estimate.

    Parameters
    ----------
    address_bits:
        Physical address width (tags are derived from it).
    rbe_per_bit:
        Area of one SRAM cell in register-bit equivalents.
    line_overhead_rbe:
        Fixed per-line overhead (comparators, valid/dirty logic).
    """

    address_bits: int = 32
    rbe_per_bit: float = 0.6
    line_overhead_rbe: float = 20.0

    def tag_bits(self, total_bytes: int, line_size: int, associativity: int) -> int:
        """Tag width for the geometry (address minus index/offset bits)."""
        if total_bytes <= 0 or line_size <= 0 or associativity <= 0:
            raise ValueError("geometry values must be positive")
        n_sets = total_bytes // (line_size * associativity)
        if n_sets < 1:
            raise ValueError("cache too small for the line size/associativity")
        offset_bits = int(math.log2(line_size))
        index_bits = int(math.log2(n_sets))
        return self.address_bits - offset_bits - index_bits

    def area(self, total_bytes: int, line_size: int, associativity: int) -> float:
        """Total area in rbe: data + tag + status + per-line overhead.

        Larger lines amortize tags over more data — the Alpert & Flynn
        cost-effectiveness point the paper cites in Section 2.
        """
        n_lines = total_bytes // line_size
        data_bits = total_bytes * 8
        tag = self.tag_bits(total_bytes, line_size, associativity)
        status_bits = 2  # valid + dirty
        control_bits = n_lines * (tag + status_bits)
        return (
            (data_bits + control_bits) * self.rbe_per_bit
            + n_lines * self.line_overhead_rbe
        )

    def area_ratio(
        self,
        bytes_a: int,
        bytes_b: int,
        line_size: int,
        associativity: int,
    ) -> float:
        """Area of configuration A over configuration B (same geometry)."""
        return self.area(bytes_a, line_size, associativity) / self.area(
            bytes_b, line_size, associativity
        )


@dataclass(frozen=True)
class PackageModel:
    """Package pin budget for a microprocessor.

    ``power_ground_per_signal`` models the extra supply pairs wide,
    fast buses demand (one pair per 8 signals is a common early-90s
    rule of thumb).
    """

    address_pins: int = 32
    control_pins: int = 24
    power_ground_per_signal: float = 0.125

    def total_pins(self, data_bus_bits: int) -> float:
        """Pins needed for a given external data bus width."""
        if data_bus_bits <= 0 or data_bus_bits % 8:
            raise ValueError(
                f"data_bus_bits must be a positive multiple of 8, got {data_bus_bits}"
            )
        signals = data_bus_bits + self.address_pins + self.control_pins
        return signals * (1.0 + self.power_ground_per_signal)


def bus_width_pin_delta(
    narrow_bits: int, wide_bits: int, package: PackageModel | None = None
) -> float:
    """Extra pins from widening the data bus ``narrow -> wide``."""
    model = package or PackageModel()
    if wide_bits <= narrow_bits:
        raise ValueError("wide_bits must exceed narrow_bits")
    return model.total_pins(wide_bits) - model.total_pins(narrow_bits)
