"""Design advisor: the methodology as a decision tool.

The paper's point is practical — a designer with one budget line should
know which feature buys the most performance.  The advisor combines the
tradeoff engine (performance value, in hit ratio) with the cost models
(package pins, chip area, design-complexity flags) and ranks every
candidate, including "just grow the cache" as the baseline alternative.

All performance values are expressed as the *cache size* the feature is
worth: the feature's traded hit ratio is mapped through a hit-ratio-vs-
size curve to the equivalent extra kilobytes of on-chip cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.chip_area import CacheAreaModel, bus_width_pin_delta
from repro.analysis.hit_ratio_model import HitRatioCurve
from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig
from repro.core.tradeoff import hit_ratio_traded


@dataclass(frozen=True)
class Recommendation:
    """One candidate feature, priced and valued."""

    feature: ArchFeature
    hit_ratio_value: float
    equivalent_cache_bytes: float
    pin_cost: float
    area_cost_rbe: float
    note: str

    @property
    def summary(self) -> str:
        """One-line human rendering."""
        kib = self.equivalent_cache_bytes / 1024
        return (
            f"{self.feature.value}: worth {self.hit_ratio_value:.2%} hit ratio "
            f"(~{kib:.0f} KiB of cache); costs {self.pin_cost:.0f} pins, "
            f"{self.area_cost_rbe:.0f} rbe. {self.note}"
        )


@dataclass(frozen=True)
class DesignBrief:
    """The designer's current system and constraints."""

    config: SystemConfig
    cache_bytes: int
    hit_ratio_curve: HitRatioCurve
    flush_ratio: float = 0.5
    measured_stall_factor: float | None = None

    @property
    def base_hit_ratio(self) -> float:
        """The current cache's hit ratio per the curve."""
        return self.hit_ratio_curve.hit_ratio(self.cache_bytes)


_NOTES = {
    ArchFeature.DOUBLING_BUS: "needs a wider package and memory datapath.",
    ArchFeature.WRITE_BUFFERS: "small on-chip FIFO; verify read-bypass hazards.",
    ArchFeature.PIPELINED_MEMORY: "requires pipelined DRAM/bus control.",
    ArchFeature.PARTIAL_STALLING: "cache controller complexity (lockup-free fill).",
}


def recommend(brief: DesignBrief) -> list[Recommendation]:
    """Rank every applicable feature, best hit-ratio value first.

    The partially-stalling feature appears only when the brief carries a
    trace-measured stalling factor (Section 4.2's requirement).
    """
    base_hr = brief.base_hit_ratio
    area_model = CacheAreaModel()
    recommendations = []
    features = [
        ArchFeature.DOUBLING_BUS,
        ArchFeature.WRITE_BUFFERS,
        ArchFeature.PIPELINED_MEMORY,
    ]
    if brief.measured_stall_factor is not None:
        features.append(ArchFeature.PARTIAL_STALLING)

    for feature in features:
        r = feature_miss_ratio(
            feature,
            brief.config,
            flush_ratio=brief.flush_ratio,
            measured_stall_factor=brief.measured_stall_factor,
        )
        value = hit_ratio_traded(r, base_hr)
        # The cache size that would deliver the same hit-ratio gain.
        target_hr = min(base_hr + value, brief.hit_ratio_curve.hit_ratio(1 << 40))
        try:
            equivalent = brief.hit_ratio_curve.size_for_hit_ratio(target_hr)
        except ValueError:
            equivalent = float("inf")
        equivalent_extra = max(0.0, equivalent - brief.cache_bytes)

        pins = (
            bus_width_pin_delta(
                brief.config.bus_width * 8, brief.config.bus_width * 16
            )
            if feature is ArchFeature.DOUBLING_BUS
            else 0.0
        )
        if feature is ArchFeature.WRITE_BUFFERS:
            # A 4-deep line-wide FIFO, priced with the same rbe model.
            area = 4 * brief.config.line_size * 8 * area_model.rbe_per_bit
        else:
            area = 0.0
        recommendations.append(
            Recommendation(
                feature=feature,
                hit_ratio_value=value,
                equivalent_cache_bytes=equivalent_extra,
                pin_cost=pins,
                area_cost_rbe=area,
                note=_NOTES[feature],
            )
        )
    recommendations.sort(key=lambda rec: rec.hit_ratio_value, reverse=True)
    return recommendations


def best_single_feature(brief: DesignBrief) -> Recommendation:
    """The top-ranked feature for this brief."""
    return recommend(brief)[0]
