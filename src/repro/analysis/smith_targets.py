"""Design-target miss-ratio tables for the Figure 6 validation.

Figure 6 evaluates the line-size tradeoff against Smith's *design target*
miss ratios (Smith 1987).  Those tables are not reproduced in the paper
and the original is unavailable offline, so the tables below are a
**calibrated reconstruction** (see DESIGN.md, substitutions): the values
follow the published qualitative law — miss ratio falls with line size at
a diminishing rate (the ratio per doubling grows toward 1) — and are
calibrated so that Smith's criterion reproduces the optimal line sizes
annotated in the paper's Figure 6:

=======  =====  ==============================  ==================
panel    cache  timing (delay, bus width)        Smith's optimum
=======  =====  ==============================  ==================
(a)      16 K   360 ns + 15 ns/byte, D = 4       32 B at beta = 2
(b)      16 K   160 ns + 15 ns/byte, D = 8       16 B at beta = 3
(c)      16 K   600 ns + 4 ns/byte,  D = 8       64 or 128 B at beta = 1
(d)       8 K   360 ns + 15 ns/byte, D = 8       32 B at beta = 2
=======  =====  ==============================  ==================

The equivalence theorem the figure validates (Eq. 19 == Eq. 16) holds
for *any* miss table — the reconstruction only fixes which line sizes
win at which bus speeds.
"""

from __future__ import annotations

KIB = 1024

#: Miss ratios by cache size (bytes) then line size (bytes).
DESIGN_TARGET_MISS_RATIOS: dict[int, dict[int, float]] = {
    8 * KIB: {
        4: 0.125,
        8: 0.082,
        16: 0.054,
        32: 0.037,
        64: 0.0285,
        128: 0.0235,
        256: 0.021,
    },
    16 * KIB: {
        4: 0.095,
        8: 0.060,
        16: 0.038,
        32: 0.026,
        64: 0.020,
        128: 0.01535,
        256: 0.013,
    },
}


def design_target_table(cache_bytes: int) -> dict[int, float]:
    """The miss-ratio table for one cache size (8 K or 16 K).

    Returns a copy so callers can modify it freely.
    """
    try:
        table = DESIGN_TARGET_MISS_RATIOS[cache_bytes]
    except KeyError:
        raise KeyError(
            f"no design-target table for {cache_bytes} bytes; available: "
            f"{sorted(DESIGN_TARGET_MISS_RATIOS)}"
        ) from None
    return dict(table)
