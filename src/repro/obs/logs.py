"""Logging configuration for the CLI entry points.

One ``repro``-rooted logger hierarchy; every module logs through
``logging.getLogger(__name__)`` and the CLIs call :func:`configure`
once per invocation to translate ``-v`` counts or an explicit
``--log-level`` into a handler on the ``repro`` logger.

The handler is installed on the ``repro`` logger (never the root
logger) and tagged, so repeated configuration replaces our handler
without clobbering anything the host application — or pytest's caplog —
hangs off the root.  Propagation stays on for the same reason.
"""

from __future__ import annotations

import logging
import sys

#: Marker attribute identifying the handler :func:`configure` installs.
_HANDLER_TAG = "_repro_obs_handler"

#: ``-v`` count to level: default WARNING, -v INFO, -vv DEBUG.
_VERBOSITY_LEVELS = (logging.WARNING, logging.INFO, logging.DEBUG)

LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"


def resolve_level(verbosity: int = 0, level: str | None = None) -> int:
    """Map ``(-v count, --log-level name)`` to a logging level.

    An explicit ``level`` name wins over the verbosity count.
    """
    if level is not None:
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        return resolved
    index = min(max(verbosity, 0), len(_VERBOSITY_LEVELS) - 1)
    return _VERBOSITY_LEVELS[index]


def configure(verbosity: int = 0, level: str | None = None) -> logging.Logger:
    """(Re)configure the ``repro`` logger for one CLI invocation.

    Binds a fresh ``StreamHandler`` to the *current* ``sys.stderr``
    (tests that capture stderr re-enter through the CLI, so the handler
    must not cache a stale stream) and returns the ``repro`` logger.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(resolve_level(verbosity, level))
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    return logger
