"""Observability layer: span tracing, simulator metrics, run manifests.

The paper's whole point is *decomposable accounting* — Eq. (2) splits
execution time into execute / read-stall / write-stall terms — and this
package exposes the same decomposition live, for the code itself:

``repro.obs.tracing``
    Nested wall-clock spans with a Chrome-trace-event exporter
    (open the ``--trace`` file in https://ui.perfetto.dev).
``repro.obs.metrics``
    Labeled counters/histograms from the hot layers (cache events,
    engine dispatch, φ memoization) plus the per-run Eq. (2) cycle
    breakdown with a sums-to-total self-check.
``repro.obs.profile``
    Wall-clock sampling profiler with span-joined phase attribution:
    folded stacks, Perfetto export, optional ``tracemalloc`` heap
    snapshots (``--profile`` on the runner, ``/v1/debug/profile`` on
    the service).
``repro.obs.manifest``
    ``<id>.meta.json`` provenance for every ``--out`` run.
``repro.obs.logs``
    ``-v`` / ``--log-level`` logging configuration for the CLIs.
``repro.obs.schemas`` / ``repro.obs.validate``
    Structural validation of the emitted JSON artifacts.

Both tracing and metrics are **disabled by default** and cost one
module-global load per instrumentation site while off, so the engine's
hot paths carry their probes permanently (the replay benchmark pins the
overhead budget; see ``docs/OBSERVABILITY.md``).
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    VOLATILE_KEYS,
    build_manifest,
    git_revision,
    stable_view,
    write_manifest,
)
from repro.obs.metrics import (
    EQ2_TERMS,
    Eq2MismatchError,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    current_metrics,
    disable_metrics,
    enable_metrics,
    eq2_breakdown,
    inc,
    metrics_enabled,
    observe,
    record_timing,
)
from repro.obs.profile import (
    DEFAULT_HZ,
    PROFILE_SCHEMA,
    ProfilerActiveError,
    SamplingProfiler,
    active_profiler,
    chrome_trace,
    folded_text,
    phase_self_seconds,
)
from repro.obs.schemas import (
    SchemaError,
    validate_chrome_trace,
    validate_manifest,
    validate_metrics,
    validate_profile,
)
from repro.obs.tracing import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
    spans_active,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_HZ",
    "MANIFEST_SCHEMA",
    "PROFILE_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "VOLATILE_KEYS",
    "EQ2_TERMS",
    "Eq2MismatchError",
    "MetricsRegistry",
    "ProfilerActiveError",
    "SamplingProfiler",
    "SchemaError",
    "Tracer",
    "active_profiler",
    "build_manifest",
    "chrome_trace",
    "folded_text",
    "phase_self_seconds",
    "current_metrics",
    "current_tracer",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "eq2_breakdown",
    "git_revision",
    "inc",
    "metrics_enabled",
    "observe",
    "record_timing",
    "span",
    "spans_active",
    "stable_view",
    "tracing_enabled",
    "validate_chrome_trace",
    "validate_manifest",
    "validate_metrics",
    "validate_profile",
    "write_manifest",
]
