"""Span tracing with a Chrome-trace-event exporter.

A *span* is a named wall-clock interval with optional key/value
arguments.  Spans nest naturally — the exporter emits Chrome
``"ph": "X"`` (complete) events, which ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ render as a flame graph purely
from interval containment, so nesting needs no explicit bookkeeping.

Design constraints (see ``docs/OBSERVABILITY.md``):

* **Near-zero overhead when disabled.**  Tracing is off by default;
  :func:`span` then returns a shared no-op context manager after a
  single module-global load.  No clock is read, nothing is allocated
  beyond the callers' keyword dict.
* **Mergeable across processes.**  Worker processes (the runner's
  ``--jobs N``) collect events into their own :class:`Tracer` and ship
  the plain-dict event list back over the pipe; the parent adopts them
  onto a distinct Chrome thread id so each worker gets its own track.

Usage::

    from repro.obs import tracing

    tracer = tracing.enable_tracing()
    with tracing.span("phase1.extract", trace="nasa7", line_size=32):
        ...
    tracer.write("trace.json")   # open in Perfetto
"""

from __future__ import annotations

import threading
import time
import uuid
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any

from repro.util.jsonout import write_json

#: Chrome trace category attached to every span event.
CATEGORY = "repro"

#: Ambient distributed-trace identity: ``(trace_id, span_id)`` where the
#: span id is the innermost open traced span (or the inbound parent id
#: before the first span opens, or ``""`` for a fresh root).  ``None``
#: outside any traced request, which keeps non-request spans and the
#: tracing-off fast path byte-identical to the pre-tracing behaviour.
_TRACE_CONTEXT: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_trace_context", default=None
)


def new_span_id() -> str:
    """A fresh 16-hex-character span id."""
    return uuid.uuid4().hex[:16]


def current_trace_context() -> tuple[str, str] | None:
    """The ambient ``(trace_id, span_id)`` pair, or ``None``.

    The span id half is the id callers should use as the *parent* of any
    work they hand off (an outbound ``traceparent``, a batch-thread
    re-entry); it may be ``""`` when the context was minted fresh and no
    traced span has opened yet.
    """
    return _TRACE_CONTEXT.get()


@contextmanager
def trace_context(
    context: tuple[str, str] | None,
) -> Iterator[tuple[str, str] | None]:
    """Install a ``(trace_id, parent_span_id)`` pair for a ``with`` block.

    Every span opened inside the block mints its own span id, stamps
    ``trace_id``/``span_id``/``parent_span_id`` into its args, and
    becomes the parent of spans nested below it.  ``None`` yields
    without installing anything, so call sites that may run outside a
    request need no conditional (mirrors
    :func:`repro.obs.live.request_context`).
    """
    if context is None:
        yield None
        return
    token = _TRACE_CONTEXT.set(context)
    try:
        yield context
    finally:
        _TRACE_CONTEXT.reset(token)


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        """Accept (and drop) late argument updates."""
        return self


_NULL_SPAN = _NullSpan()


#: Per-thread stacks of open span names (``{thread_ident: [name, ...]}``),
#: or ``None`` while no profiler is sampling.  The sampling profiler
#: (:mod:`repro.obs.profile`) installs a plain dict here so it can read
#: every thread's innermost active span from its sampler thread; list
#: append/pop and dict access are GIL-atomic, so no lock is needed.
_PHASE_STACKS: dict[int, list[str]] | None = None


def _push_phase(name: str) -> list[str] | None:
    """Push ``name`` onto this thread's phase stack (if tracking is on).

    Returns the stack the name landed on so the span can pop *that*
    list on exit even if the profiler swaps the tracking dict mid-span.
    """
    stacks = _PHASE_STACKS
    if stacks is None:
        return None
    ident = threading.get_ident()
    stack = stacks.get(ident)
    if stack is None:
        stack = stacks[ident] = []
    stack.append(name)
    return stack


class _PhaseSpan:
    """Span recorded only for phase attribution (tracing itself is off).

    Handed out while a profiler's phase tracking is active but no tracer
    is installed: no clock is read and no event is allocated — the span
    only pushes/pops its name on the thread's phase stack so samples can
    be bucketed by the innermost active span.
    """

    __slots__ = ("name", "_stack")

    def __init__(self, name: str) -> None:
        self.name = name
        self._stack: list[str] | None = None

    def set(self, **args: Any) -> "_PhaseSpan":
        """Accept (and drop) late argument updates."""
        return self

    def __enter__(self) -> "_PhaseSpan":
        self._stack = _push_phase(self.name)
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._stack:
            self._stack.pop()
        return False


class _LiveSpan:
    """One open span; appends a complete event to its tracer on exit.

    While a trace context is installed (:func:`trace_context`), the span
    mints its own span id on entry, stamps the trace identity into its
    ``args``, and becomes the ambient parent for spans opened below it —
    including across ``await`` points, since the identity rides a
    :mod:`contextvars` context.
    """

    __slots__ = (
        "_tracer", "name", "args", "_start", "_phase_stack",
        "span_id", "_trace_token",
    )

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0
        self._phase_stack: list[str] | None = None
        self.span_id: str | None = None
        self._trace_token = None

    def set(self, **args: Any) -> "_LiveSpan":
        """Attach arguments discovered mid-span (e.g. result counts)."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._phase_stack = _push_phase(self.name)
        context = _TRACE_CONTEXT.get()
        if context is not None:
            trace_id, parent_id = context
            self.span_id = new_span_id()
            self.args["trace_id"] = trace_id
            self.args["span_id"] = self.span_id
            if parent_id:
                self.args["parent_span_id"] = parent_id
            self._trace_token = _TRACE_CONTEXT.set((trace_id, self.span_id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        if self._trace_token is not None:
            _TRACE_CONTEXT.reset(self._trace_token)
            self._trace_token = None
        if self._phase_stack:
            self._phase_stack.pop()
        tracer = self._tracer
        tracer.events.append(
            {
                "name": self.name,
                "cat": CATEGORY,
                "ph": "X",
                "ts": (self._start - tracer.epoch) * 1e6,
                "dur": (end - self._start) * 1e6,
                "pid": tracer.pid,
                "tid": tracer.tid,
                "args": self.args,
            }
        )
        return False


class Tracer:
    """Collects span events; exports the Chrome trace-event format.

    Timestamps are microseconds relative to the tracer's creation
    (``time.perf_counter`` based), which is what the Chrome ``ts`` field
    expects.  Events adopted from worker processes keep their own epoch
    and are placed on separate thread tracks instead of being rebased.
    """

    def __init__(self, pid: int = 0, tid: int = 0, name: str = "runner") -> None:
        self.pid = pid
        self.tid = tid
        self.epoch = time.perf_counter()
        self.events: list[dict[str, Any]] = []
        self._thread_names: dict[int, str] = {tid: name}

    def span(self, name: str, **args: Any) -> _LiveSpan:
        """Open a span on this tracer (context manager)."""
        return _LiveSpan(self, name, args)

    def adopt(
        self,
        events: list[dict[str, Any]],
        tid: int | None = None,
        name: str | None = None,
    ) -> None:
        """Merge events collected in another process onto this trace.

        ``tid`` moves the batch onto its own thread track; ``name``
        labels that track in the viewer.
        """
        if tid is None:
            self.events.extend(events)
            return
        if name is not None:
            self._thread_names[tid] = name
        for event in events:
            rebased = dict(event)
            rebased["pid"] = self.pid
            rebased["tid"] = tid
            self.events.append(rebased)

    def chrome_trace(self) -> dict[str, Any]:
        """The full trace document (``{"traceEvents": [...], ...}``)."""
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.pid,
                "tid": tid,
                "args": {"name": label},
            }
            for tid, label in sorted(self._thread_names.items())
        ]
        return {
            "traceEvents": meta + list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.tracing"},
        }

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON; load it in Perfetto to view."""
        return write_json(path, self.chrome_trace())


#: The process-wide tracer, or ``None`` while tracing is disabled.
_ACTIVE: Tracer | None = None

#: Optional hook returning ambient span arguments (the serving layer's
#: request id; see :mod:`repro.obs.live`).  Only consulted while a
#: tracer is active, so the disabled fast path is untouched.
_CONTEXT_PROVIDER: Callable[[], dict[str, Any]] | None = None


def set_context_provider(
    provider: Callable[[], dict[str, Any]] | None,
) -> None:
    """Install the ambient-span-argument hook (``None`` to clear).

    The provider is called once per span *open* while tracing is
    enabled; whatever it returns is merged under the caller's explicit
    arguments, so an explicit ``request_id=...`` always wins.
    """
    global _CONTEXT_PROVIDER
    _CONTEXT_PROVIDER = provider


def enable_tracing(tid: int = 0, name: str = "runner") -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _ACTIVE
    _ACTIVE = Tracer(tid=tid, name=name)
    return _ACTIVE


def install_tracer(tracer: Tracer) -> Tracer:
    """Install a caller-built tracer (e.g. a bounded ring) process-wide."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def disable_tracing() -> Tracer | None:
    """Stop collecting; returns the tracer that was active, if any."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _ACTIVE is not None


def set_phase_stacks(stacks: dict[int, list[str]] | None) -> None:
    """Install (or clear, with ``None``) the profiler's phase tracking.

    While a dict is installed, every opened span pushes its name onto
    ``stacks[thread_ident]`` and pops it on exit — even when no tracer
    is active — so the sampling profiler can attribute wall-clock
    samples to the innermost open span per thread.  Owned by
    :mod:`repro.obs.profile`; everything else should treat this as
    read-only.
    """
    global _PHASE_STACKS
    _PHASE_STACKS = stacks


def phase_stacks() -> dict[int, list[str]] | None:
    """The installed phase-tracking dict, or ``None``."""
    return _PHASE_STACKS


def spans_active() -> bool:
    """Whether opening spans has any observable effect right now.

    True while a tracer is recording *or* a profiler's phase tracking is
    installed.  Hot paths that skip their span entirely for speed (the
    replay kernels) must gate on this, not :func:`tracing_enabled`, or
    profiled runs lose their phase attribution.
    """
    return _ACTIVE is not None or _PHASE_STACKS is not None


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None``."""
    return _ACTIVE


def span(name: str, **args: Any) -> _LiveSpan | _PhaseSpan | _NullSpan:
    """Open a span on the active tracer; no-op when tracing is off.

    The fast path is two global loads and one shared object return —
    safe to leave in hot code permanently.  While a profiler's phase
    tracking is installed but no tracer is active, a lightweight
    phase-only span is returned instead (no clock read, no event).
    """
    tracer = _ACTIVE
    if tracer is None:
        if _PHASE_STACKS is not None:
            return _PhaseSpan(name)
        return _NULL_SPAN
    provider = _CONTEXT_PROVIDER
    if provider is not None:
        ambient = provider()
        if ambient:
            args = {**ambient, **args}
    return _LiveSpan(tracer, name, args)
