"""On-disk JSONL span spool: durable span collection per process.

The :class:`~repro.obs.live.RingTracer` ring answers "what just
happened" over HTTP, but it is bounded and dies with the process.  The
spool is the durable half: every finished span is appended — via the
ring's ``sink`` tap — to a JSONL file under a per-process directory, so
offline consumers (``python -m repro obs timeline``) can assemble
fleet-wide timelines long after the workers exited, and a SIGKILL loses
at most the lines the OS had not flushed.

Write discipline follows :mod:`repro.cache.events_store`:

* the active file is append-only (``active.jsonl``); a full segment is
  finalized with an atomic ``os.replace`` to ``segment-NNNNNN.jsonl``
  plus a checksum sidecar (``.sha256.json``) written via temp-file +
  rename, so a reader never observes a half-renamed segment;
* rotation is byte-budgeted: segments roll at ``segment_bytes`` and the
  oldest are pruned once the directory exceeds ``budget_bytes``;
* spool failures never fail serving — an append that cannot reach disk
  increments :attr:`SpanSpool.dropped` and the request proceeds.

Every line is schema-tagged ``repro.obs.spans/1`` and carries the raw
Chrome event fields plus ``seq`` (per-process append index) and
``wall_end`` (``time.time()`` at span end), the wall-clock anchor that
lets the offline merger align spans across processes without a
handshake.  ``python -m repro.obs.validate --spans DIR`` verifies the
checksums and every record.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator

from repro.util.jsonout import dump_json_line

#: Schema tag carried by every spool line.
SPANS_SCHEMA = "repro.obs.spans/1"

#: Schema tag of a finalized segment's checksum sidecar.
SEGMENT_SIDECAR_SCHEMA = "repro.obs.spans.segment/1"

#: Rotate the active file once it reaches this many bytes.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Prune oldest segments once the directory exceeds this many bytes.
DEFAULT_BUDGET_BYTES = 16 << 20

_ACTIVE_NAME = "active.jsonl"
_SEGMENT_PREFIX = "segment-"
_SIDECAR_SUFFIX = ".sha256.json"


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + atomic rename."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class SpanSpool:
    """Byte-budgeted JSONL span sink for one process."""

    def __init__(
        self,
        directory: str | Path,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if segment_bytes < 1 or budget_bytes < segment_bytes:
            raise ValueError(
                f"need budget_bytes >= segment_bytes >= 1, got "
                f"{budget_bytes}/{segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.budget_bytes = budget_bytes
        self.segment_bytes = segment_bytes
        #: Appends that never reached disk (diagnostic only).
        self.dropped = 0
        self.appended = 0
        self._seq = 0
        self._next_segment = self._scan_next_segment()
        # An active file left behind by a killed predecessor is sealed
        # into a segment first, so its lines survive the restart and the
        # new process starts from a clean active file.
        leftover = self.directory / _ACTIVE_NAME
        self._handle = None
        self._active_bytes = 0
        if leftover.exists() and leftover.stat().st_size > 0:
            self._finalize(leftover)
        self._open_active()

    # -- write side ---------------------------------------------------------

    def append(self, event: dict[str, Any]) -> None:
        """Append one finished span event (never raises)."""
        record = {"schema": SPANS_SCHEMA, "seq": self._seq, **event}
        record["wall_end"] = round(time.time(), 6)
        try:
            line = dump_json_line(record) + "\n"
            handle = self._handle
            if handle is None:  # pragma: no cover - closed spool
                self.dropped += 1
                return
            handle.write(line)
            handle.flush()
            self._active_bytes += len(line.encode("utf-8"))
            self._seq += 1
            self.appended += 1
            if self._active_bytes >= self.segment_bytes:
                self.rotate()
        except (OSError, TypeError, ValueError):
            self.dropped += 1

    def rotate(self) -> Path | None:
        """Seal the active file into a checksummed segment (if non-empty)."""
        if self._handle is None:
            return None
        self._handle.close()
        self._handle = None
        active = self.directory / _ACTIVE_NAME
        sealed = None
        if active.exists() and active.stat().st_size > 0:
            sealed = self._finalize(active)
        self._open_active()
        return sealed

    def close(self) -> None:
        """Seal whatever is buffered and release the file handle."""
        self.rotate()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def stats(self) -> dict[str, Any]:
        """JSON-ready bookkeeping for ``/v1/stats``."""
        return {
            "directory": str(self.directory),
            "appended": self.appended,
            "dropped": self.dropped,
            "segments": len(self._segments()),
        }

    # -- internals ----------------------------------------------------------

    def _open_active(self) -> None:
        self._handle = open(self.directory / _ACTIVE_NAME, "a")
        self._active_bytes = 0

    def _scan_next_segment(self) -> int:
        indices = [
            int(path.name[len(_SEGMENT_PREFIX):].split(".", 1)[0])
            for path in self._segments()
        ]
        return max(indices, default=-1) + 1

    def _segments(self) -> list[Path]:
        return sorted(
            path
            for path in self.directory.glob(f"{_SEGMENT_PREFIX}*.jsonl")
            if not path.name.endswith(_SIDECAR_SUFFIX)
        )

    def _finalize(self, active: Path) -> Path:
        data = active.read_bytes()
        segment = self.directory / f"{_SEGMENT_PREFIX}{self._next_segment:06d}.jsonl"
        self._next_segment += 1
        os.replace(active, segment)
        sidecar = {
            "schema": SEGMENT_SIDECAR_SCHEMA,
            "sha256": hashlib.sha256(data).hexdigest(),
            "bytes": len(data),
            "records": data.count(b"\n"),
        }
        _atomic_write_text(
            segment.with_name(segment.name + _SIDECAR_SUFFIX),
            dump_json_line(sidecar) + "\n",
        )
        self._prune()
        return segment

    def _prune(self) -> None:
        segments = self._segments()
        total = sum(path.stat().st_size for path in segments)
        for path in segments:
            if total <= self.budget_bytes:
                break
            total -= path.stat().st_size
            path.unlink(missing_ok=True)
            path.with_name(path.name + _SIDECAR_SUFFIX).unlink(missing_ok=True)


# -- read side ---------------------------------------------------------------


def spool_files(directory: str | Path) -> list[Path]:
    """One spool directory's JSONL files, segments first, in order."""
    root = Path(directory)
    files = sorted(
        path
        for path in root.glob(f"{_SEGMENT_PREFIX}*.jsonl")
        if not path.name.endswith(_SIDECAR_SUFFIX)
    )
    active = root / _ACTIVE_NAME
    if active.exists():
        files.append(active)
    return files


def read_spool(directory: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every record in one spool directory, in append order."""
    for path in spool_files(directory):
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)


def validate_spool(directory: str | Path) -> dict[str, int]:
    """Verify a spool directory: checksums, schema, per-record shape.

    Returns ``{"segments": ..., "records": ...}``; raises
    :class:`~repro.obs.schemas.SchemaError` (or ``OSError`` /
    ``json.JSONDecodeError``) on the first problem.  The active file has
    no sidecar yet — its lines are validated individually, which keeps
    the check crash-tolerant (a SIGKILLed worker leaves a valid spool).
    """
    from repro.obs.schemas import SchemaError, validate_span_record

    root = Path(directory)
    if not root.is_dir():
        raise SchemaError(f"{root}: not a spool directory")
    n_segments = 0
    n_records = 0
    for path in spool_files(root):
        data = path.read_bytes()
        if path.name != _ACTIVE_NAME:
            sidecar_path = path.with_name(path.name + _SIDECAR_SUFFIX)
            if not sidecar_path.exists():
                raise SchemaError(f"{path.name}: missing checksum sidecar")
            sidecar = json.loads(sidecar_path.read_text())
            if sidecar.get("schema") != SEGMENT_SIDECAR_SCHEMA:
                raise SchemaError(
                    f"{sidecar_path.name}: bad schema tag "
                    f"{sidecar.get('schema')!r}"
                )
            digest = hashlib.sha256(data).hexdigest()
            if sidecar.get("sha256") != digest:
                raise SchemaError(
                    f"{path.name}: checksum mismatch "
                    f"(sidecar {sidecar.get('sha256')}, actual {digest})"
                )
            n_segments += 1
        for lineno, line in enumerate(data.decode("utf-8").splitlines(), 1):
            if not line.strip():
                continue
            try:
                validate_span_record(json.loads(line))
            except (json.JSONDecodeError, SchemaError) as error:
                raise SchemaError(
                    f"{path.name} line {lineno}: {error}"
                ) from None
            n_records += 1
    return {"segments": n_segments, "records": n_records}
