"""Lightweight schema validation for the observability artifacts.

The reproduction environment is offline (no ``jsonschema``), so each
artifact gets a hand-rolled structural validator: Chrome trace files
(``--trace``), metrics snapshots (``--metrics``), and run manifests
(``<id>.meta.json``).  Validators raise :class:`SchemaError` with a
JSON-path-style message on the first violation; CI runs them over the
smoke run's artifacts via ``python -m repro.obs.validate``.
"""

from __future__ import annotations

import re
from typing import Any

from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.metrics import SNAPSHOT_SCHEMA
from repro.obs.profile import PROFILE_SCHEMA


class SchemaError(ValueError):
    """An artifact does not match its documented schema."""


#: Committed engine scoreboard (``BENCH_engine.json``).  ``/2`` added
#: ``all_quick_s`` and the per-engine ``dispatch`` section, and made
#: ``dispatch.step_calls == 0`` a validity requirement: every registry
#: experiment must go through the replay engine.  ``/3`` made the
#: environment provenance (python version, cpu count, platform — all
#: hostname-free) required, so ``bench_history`` entries built from a
#: scoreboard are attributable to the machine that produced them.
#: ``/4`` added the reuse-engine phase-1 headlines (``phase1_reuse_s``,
#: ``phase1_derive_marginal_s``) and the ``dispatch.phase1`` section,
#: with ``phase1.step_calls == 0`` a validity requirement: the registry
#: sweep is LRU-only, so every cold extraction must come from the reuse
#: engine, never from stepping ``Cache``.  ``/5`` added the
#: ``phase_breakdown`` section (a span-attributed self-time table from a
#: profiled ``--all --quick`` pass; see :mod:`repro.obs.profile`) and
#: ``profiler_overhead`` (full figure1 with the sampler on vs off — the
#: 5% budget is enforced by the bench script, not the validator, so a
#: noisy machine cannot make a committed scoreboard retroactively
#: invalid).
BENCH_ENGINE_SCHEMA = "repro.bench.engine/5"

#: Committed service scoreboard (``BENCH_service.json``), written by
#: ``benchmarks/bench_service.py``.  Validity requires the batching and
#: engine invariants, not particular timings: zero step-simulator
#: dispatches, one phase-1 extraction per distinct (trace, geometry)
#: key, and a batch-coalescing ratio above 1 at 16 concurrent clients.
#: ``/2`` added required environment provenance (as for the engine
#: scoreboard) and the per-level client-side view (``client.retries``
#: and client-measured latency percentiles).  ``/3`` added the
#: ``phase_breakdown`` section: a span-attributed self-time table from a
#: profiled load window (see :mod:`repro.obs.profile`).  ``/4`` added
#: the ``capacity`` headline: open-loop (Poisson-arrival)
#: latency-under-load curves and the max sustained request rate with
#: p99 ≤ the stated SLO, measured for a single-process server and for
#: the sharded fleet.  The validator checks structure and internal
#: consistency, *not* that the fleet beats the single process — on a
#: one-core CI box it legitimately may not.
BENCH_SERVICE_SCHEMA = "repro.bench.service/4"

#: One line of the serving layer's JSONL access log (see
#: :mod:`repro.obs.access_log`).  ``/2`` added the optional
#: ``trace_id``/``span_id`` fields so log↔trace joins work from either
#: side; ``/1`` records (without them) still validate.
ACCESS_LOG_SCHEMA = "repro.obs.access_log/2"

#: Access-log schema tags accepted on read (back-compat).
ACCESS_LOG_SCHEMAS = ("repro.obs.access_log/1", ACCESS_LOG_SCHEMA)

#: One line of a per-process span spool (see :mod:`repro.obs.span_spool`).
SPANS_SCHEMA = "repro.obs.spans/1"

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")

#: One appended entry of ``results/bench_history.jsonl`` (see
#: :mod:`repro.obs.bench_history`).
BENCH_HISTORY_SCHEMA = "repro.obs.bench_history/1"

#: Envelope of every successful ``repro.service`` JSON response.
SERVICE_RESPONSE_SCHEMA = "repro.service.response/1"

#: Envelope of every ``repro.service`` error response.
SERVICE_ERROR_SCHEMA = "repro.service.error/1"

#: Envelope of the ``/v1/stats`` response.
SERVICE_STATS_SCHEMA = "repro.service.stats/1"

#: Header line of the ``/v1/sweep`` streaming (JSONL) response.
SERVICE_SWEEP_SCHEMA = "repro.service.sweep/1"


def require(condition: bool, path: str, message: str) -> None:
    """Raise :class:`SchemaError` at ``path`` unless ``condition`` holds.

    Shared by every hand-rolled validator in the repository (including
    the request validators in :mod:`repro.service.schemas`).
    """
    if not condition:
        raise SchemaError(f"{path}: {message}")


def require_number(value: Any, path: str) -> None:
    """Require a real JSON number (bools are not numbers)."""
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        path,
        f"expected a number, got {type(value).__name__}",
    )


# Internal aliases predating the public names.
_require = require
_require_number = require_number


def validate_chrome_trace(document: Any) -> None:
    """Validate a Chrome trace-event document (Perfetto-loadable)."""
    _require(isinstance(document, dict), "$", "trace must be a JSON object")
    events = document.get("traceEvents")
    _require(isinstance(events, list), "$.traceEvents", "must be a list")
    for i, event in enumerate(events):
        path = f"$.traceEvents[{i}]"
        _require(isinstance(event, dict), path, "must be an object")
        _require(
            isinstance(event.get("name"), str), f"{path}.name", "must be a string"
        )
        phase = event.get("ph")
        _require(
            isinstance(phase, str) and len(phase) == 1,
            f"{path}.ph",
            "must be a 1-char phase code",
        )
        _require_number(event.get("pid"), f"{path}.pid")
        _require_number(event.get("tid"), f"{path}.tid")
        if phase == "X":
            _require_number(event.get("ts"), f"{path}.ts")
            _require_number(event.get("dur"), f"{path}.dur")
            _require(event["dur"] >= 0, f"{path}.dur", "must be >= 0")
        if "args" in event:
            _require(
                isinstance(event["args"], dict), f"{path}.args", "must be an object"
            )


def validate_span_record(document: Any) -> None:
    """Validate one span-spool line (``repro.obs.spans/1``).

    A spool record is a finished Chrome ``"X"`` event plus the spool's
    own framing: the schema tag, a per-process append index (``seq``)
    and the wall-clock end time (``wall_end``) that offline mergers use
    to align spans across processes.  Trace-identity args, when present,
    must be well-formed hex ids.
    """
    _require(isinstance(document, dict), "$", "record must be a JSON object")
    _require(
        document.get("schema") == SPANS_SCHEMA,
        "$.schema",
        f"must be {SPANS_SCHEMA!r}",
    )
    seq = document.get("seq")
    _require(
        isinstance(seq, int) and not isinstance(seq, bool) and seq >= 0,
        "$.seq",
        "must be a non-negative integer",
    )
    _require_number(document.get("wall_end"), "$.wall_end")
    _require(
        isinstance(document.get("name"), str) and document["name"],
        "$.name",
        "must be a non-empty string",
    )
    _require(document.get("ph") == "X", "$.ph", "must be 'X' (a complete span)")
    for field in ("ts", "dur"):
        _require_number(document.get(field), f"$.{field}")
    _require(document["dur"] >= 0, "$.dur", "must be >= 0")
    _require_number(document.get("pid"), "$.pid")
    _require_number(document.get("tid"), "$.tid")
    args = document.get("args")
    _require(isinstance(args, dict), "$.args", "must be an object")
    if "trace_id" in args:
        _require(
            isinstance(args["trace_id"], str)
            and bool(_TRACE_ID_RE.match(args["trace_id"])),
            "$.args.trace_id",
            "must be 32 lowercase hex characters",
        )
    for field in ("span_id", "parent_span_id"):
        if field in args:
            _require(
                isinstance(args[field], str)
                and bool(_SPAN_ID_RE.match(args[field])),
                f"$.args.{field}",
                "must be 16 lowercase hex characters",
            )


def _validate_snapshot_body(snapshot: Any, path: str) -> None:
    _require(isinstance(snapshot, dict), path, "must be an object")
    counters = snapshot.get("counters")
    _require(isinstance(counters, dict), f"{path}.counters", "must be an object")
    for key, value in counters.items():
        _require_number(value, f"{path}.counters[{key!r}]")
    histograms = snapshot.get("histograms")
    _require(
        isinstance(histograms, dict), f"{path}.histograms", "must be an object"
    )
    for key, entry in histograms.items():
        entry_path = f"{path}.histograms[{key!r}]"
        _require(isinstance(entry, dict), entry_path, "must be an object")
        for field in ("count", "sum", "min", "max"):
            _require(field in entry, f"{entry_path}.{field}", "is required")
            _require_number(entry[field], f"{entry_path}.{field}")
        _require(
            entry["min"] <= entry["max"],
            entry_path,
            "min must be <= max",
        )


def validate_metrics(document: Any) -> None:
    """Validate an exported metrics snapshot (``--metrics`` file)."""
    _require(isinstance(document, dict), "$", "metrics must be a JSON object")
    _require(
        document.get("schema") == SNAPSHOT_SCHEMA,
        "$.schema",
        f"must be {SNAPSHOT_SCHEMA!r}",
    )
    _validate_snapshot_body(document, "$")


def validate_bench_provenance(document: Any, path: str = "$") -> None:
    """Validate the environment-provenance block of a bench scoreboard.

    Required by the ``/3`` engine and ``/2`` service schemas: python
    version, logical cpu count, and platform string (all hostname-free);
    ``git_sha`` is present but may be null off-repo.
    """
    provenance = document.get("provenance")
    _require(
        isinstance(provenance, dict), f"{path}.provenance", "must be an object"
    )
    for field in ("python", "platform"):
        _require(
            isinstance(provenance.get(field), str) and provenance[field],
            f"{path}.provenance.{field}",
            "must be a non-empty string",
        )
    cpu_count = provenance.get("cpu_count")
    _require(
        isinstance(cpu_count, int) and not isinstance(cpu_count, bool)
        and cpu_count >= 1,
        f"{path}.provenance.cpu_count",
        "must be a positive integer",
    )
    _require("git_sha" in provenance, f"{path}.provenance.git_sha", "is required")
    git_sha = provenance["git_sha"]
    _require(
        git_sha is None or (isinstance(git_sha, str) and git_sha),
        f"{path}.provenance.git_sha",
        "must be a non-empty string or null",
    )


def _validate_phase_table(phases: Any, path: str) -> None:
    """Validate a ``{phase: {samples, self_s, fraction}}`` table."""
    _require(isinstance(phases, dict), path, "must be an object")
    _require(len(phases) > 0, path, "must not be empty")
    for name, entry in phases.items():
        entry_path = f"{path}[{name!r}]"
        _require(
            isinstance(name, str) and name, path, "phase names must be strings"
        )
        _require(isinstance(entry, dict), entry_path, "must be an object")
        for field in ("samples", "self_s", "fraction"):
            _require(field in entry, f"{entry_path}.{field}", "is required")
            _require_number(entry[field], f"{entry_path}.{field}")
            _require(
                entry[field] >= 0, f"{entry_path}.{field}", "must be >= 0"
            )
        _require(
            entry["fraction"] <= 1.0,
            f"{entry_path}.fraction",
            "must be within [0, 1]",
        )


def validate_profile(document: Any) -> None:
    """Validate a sampling-profiler document (``repro.obs.profile/1``).

    Checks the folded-stack lines (``frames... count``), the phase
    self-time table, the optional heap report, and provenance.
    """
    _require(isinstance(document, dict), "$", "profile must be a JSON object")
    _require(
        document.get("schema") == PROFILE_SCHEMA,
        "$.schema",
        f"must be {PROFILE_SCHEMA!r}",
    )
    _require(
        isinstance(document.get("id"), str) and document["id"],
        "$.id",
        "must be a non-empty string",
    )
    hz = document.get("hz")
    _require(
        isinstance(hz, int) and not isinstance(hz, bool) and 1 <= hz <= 1000,
        "$.hz",
        "must be an integer within [1, 1000]",
    )
    for field in ("duration_s", "samples", "thread_samples"):
        _require_number(document.get(field), f"$.{field}")
        _require(document[field] >= 0, f"$.{field}", "must be >= 0")
    threads = document.get("threads")
    _require(isinstance(threads, dict), "$.threads", "must be an object")
    for name, count in threads.items():
        _require_number(count, f"$.threads[{name!r}]")
    folded = document.get("folded")
    _require(isinstance(folded, list), "$.folded", "must be a list")
    for i, line in enumerate(folded):
        path = f"$.folded[{i}]"
        _require(isinstance(line, str), path, "must be a string")
        frames, _, count = line.rpartition(" ")
        _require(
            bool(frames) and count.isdigit() and int(count) > 0,
            path,
            "must be a collapsed stack: 'thread;frame;... count'",
        )
    _validate_phase_table(document.get("phases"), "$.phases")
    heap = document.get("heap")
    if heap is not None:
        _require(isinstance(heap, dict), "$.heap", "must be an object or null")
        for field in ("traced_kib", "peak_kib"):
            _require_number(heap.get(field), f"$.heap.{field}")
        top = heap.get("top")
        _require(isinstance(top, list), "$.heap.top", "must be a list")
        for i, site in enumerate(top):
            path = f"$.heap.top[{i}]"
            _require(isinstance(site, dict), path, "must be an object")
            _require(
                isinstance(site.get("site"), str) and site["site"],
                f"{path}.site",
                "must be a non-empty string",
            )
            for field in ("size_kib", "count"):
                _require_number(site.get(field), f"{path}.{field}")
    provenance = document.get("provenance")
    _require(isinstance(provenance, dict), "$.provenance", "must be an object")
    for field in ("python", "created_at"):
        _require(
            isinstance(provenance.get(field), str) and provenance[field],
            f"$.provenance.{field}",
            "must be a non-empty string",
        )


def validate_phase_breakdown(document: Any, path: str = "$") -> None:
    """Validate a bench scoreboard's ``phase_breakdown`` section.

    Required by the ``/5`` engine and ``/3`` service schemas: which
    workload was profiled, the sampling parameters, and the
    span-attributed self-time table.
    """
    breakdown = document.get("phase_breakdown")
    _require(
        isinstance(breakdown, dict),
        f"{path}.phase_breakdown",
        "must be an object",
    )
    prefix = f"{path}.phase_breakdown"
    for field in ("source", "profile_id"):
        _require(
            isinstance(breakdown.get(field), str) and breakdown[field],
            f"{prefix}.{field}",
            "must be a non-empty string",
        )
    hz = breakdown.get("hz")
    _require(
        isinstance(hz, int) and not isinstance(hz, bool) and hz >= 1,
        f"{prefix}.hz",
        "must be a positive integer",
    )
    _require_number(breakdown.get("duration_s"), f"{prefix}.duration_s")
    _validate_phase_table(breakdown.get("phases"), f"{prefix}.phases")


def validate_bench_engine(document: Any) -> None:
    """Validate a committed engine scoreboard (``BENCH_engine.json``).

    Beyond shape, this enforces the engine-coverage invariants: the
    ``--all --quick`` dispatch counts must show zero step-simulator
    calls in phase 2 *and* zero ``Cache``-stepping extractions in
    phase 1 (CI fails otherwise; see docs/ENGINE.md).
    """
    _require(isinstance(document, dict), "$", "bench must be a JSON object")
    _require(
        document.get("schema") == BENCH_ENGINE_SCHEMA,
        "$.schema",
        f"must be {BENCH_ENGINE_SCHEMA!r}",
    )
    benchmarks = document.get("benchmarks")
    _require(isinstance(benchmarks, dict), "$.benchmarks", "must be an object")
    for required in (
        "phase1_extract_60k_s",
        "phase1_reuse_s",
        "phase1_derive_marginal_s",
        "phase2_replay_point_s",
        "step_simulator_point_s",
        "figure1_quick_s",
        "all_quick_s",
    ):
        _require(required in benchmarks, f"$.benchmarks.{required}", "is required")
    for key, value in benchmarks.items():
        _require_number(value, f"$.benchmarks[{key!r}]")
        _require(value >= 0, f"$.benchmarks[{key!r}]", "must be >= 0")
    _require_number(
        document.get("speedup_replay_vs_step"), "$.speedup_replay_vs_step"
    )
    dispatch = document.get("dispatch")
    _require(isinstance(dispatch, dict), "$.dispatch", "must be an object")
    for field in ("replay_calls", "step_calls"):
        _require_number(dispatch.get(field), f"$.dispatch.{field}")
    _require(
        dispatch["replay_calls"] > 0,
        "$.dispatch.replay_calls",
        "must be positive (the replay engine ran)",
    )
    _require(
        dispatch["step_calls"] == 0,
        "$.dispatch.step_calls",
        "must be 0: a registry experiment fell back to the step simulator "
        "(reasons in $.dispatch.step_fallback_reasons)",
    )
    reasons = dispatch.get("step_fallback_reasons")
    _require(
        isinstance(reasons, dict),
        "$.dispatch.step_fallback_reasons",
        "must be an object",
    )
    for key, value in reasons.items():
        _require_number(value, f"$.dispatch.step_fallback_reasons[{key!r}]")
    phase1 = dispatch.get("phase1")
    _require(
        isinstance(phase1, dict), "$.dispatch.phase1", "must be an object"
    )
    for field in ("reuse_calls", "step_calls"):
        _require_number(phase1.get(field), f"$.dispatch.phase1.{field}")
    _require(
        phase1["reuse_calls"] > 0,
        "$.dispatch.phase1.reuse_calls",
        "must be positive (the reuse engine ran)",
    )
    _require(
        phase1["step_calls"] == 0,
        "$.dispatch.phase1.step_calls",
        "must be 0: the registry sweep is LRU-only, yet a phase-1 "
        "extraction stepped Cache (reasons in "
        "$.dispatch.phase1.step_reasons)",
    )
    step_reasons = phase1.get("step_reasons")
    _require(
        isinstance(step_reasons, dict),
        "$.dispatch.phase1.step_reasons",
        "must be an object",
    )
    for key, value in step_reasons.items():
        _require_number(value, f"$.dispatch.phase1.step_reasons[{key!r}]")
    _validate_snapshot_body(document.get("metrics"), "$.metrics")
    validate_phase_breakdown(document)
    overhead = document.get("profiler_overhead")
    _require(
        isinstance(overhead, dict), "$.profiler_overhead", "must be an object"
    )
    for field in ("off_s", "on_s", "ratio"):
        _require_number(overhead.get(field), f"$.profiler_overhead.{field}")
        _require(
            overhead[field] > 0, f"$.profiler_overhead.{field}", "must be > 0"
        )
    hz = overhead.get("hz")
    _require(
        isinstance(hz, int) and not isinstance(hz, bool) and hz >= 1,
        "$.profiler_overhead.hz",
        "must be a positive integer",
    )
    validate_bench_provenance(document)


def validate_service_response(document: Any) -> None:
    """Validate one ``repro.service`` JSON payload (success or error).

    The service promises that *every* body it emits — success, error,
    stats — carries a ``schema`` tag and the documented envelope, so CI
    can validate captured payloads without knowing which endpoint (or
    which failure) produced them.
    """
    _require(isinstance(document, dict), "$", "payload must be a JSON object")
    schema = document.get("schema")
    if schema == SERVICE_ERROR_SCHEMA:
        error = document.get("error")
        _require(isinstance(error, dict), "$.error", "must be an object")
        _require(
            isinstance(error.get("code"), str) and error["code"],
            "$.error.code",
            "must be a non-empty string",
        )
        _require(
            isinstance(error.get("message"), str),
            "$.error.message",
            "must be a string",
        )
        status = error.get("status")
        _require(
            isinstance(status, int) and 400 <= status <= 599,
            "$.error.status",
            "must be an HTTP 4xx/5xx integer",
        )
        return
    if schema == SERVICE_STATS_SCHEMA:
        _validate_snapshot_body(document, "$")
        queue = document.get("queue")
        _require(isinstance(queue, dict), "$.queue", "must be an object")
        for field in ("depth", "limit"):
            _require_number(queue.get(field), f"$.queue.{field}")
        cache = document.get("result_cache")
        _require(isinstance(cache, dict), "$.result_cache", "must be an object")
        for field in ("entries", "bytes", "capacity_bytes", "hits", "misses"):
            _require_number(cache.get(field), f"$.result_cache.{field}")
        latency = document.get("latency")
        _require(isinstance(latency, dict), "$.latency", "must be an object")
        for endpoint, entry in latency.items():
            path = f"$.latency[{endpoint!r}]"
            _require(isinstance(entry, dict), path, "must be an object")
            for field in ("count", "p50_ms", "p99_ms"):
                _require_number(entry.get(field), f"{path}.{field}")
        return
    _require(
        schema == SERVICE_RESPONSE_SCHEMA,
        "$.schema",
        f"must be {SERVICE_RESPONSE_SCHEMA!r}, {SERVICE_ERROR_SCHEMA!r} "
        f"or {SERVICE_STATS_SCHEMA!r}",
    )
    _require(
        isinstance(document.get("endpoint"), str),
        "$.endpoint",
        "must be a string",
    )
    _require(
        isinstance(document.get("result"), (dict, list)),
        "$.result",
        "must be an object or list",
    )
    if "cached" in document:
        _require(
            isinstance(document["cached"], bool), "$.cached", "must be a bool"
        )


def validate_bench_service(document: Any) -> None:
    """Validate a service scoreboard (``BENCH_service.json``).

    Beyond shape, this enforces the serving invariants (see
    ``docs/SERVICE.md``):

    * zero step-simulator dispatches — every simulation-backed query the
      generator issues is replay-covered;
    * exactly one phase-1 extraction per distinct (trace, geometry) key
      across the whole run — the micro-batch scheduler plus the event
      memo did their job;
    * a batch-coalescing ratio above 1 at 16 concurrent clients;
    * zero request errors at every concurrency level.
    """
    _require(isinstance(document, dict), "$", "bench must be a JSON object")
    _require(
        document.get("schema") == BENCH_SERVICE_SCHEMA,
        "$.schema",
        f"must be {BENCH_SERVICE_SCHEMA!r}",
    )
    server = document.get("server")
    _require(isinstance(server, dict), "$.server", "must be an object")
    workload = document.get("workload")
    _require(isinstance(workload, dict), "$.workload", "must be an object")
    _require_number(
        workload.get("requests_per_client"), "$.workload.requests_per_client"
    )
    levels = document.get("levels")
    _require(isinstance(levels, dict), "$.levels", "must be an object")
    for required in ("1", "4", "16"):
        _require(required in levels, f"$.levels[{required!r}]", "is required")
    for key, level in levels.items():
        path = f"$.levels[{key!r}]"
        _require(isinstance(level, dict), path, "must be an object")
        _require(
            level.get("clients") == int(key),
            f"{path}.clients",
            f"must equal the level key ({key})",
        )
        for field in ("requests", "errors", "throughput_rps", "coalescing_ratio", "cache_hit_rate"):
            _require_number(level.get(field), f"{path}.{field}")
        _require(level["errors"] == 0, f"{path}.errors", "must be 0")
        _require(
            level["throughput_rps"] > 0, f"{path}.throughput_rps", "must be > 0"
        )
        _require(
            0.0 <= level["cache_hit_rate"] <= 1.0,
            f"{path}.cache_hit_rate",
            "must be within [0, 1]",
        )
        latency = level.get("latency_ms")
        _require(isinstance(latency, dict), f"{path}.latency_ms", "must be an object")
        for field in ("p50", "p99", "mean", "max"):
            _require_number(latency.get(field), f"{path}.latency_ms.{field}")
            _require(
                latency[field] >= 0, f"{path}.latency_ms.{field}", "must be >= 0"
            )
        _require(
            latency["p50"] <= latency["p99"],
            f"{path}.latency_ms",
            "p50 must be <= p99",
        )
        client = level.get("client")
        _require(isinstance(client, dict), f"{path}.client", "must be an object")
        _require_number(client.get("retries"), f"{path}.client.retries")
        _require(
            client["retries"] >= 0, f"{path}.client.retries", "must be >= 0"
        )
        client_latency = client.get("latency_ms")
        _require(
            isinstance(client_latency, dict),
            f"{path}.client.latency_ms",
            "must be an object",
        )
        for field in ("p50", "p99"):
            _require_number(
                client_latency.get(field), f"{path}.client.latency_ms.{field}"
            )
    _require(
        levels["16"]["coalescing_ratio"] > 1.0,
        "$.levels['16'].coalescing_ratio",
        "must be > 1: 16 concurrent clients over shared (trace, geometry) "
        "keys must coalesce into shared batch groups",
    )
    coalescing = document.get("coalescing")
    _require(isinstance(coalescing, dict), "$.coalescing", "must be an object")
    for field in ("distinct_keys", "phase1_extractions"):
        _require_number(coalescing.get(field), f"$.coalescing.{field}")
    _require(
        coalescing["phase1_extractions"] == coalescing["distinct_keys"],
        "$.coalescing",
        f"phase-1 must run once per key: {coalescing['phase1_extractions']!r} "
        f"extractions for {coalescing['distinct_keys']!r} keys",
    )
    warm = document.get("warm_cache")
    _require(isinstance(warm, dict), "$.warm_cache", "must be an object")
    for field in ("p50_ms", "p99_ms", "cold_compute_ms", "speedup"):
        _require_number(warm.get(field), f"$.warm_cache.{field}")
    _require(
        warm["speedup"] > 1.0,
        "$.warm_cache.speedup",
        "warm-cache queries must be faster than cold compute",
    )
    dispatch = document.get("dispatch")
    _require(isinstance(dispatch, dict), "$.dispatch", "must be an object")
    for field in ("replay_calls", "step_calls"):
        _require_number(dispatch.get(field), f"$.dispatch.{field}")
    _require(
        dispatch["replay_calls"] > 0,
        "$.dispatch.replay_calls",
        "must be positive (the replay engine served queries)",
    )
    _require(
        dispatch["step_calls"] == 0,
        "$.dispatch.step_calls",
        "must be 0: a service query fell back to the step simulator",
    )
    _validate_capacity(document.get("capacity"))
    validate_phase_breakdown(document)
    validate_bench_provenance(document)


def _validate_capacity(capacity: Any) -> None:
    """Validate the ``/4`` open-loop ``capacity`` headline section."""
    _require(isinstance(capacity, dict), "$.capacity", "must be an object")
    slo = capacity.get("slo_p99_ms")
    _require_number(slo, "$.capacity.slo_p99_ms")
    _require(slo > 0, "$.capacity.slo_p99_ms", "must be > 0")
    for section in ("single", "fleet"):
        path = f"$.capacity.{section}"
        entry = capacity.get(section)
        _require(isinstance(entry, dict), path, "must be an object")
        workers = entry.get("workers")
        _require(
            isinstance(workers, int) and not isinstance(workers, bool)
            and workers >= 1,
            f"{path}.workers",
            "must be a positive integer",
        )
        _require_number(
            entry.get("max_sustained_rps"), f"{path}.max_sustained_rps"
        )
        _require(
            entry["max_sustained_rps"] >= 0,
            f"{path}.max_sustained_rps",
            "must be >= 0",
        )
        curve = entry.get("curve")
        _require(
            isinstance(curve, list) and curve,
            f"{path}.curve",
            "must be a non-empty list of load rungs",
        )
        for i, rung in enumerate(curve):
            rung_path = f"{path}.curve[{i}]"
            _require(isinstance(rung, dict), rung_path, "must be an object")
            for field in (
                "offered_rps",
                "achieved_rps",
                "p50_ms",
                "p99_ms",
                "shed",
                "errors",
            ):
                _require_number(rung.get(field), f"{rung_path}.{field}")
                _require(
                    rung[field] >= 0, f"{rung_path}.{field}", "must be >= 0"
                )
            _require(
                rung["offered_rps"] > 0,
                f"{rung_path}.offered_rps",
                "must be > 0",
            )
            _require(
                rung["p50_ms"] <= rung["p99_ms"],
                rung_path,
                "p50_ms must be <= p99_ms",
            )
    _require(
        capacity["fleet"]["workers"] > 1,
        "$.capacity.fleet.workers",
        "must be > 1 (otherwise it is not a fleet)",
    )


def validate_sweep_stream(records: Any) -> None:
    """Validate a parsed ``/v1/sweep`` JSONL stream (a list of records).

    The framing contract (see ``docs/SERVICE.md``): a header line
    carrying the ``repro.service.sweep/1`` tag and the total point
    count, one line per grid point (``result`` on success, ``error``
    otherwise), and a final summary line with ``done: true`` and the
    error count.  Point lines may arrive in any order — the fleet
    router interleaves shards as they complete — but every index in
    ``[0, points)`` must appear exactly once.
    """
    _require(
        isinstance(records, list) and len(records) >= 2,
        "$",
        "stream must be a list with at least header and summary lines",
    )
    header = records[0]
    _require(isinstance(header, dict), "$[0]", "header must be an object")
    _require(
        header.get("schema") == SERVICE_SWEEP_SCHEMA,
        "$[0].schema",
        f"must be {SERVICE_SWEEP_SCHEMA!r}",
    )
    points = header.get("points")
    _require(
        isinstance(points, int) and not isinstance(points, bool) and points >= 0,
        "$[0].points",
        "must be a non-negative integer",
    )
    summary = records[-1]
    _require(isinstance(summary, dict), "$[-1]", "summary must be an object")
    _require(summary.get("done") is True, "$[-1].done", "must be true")
    _require_number(summary.get("errors"), "$[-1].errors")
    _require(
        summary.get("points") == points,
        "$[-1].points",
        "must match the header's point count",
    )
    seen: set[int] = set()
    errors = 0
    for i, record in enumerate(records[1:-1], start=1):
        path = f"$[{i}]"
        _require(isinstance(record, dict), path, "must be an object")
        index = record.get("index")
        _require(
            isinstance(index, int) and not isinstance(index, bool)
            and 0 <= index < points,
            f"{path}.index",
            f"must be an integer within [0, {points})",
        )
        _require(index not in seen, f"{path}.index", "duplicate point index")
        seen.add(index)
        _require(
            isinstance(record.get("point"), dict),
            f"{path}.point",
            "must be an object",
        )
        if "error" in record:
            errors += 1
            error = record["error"]
            _require(isinstance(error, dict), f"{path}.error", "must be an object")
            _require(
                isinstance(error.get("code"), str) and error["code"],
                f"{path}.error.code",
                "must be a non-empty string",
            )
        else:
            _require(
                isinstance(record.get("result"), dict),
                f"{path}.result",
                "must be an object",
            )
    _require(
        len(seen) == points,
        "$",
        f"stream carries {len(seen)} distinct points, header promised {points}",
    )
    _require(
        summary["errors"] == errors,
        "$[-1].errors",
        f"summary says {summary['errors']!r}, stream carries {errors}",
    )


def validate_access_log_record(document: Any) -> None:
    """Validate one line of the serving layer's JSONL access log."""
    _require(isinstance(document, dict), "$", "record must be a JSON object")
    _require(
        document.get("schema") in ACCESS_LOG_SCHEMAS,
        "$.schema",
        f"must be one of {ACCESS_LOG_SCHEMAS!r}",
    )
    _require_number(document.get("ts"), "$.ts")
    _require(
        isinstance(document.get("request_id"), str) and document["request_id"],
        "$.request_id",
        "must be a non-empty string",
    )
    for field in ("method", "path", "endpoint"):
        _require(
            isinstance(document.get(field), str) and document[field],
            f"$.{field}",
            "must be a non-empty string",
        )
    status = document.get("status")
    _require(
        isinstance(status, int) and not isinstance(status, bool)
        and 100 <= status <= 599,
        "$.status",
        "must be an HTTP status integer",
    )
    _require_number(document.get("latency_ms"), "$.latency_ms")
    _require(document["latency_ms"] >= 0, "$.latency_ms", "must be >= 0")
    if "cache" in document:
        _require(
            document["cache"] in ("hit", "miss"),
            "$.cache",
            "must be 'hit' or 'miss'",
        )
    if "batched" in document:
        _require(
            isinstance(document["batched"], bool), "$.batched", "must be a bool"
        )
    if "error_code" in document:
        _require(
            isinstance(document["error_code"], str) and document["error_code"],
            "$.error_code",
            "must be a non-empty string",
        )
    for optional in ("deadline_ms", "deadline_left_ms"):
        if optional in document:
            _require_number(document[optional], f"$.{optional}")
    if "profile_id" in document:
        _require(
            isinstance(document["profile_id"], str) and document["profile_id"],
            "$.profile_id",
            "must be a non-empty string",
        )
    if "worker" in document:
        _require(
            isinstance(document["worker"], str) and document["worker"],
            "$.worker",
            "must be a non-empty string",
        )
    if "campaign" in document:
        # Campaign-annotated requests carry the (truncated) campaign id
        # so a grep over the access log isolates one campaign's traffic.
        _require(
            isinstance(document["campaign"], str) and document["campaign"],
            "$.campaign",
            "must be a non-empty string",
        )
    if "trace_id" in document:
        _require(
            isinstance(document["trace_id"], str)
            and bool(_TRACE_ID_RE.match(document["trace_id"])),
            "$.trace_id",
            "must be 32 lowercase hex characters",
        )
    if "span_id" in document:
        _require(
            isinstance(document["span_id"], str)
            and bool(_SPAN_ID_RE.match(document["span_id"])),
            "$.span_id",
            "must be 16 lowercase hex characters",
        )


def validate_access_log(lines: Any) -> None:
    """Validate a parsed access log (a list of line records)."""
    _require(isinstance(lines, list), "$", "access log must be a list of records")
    for i, record in enumerate(lines):
        try:
            validate_access_log_record(record)
        except SchemaError as error:
            raise SchemaError(f"line {i + 1}: {error}") from None


def validate_bench_history_entry(document: Any) -> None:
    """Validate one appended ``bench_history.jsonl`` entry."""
    _require(isinstance(document, dict), "$", "entry must be a JSON object")
    _require(
        document.get("schema") == BENCH_HISTORY_SCHEMA,
        "$.schema",
        f"must be {BENCH_HISTORY_SCHEMA!r}",
    )
    _require(
        isinstance(document.get("recorded_at"), str) and document["recorded_at"],
        "$.recorded_at",
        "must be a non-empty string",
    )
    git_sha = document.get("git_sha")
    _require(
        git_sha is None or isinstance(git_sha, str),
        "$.git_sha",
        "must be a string or null",
    )
    metrics = document.get("metrics")
    _require(isinstance(metrics, dict), "$.metrics", "must be an object")
    _require(len(metrics) > 0, "$.metrics", "must not be empty")
    for key, value in metrics.items():
        _require_number(value, f"$.metrics[{key!r}]")
        _require(value >= 0, f"$.metrics[{key!r}]", "must be >= 0")
    sources = document.get("sources")
    _require(isinstance(sources, dict), "$.sources", "must be an object")
    phases = document.get("phases")
    if phases is not None:
        _require(
            isinstance(phases, dict), "$.phases", "must be an object or absent"
        )
        for key, value in phases.items():
            _require_number(value, f"$.phases[{key!r}]")
            _require(value >= 0, f"$.phases[{key!r}]", "must be >= 0")


def validate_manifest(document: Any) -> None:
    """Validate a run manifest (``<id>.meta.json``)."""
    _require(isinstance(document, dict), "$", "manifest must be a JSON object")
    _require(
        document.get("schema") == MANIFEST_SCHEMA,
        "$.schema",
        f"must be {MANIFEST_SCHEMA!r}",
    )
    _require(
        isinstance(document.get("experiment"), str),
        "$.experiment",
        "must be a string",
    )
    config = document.get("config")
    _require(isinstance(config, dict), "$.config", "must be an object")
    _require(
        isinstance(config.get("quick"), bool), "$.config.quick", "must be a bool"
    )
    engine = document.get("engine")
    _require(isinstance(engine, dict), "$.engine", "must be an object")
    _require(
        engine.get("path") in ("replay", "step", "mixed", "analytic"),
        "$.engine.path",
        "must be one of replay/step/mixed/analytic",
    )
    eq2 = document.get("eq2")
    _require(isinstance(eq2, dict), "$.eq2", "must be an object")
    terms = (
        "execute_cycles",
        "read_stall_cycles",
        "flush_stall_cycles",
        "write_buffer_stall_cycles",
    )
    for term in (*terms, "total_cycles"):
        _require(term in eq2, f"$.eq2.{term}", "is required")
        _require_number(eq2[term], f"$.eq2.{term}")
    total = sum(eq2[term] for term in terms)
    _require(
        total == eq2["total_cycles"],
        "$.eq2",
        f"terms sum to {total!r}, total_cycles says {eq2['total_cycles']!r}",
    )
    _require(
        isinstance(document.get("outputs"), list), "$.outputs", "must be a list"
    )
    _validate_snapshot_body(document.get("metrics"), "$.metrics")
    _require_number(document.get("wall_time_s"), "$.wall_time_s")
    provenance = document.get("provenance")
    _require(isinstance(provenance, dict), "$.provenance", "must be an object")
    for field in ("python", "created_at"):
        _require(
            isinstance(provenance.get(field), str),
            f"$.provenance.{field}",
            "must be a string",
        )
