"""Continuous profiling: a stdlib-only wall-clock sampling profiler.

The paper's whole method is attributing cycles to architectural
features (Eq. 2); this module gives the *runtime itself* the same
treatment.  A :class:`SamplingProfiler` runs a background thread that
polls :func:`sys._current_frames` at a configurable rate (the
always-on, low-overhead design argued by Google-Wide Profiling), folds
each thread's stack into a collapsed-stack aggregate, and — the part
that makes the numbers actionable — joins every sample against the
**innermost open tracing span** of the sampled thread (the span-joined
attribution style of Dapper), yielding a self-time-per-phase table
keyed by the same span names the Chrome-trace export shows
(``service.phase2``, ``phase1.extract``, ``phase2.replay``, …).

Outputs (one ``repro.obs.profile/1`` JSON document):

* ``folded`` — deterministic collapsed stacks
  (``thread;frame;frame count``), directly loadable by flamegraph.pl
  or speedscope; :func:`folded_text` renders the plain-text form.
* ``phases`` — per-phase sample counts, self seconds, and fractions.
* ``heap`` — optional :mod:`tracemalloc` top-N allocation sites.
* :func:`chrome_trace` — a Perfetto-loadable flame layout synthesized
  from the folded stacks (left-heavy, one track per thread).

Cost contract: while no profiler is running **nothing** changes — no
sampler thread exists, :func:`repro.obs.tracing.span` keeps its
two-global-load fast path, and every artifact the repo emits is
byte-identical (the determinism pins stay green).  While sampling, the
sampler wakes ``hz`` times a second and walks every thread's stack
under the GIL; ``benchmarks/bench_engine_replay.py`` measures the
overhead (committed in ``BENCH_engine.json``, budgeted at 5%).

Usage::

    from repro.obs.profile import SamplingProfiler

    with SamplingProfiler(hz=97) as profiler:
        run_workload()
    write_json("run.profile.json", profiler.document())

Only one profiler may run per process (phase tracking and
``tracemalloc`` are process-global); a second ``start()`` raises
:class:`ProfilerActiveError` — the service maps it to HTTP 409.
"""

from __future__ import annotations

import platform
import sys
import threading
import time
import uuid
from datetime import datetime, timezone
from typing import Any

from repro.obs import tracing

#: Schema tag carried by every profile document.
PROFILE_SCHEMA = "repro.obs.profile/1"

#: Default sampling rate.  Prime, so the sampler cannot lock step with
#: periodic work (batch windows, bucket boundaries) and systematically
#: over- or under-sample one phase.
DEFAULT_HZ = 97

#: Stack frames deeper than this are truncated (recursion guard).
MAX_STACK_DEPTH = 128

#: Phase bucket for samples taken while the thread had no open span.
OTHER_PHASE = "(other)"

#: Heap sites reported when heap tracking is enabled.
DEFAULT_HEAP_TOP = 20

#: Path markers used to shorten frame filenames to repo-relative form.
_PATH_MARKERS = ("/repro/", "/benchmarks/", "/scripts/", "/tests/")


class ProfilerActiveError(RuntimeError):
    """A profiler is already sampling this process."""


def new_profile_id() -> str:
    """A fresh ``prof-`` id (echoed into service access-log records)."""
    return "prof-" + uuid.uuid4().hex[:12]


def _frame_label(filename: str, funcname: str) -> str:
    """One folded-stack frame: shortened filename + function name.

    Filenames are trimmed to the last repo-meaningful component so the
    folded output is machine-independent; separators the folded format
    reserves (``;`` between frames, space before the count) are
    replaced.
    """
    posix = filename.replace("\\", "/")
    for marker in _PATH_MARKERS:
        index = posix.rfind(marker)
        if index >= 0:
            posix = posix[index + 1 :]
            break
    else:
        posix = posix.rpartition("/")[2] or posix
    label = f"{posix}:{funcname}"
    return label.replace(";", ",").replace(" ", "_")


class SamplingProfiler:
    """Wall-clock sampling profiler with span-joined phase attribution.

    ``hz`` bounds the sampling rate (1..1000).  ``heap=True`` also
    starts :mod:`tracemalloc` for the window and reports the top
    ``heap_top`` allocation sites by retained size at stop time.
    """

    def __init__(
        self,
        hz: int = DEFAULT_HZ,
        heap: bool = False,
        heap_top: int = DEFAULT_HEAP_TOP,
        profile_id: str | None = None,
    ) -> None:
        if not 1 <= hz <= 1000:
            raise ValueError(f"hz must be within [1, 1000], got {hz}")
        if heap_top < 1:
            raise ValueError(f"heap_top must be >= 1, got {heap_top}")
        self.hz = hz
        self.heap = heap
        self.heap_top = heap_top
        self.id = profile_id or new_profile_id()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._phase_stacks: dict[int, list[str]] = {}
        self._stack_counts: dict[tuple[str, tuple[str, ...]], int] = {}
        self._phase_counts: dict[str, int] = {}
        self._thread_counts: dict[str, int] = {}
        self._sweeps = 0
        self._started_at = 0.0
        self._duration = 0.0
        self._heap_report: dict[str, Any] | None = None
        self._own_tracemalloc = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Install phase tracking and start the sampler thread."""
        global _ACTIVE_PROFILER
        with _GUARD:
            if _ACTIVE_PROFILER is not None:
                raise ProfilerActiveError(
                    f"profiler {_ACTIVE_PROFILER.id} is already sampling "
                    f"this process"
                )
            _ACTIVE_PROFILER = self
        if self.heap:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._own_tracemalloc = True
        tracing.set_phase_stacks(self._phase_stacks)
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling, take the heap snapshot, release the process."""
        global _ACTIVE_PROFILER
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._duration = time.perf_counter() - self._started_at
        if tracing.phase_stacks() is self._phase_stacks:
            tracing.set_phase_stacks(None)
        if self.heap:
            self._heap_report = self._snapshot_heap()
        with _GUARD:
            if _ACTIVE_PROFILER is self:
                _ACTIVE_PROFILER = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the sampler thread -----------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        next_at = time.perf_counter() + interval
        while not self._stop.is_set():
            delay = next_at - time.perf_counter()
            if delay > 0:
                if self._stop.wait(delay):
                    break
            else:
                # Fell behind (a long GIL hold); resync rather than burst.
                next_at = time.perf_counter()
            next_at += interval
            self._sample()

    def _sample(self) -> None:
        own_ident = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        self._sweeps += 1
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                stack.append(
                    _frame_label(frame.f_code.co_filename, frame.f_code.co_name)
                )
                frame = frame.f_back
                depth += 1
            stack.reverse()
            thread_name = names.get(ident, f"thread-{ident}")
            key = (thread_name, tuple(stack))
            self._stack_counts[key] = self._stack_counts.get(key, 0) + 1
            self._thread_counts[thread_name] = (
                self._thread_counts.get(thread_name, 0) + 1
            )
            phase_stack = self._phase_stacks.get(ident)
            try:
                phase = phase_stack[-1] if phase_stack else OTHER_PHASE
            except IndexError:  # pragma: no cover - popped mid-read
                phase = OTHER_PHASE
            self._phase_counts[phase] = self._phase_counts.get(phase, 0) + 1

    def _snapshot_heap(self) -> dict[str, Any]:
        import tracemalloc

        snapshot = tracemalloc.take_snapshot()
        current, peak = tracemalloc.get_traced_memory()
        if self._own_tracemalloc:
            tracemalloc.stop()
            self._own_tracemalloc = False
        top = []
        for stat in snapshot.statistics("lineno")[: self.heap_top]:
            trace_frame = stat.traceback[0]
            top.append(
                {
                    "site": _frame_label(trace_frame.filename, "")[:-1]
                    + f":{trace_frame.lineno}",
                    "size_kib": round(stat.size / 1024.0, 3),
                    "count": stat.count,
                }
            )
        return {
            "traced_kib": round(current / 1024.0, 3),
            "peak_kib": round(peak / 1024.0, 3),
            "top": top,
        }

    # -- the document -----------------------------------------------------

    def folded_lines(self) -> list[str]:
        """Collapsed stacks, one ``thread;frame;... count`` per line.

        Deterministically sorted (stack text ascending) so two documents
        built from the same aggregate are byte-identical.
        """
        lines = []
        for (thread_name, stack), count in self._stack_counts.items():
            frames = ";".join(
                (thread_name.replace(";", ",").replace(" ", "_"), *stack)
            )
            lines.append((frames, count))
        return [f"{frames} {count}" for frames, count in sorted(lines)]

    def phase_table(self) -> dict[str, dict[str, Any]]:
        """Self-time per innermost span: samples, seconds, fraction.

        Never empty: a window too short to catch a single sample still
        reports a zeroed ``(other)`` row, so every document carries a
        structurally valid table.
        """
        if not self._phase_counts:
            return {OTHER_PHASE: {"samples": 0, "self_s": 0.0, "fraction": 0.0}}
        total = sum(self._phase_counts.values())
        table = {}
        for phase in sorted(self._phase_counts):
            samples = self._phase_counts[phase]
            table[phase] = {
                "samples": samples,
                "self_s": round(samples / self.hz, 6),
                "fraction": round(samples / total, 6) if total else 0.0,
            }
        return table

    def document(self) -> dict[str, Any]:
        """The full ``repro.obs.profile/1`` document (call after stop)."""
        return {
            "schema": PROFILE_SCHEMA,
            "id": self.id,
            "hz": self.hz,
            "duration_s": round(self._duration, 6),
            "samples": self._sweeps,
            "thread_samples": sum(self._thread_counts.values()),
            "threads": {
                name: self._thread_counts[name]
                for name in sorted(self._thread_counts)
            },
            "folded": self.folded_lines(),
            "phases": self.phase_table(),
            "heap": self._heap_report,
            "provenance": {
                "python": platform.python_version(),
                "created_at": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            },
        }


#: The one profiler allowed to sample this process, or ``None``.
_ACTIVE_PROFILER: SamplingProfiler | None = None
_GUARD = threading.Lock()


def active_profiler() -> SamplingProfiler | None:
    """The currently sampling profiler, or ``None``."""
    return _ACTIVE_PROFILER


# -- exports ---------------------------------------------------------------


def folded_text(document: dict[str, Any]) -> str:
    """The collapsed-stack text export (flamegraph.pl / speedscope)."""
    return "\n".join(document["folded"]) + "\n"


def phase_self_seconds(document: dict[str, Any]) -> dict[str, float]:
    """Flatten a document's phase table to ``{phase: self_s}``.

    The view ``bench_history`` entries store and its attribution diffs.
    """
    return {
        phase: float(entry["self_s"])
        for phase, entry in document.get("phases", {}).items()
    }


def chrome_trace(document: dict[str, Any]) -> dict[str, Any]:
    """Synthesize a Perfetto-loadable flame layout from the folded stacks.

    Each thread becomes its own track; sibling frames are laid out
    left-heavy (sorted by name) with widths proportional to sample
    counts (one sample = one sampling period).  The result validates
    against the Chrome-trace schema and renders as a flame graph purely
    from interval containment, like the span exporter's output.
    """
    period_us = 1e6 / document["hz"]

    # Build a per-thread trie of frame -> (weight, children).
    threads: dict[str, dict] = {}
    for line in document["folded"]:
        stack_text, _, count_text = line.rpartition(" ")
        count = int(count_text)
        frames = stack_text.split(";")
        thread_name, frames = frames[0], frames[1:]
        node = threads.setdefault(thread_name, {"weight": 0, "children": {}})
        node["weight"] += count
        for frame in frames:
            node = node["children"].setdefault(
                frame, {"weight": 0, "children": {}}
            )
            node["weight"] += count

    events: list[dict[str, Any]] = []
    for tid, thread_name in enumerate(sorted(threads)):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )
        stack = [(threads[thread_name]["children"], 0.0)]
        while stack:
            children, offset = stack.pop()
            for name in sorted(children):
                node = children[name]
                duration = node["weight"] * period_us
                events.append(
                    {
                        "name": name,
                        "cat": "repro.profile",
                        "ph": "X",
                        "ts": offset,
                        "dur": duration,
                        "pid": 0,
                        "tid": tid,
                        "args": {"samples": node["weight"]},
                    }
                )
                if node["children"]:
                    stack.append((node["children"], offset))
                offset += duration
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.profile",
            "profile_id": document.get("id"),
        },
    }


def main(argv: Any = None) -> int:
    """Export CLI: folded stacks / Perfetto trace from a profile JSON.

    ::

        python -m repro.obs.profile run.profile.json \\
            --folded run.folded --trace run.trace.json
    """
    import argparse
    import json

    from repro.obs.schemas import SchemaError, validate_profile
    from repro.util.jsonout import write_json

    parser = argparse.ArgumentParser(
        prog="repro-obs-profile",
        description="Validate a repro.obs.profile/1 document and export "
        "its folded stacks and/or a Perfetto-loadable flame layout.",
    )
    parser.add_argument("profile", metavar="FILE")
    parser.add_argument(
        "--folded", metavar="OUT", help="write collapsed-stack text here"
    )
    parser.add_argument(
        "--trace", metavar="OUT", help="write the Chrome-trace JSON here"
    )
    args = parser.parse_args(argv)
    with open(args.profile) as handle:
        document = json.load(handle)
    try:
        validate_profile(document)
    except SchemaError as error:
        print(f"{args.profile}: INVALID: {error}", file=sys.stderr)
        return 1
    print(
        f"{args.profile}: ok ({document['samples']} sweeps, "
        f"{document['thread_samples']} thread samples, "
        f"{len(document['phases'])} phases)"
    )
    if args.folded:
        from pathlib import Path

        Path(args.folded).write_text(folded_text(document))
        print(f"wrote {args.folded}")
    if args.trace:
        write_json(args.trace, chrome_trace(document))
        print(f"wrote {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
