"""CLI: validate observability artifacts against their schemas.

Usage::

    python -m repro.obs.validate --trace trace.json \\
        --metrics metrics.json --manifest results/figure1.meta.json \\
        --bench BENCH_engine.json --access-log results/access.jsonl

Exit status 0 when every given artifact validates, 1 otherwise.  CI
runs this over the smoke run's artifacts so a schema regression fails
the build rather than silently shipping malformed JSON.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Callable, Sequence
from typing import Any

from repro.obs import logs
from repro.obs.schemas import (
    SchemaError,
    validate_access_log_record,
    validate_bench_engine,
    validate_bench_service,
    validate_chrome_trace,
    validate_manifest,
    validate_metrics,
    validate_profile,
    validate_service_response,
)

logger = logging.getLogger(__name__)


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-obs-validate",
        description="Validate trace/metrics/manifest JSON artifacts.",
    )
    parser.add_argument("--trace", action="append", default=[], metavar="FILE")
    parser.add_argument("--metrics", action="append", default=[], metavar="FILE")
    parser.add_argument("--manifest", action="append", default=[], metavar="FILE")
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="FILE",
        help="BENCH_engine.json scoreboard; also fails when the --all "
        "--quick dispatch counts show any step-simulator calls",
    )
    parser.add_argument(
        "--bench-service",
        action="append",
        default=[],
        metavar="FILE",
        help="BENCH_service.json scoreboard; also fails on any "
        "step-simulator dispatch, a phase-1 extraction count above one "
        "per (trace, geometry) key, or a 16-client coalescing ratio <= 1",
    )
    parser.add_argument(
        "--profile",
        action="append",
        default=[],
        metavar="FILE",
        help="sampling-profiler document (repro.obs.profile/1), as "
        "written by `--profile` runs or GET /v1/debug/profile",
    )
    parser.add_argument(
        "--access-log",
        action="append",
        default=[],
        metavar="FILE",
        help="serving-layer JSONL access log; every line must validate "
        "against repro.obs.access_log/1",
    )
    parser.add_argument(
        "--service-response",
        action="extend",
        nargs="+",
        default=[],
        metavar="FILE",
        help="captured repro.service JSON payloads (response, error or "
        "stats envelopes); accepts several files per flag so a shell "
        "glob over a smoke run's payload directory just works",
    )
    parser.add_argument(
        "--campaign",
        action="append",
        default=[],
        metavar="DIR",
        help="campaign registry directory (one campaign): validates the "
        "spec's canonical form and content address, the state "
        "checkpoint's checksum, every done point's artifact, and — when "
        "present — the results.jsonl framing and summary checksum",
    )
    parser.add_argument(
        "--spans",
        action="append",
        default=[],
        metavar="DIR",
        help="span-spool directory (see repro.obs.span_spool): verifies "
        "every finalized segment against its checksum sidecar and every "
        "line against repro.obs.spans/1; the crash-tolerant active file "
        "is validated line by line",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0)
    args = parser.parse_args(argv)
    if not (
        args.trace
        or args.metrics
        or args.manifest
        or args.bench
        or args.bench_service
        or args.profile
        or args.access_log
        or args.service_response
        or args.campaign
        or args.spans
    ):
        parser.error(
            "nothing to validate: pass --trace/--metrics/--manifest/"
            "--bench/--bench-service/--profile/--access-log/"
            "--service-response/--campaign/--spans"
        )
    return args


def _check(path: str, validator: Callable[[Any], None]) -> bool:
    try:
        with open(path) as handle:
            document = json.load(handle)
        validator(document)
    except (OSError, json.JSONDecodeError, SchemaError) as error:
        logger.error("%s: INVALID: %s", path, error)
        return False
    print(f"{path}: ok")
    return True


def _check_access_log(path: str) -> bool:
    """Validate every line of a JSONL access log."""
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
        n_records = 0
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                validate_access_log_record(json.loads(line))
            except (json.JSONDecodeError, SchemaError) as error:
                raise SchemaError(f"line {lineno}: {error}") from None
            n_records += 1
    except (OSError, SchemaError) as error:
        logger.error("%s: INVALID: %s", path, error)
        return False
    print(f"{path}: ok ({n_records} records)")
    return True


def _check_campaign(path: str) -> bool:
    """Validate one campaign registry directory end to end."""
    # Imported lazily: campaign validation pulls in the service schemas,
    # which plain artifact validation should not pay for.
    from repro.campaign.registry import validate_campaign_dir

    try:
        counts = validate_campaign_dir(path)
    except (OSError, json.JSONDecodeError, SchemaError) as error:
        logger.error("%s: INVALID: %s", path, error)
        return False
    print(
        f"{path}: ok (campaign {counts['campaign'][:12]}: "
        f"{counts['done']}/{counts['points']} done, "
        f"{counts['errors']} errors, {counts['excluded']} excluded)"
    )
    return True


def _check_spans(path: str) -> bool:
    """Validate one span-spool directory (segments + active file)."""
    # Imported lazily, like the campaign validator: plain artifact
    # validation should not pay for the spool machinery.
    from repro.obs.span_spool import validate_spool

    try:
        counts = validate_spool(path)
    except (OSError, json.JSONDecodeError, SchemaError) as error:
        logger.error("%s: INVALID: %s", path, error)
        return False
    print(
        f"{path}: ok ({counts['records']} spans, "
        f"{counts['segments']} sealed segments)"
    )
    return True


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    args = _parse_args(argv)
    logs.configure(verbosity=args.verbose)
    ok = True
    for path in args.trace:
        ok &= _check(path, validate_chrome_trace)
    for path in args.metrics:
        ok &= _check(path, validate_metrics)
    for path in args.manifest:
        ok &= _check(path, validate_manifest)
    for path in args.bench:
        ok &= _check(path, validate_bench_engine)
    for path in args.bench_service:
        ok &= _check(path, validate_bench_service)
    for path in args.profile:
        ok &= _check(path, validate_profile)
    for path in args.access_log:
        ok &= _check_access_log(path)
    for path in args.service_response:
        ok &= _check(path, validate_service_response)
    for path in args.campaign:
        ok &= _check_campaign(path)
    for path in args.spans:
        ok &= _check_spans(path)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
