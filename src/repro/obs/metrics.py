"""Counters, histograms, and the Eq. (2) cycle breakdown.

A :class:`MetricsRegistry` accumulates named, optionally labeled
counters and histograms.  Like tracing, collection is off by default:
the module-level :func:`inc` / :func:`observe` helpers are no-ops after
one global load while no registry is installed, so the hot layers stay
instrumented permanently at negligible cost.

Determinism is a first-class property.  Counter keys are canonical
(labels sorted into the key), snapshots serialize with sorted keys, and
:meth:`MetricsRegistry.merge` folds per-experiment snapshots together in
the caller's order — the experiment runner merges worker snapshots in
*request* order, which is why a ``--jobs N`` aggregate is byte-identical
to a sequential one (see ``docs/OBSERVABILITY.md`` for the full
argument, including why the φ memo caches are cleared per experiment
while collection is on).

The Eq. (2) breakdown (:func:`eq2_breakdown`, :func:`record_timing`)
decomposes a :class:`~repro.cpu.processor.TimingResult` into the paper's
terms — execute, read-miss stall, copy-back (flush) stall, and
write-buffer stall cycles — and self-checks that the terms sum back to
the simulator's total cycle count.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.util.jsonout import dump_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cpu imports obs)
    from repro.cpu.processor import TimingResult

#: Counter names for the Eq. (2) terms, in paper order.  ``execute``
#: is everything that is not an attributed stall (the ``E - Lambda_m``
#: issue slots plus the per-miss ``beta_m`` the breakdown leaves with
#: the read term).
EQ2_TERMS = (
    "eq2.execute_cycles",
    "eq2.read_stall_cycles",
    "eq2.flush_stall_cycles",
    "eq2.write_buffer_stall_cycles",
)


class Eq2MismatchError(AssertionError):
    """The Eq. (2) terms failed to reconstruct the total cycle count."""


class MetricsRegistry:
    """Accumulates counters and histograms; merges deterministically."""

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # -- recording ------------------------------------------------------

    @staticmethod
    def _key(name: str, labels: dict[str, Any]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"

    def inc(self, name: str, value: int | float = 1, **labels: Any) -> None:
        """Add ``value`` to a counter (created at zero)."""
        key = self._key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Fold one observation into a histogram (count/sum/min/max)."""
        key = self._key(name, labels)
        entry = self._histograms.get(key)
        value = float(value)
        if entry is None:
            self._histograms[key] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        entry["count"] += 1
        entry["sum"] += value
        if value < entry["min"]:
            entry["min"] = value
        if value > entry["max"]:
            entry["max"] = value

    # -- aggregation ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view (picklable, JSON-ready), keys sorted."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "histograms": {
                k: dict(self._histograms[k]) for k in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Callers must merge snapshots in a deterministic order (the
        runner uses experiment request order) for float sums to be
        bit-reproducible.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, their in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = dict(their)
                continue
            mine["count"] += their["count"]
            mine["sum"] += their["sum"]
            if their["min"] < mine["min"]:
                mine["min"] = their["min"]
            if their["max"] > mine["max"]:
                mine["max"] = their["max"]

    def counter(self, name: str, **labels: Any) -> int | float:
        """Current value of one counter (0 when never incremented)."""
        return self._counters.get(self._key(name, labels), 0)

    def to_json(self) -> str:
        """Deterministic JSON rendering of :meth:`snapshot`."""
        return dump_json({"schema": SNAPSHOT_SCHEMA, **self.snapshot()})


#: Schema tag written into exported snapshots (checked by
#: :mod:`repro.obs.schemas`).
SNAPSHOT_SCHEMA = "repro.obs.metrics/1"

#: The process-wide registry, or ``None`` while collection is disabled.
_ACTIVE: MetricsRegistry | None = None


def enable_metrics() -> MetricsRegistry:
    """Install (and return) a fresh process-wide registry."""
    global _ACTIVE
    _ACTIVE = MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> MetricsRegistry | None:
    """Stop collecting; returns the registry that was active, if any."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


def metrics_enabled() -> bool:
    """Whether counters are currently being recorded."""
    return _ACTIVE is not None


def current_metrics() -> MetricsRegistry | None:
    """The active registry, or ``None``."""
    return _ACTIVE


def inc(name: str, value: int | float = 1, **labels: Any) -> None:
    """Module-level counter increment; no-op while collection is off."""
    registry = _ACTIVE
    if registry is not None:
        registry.inc(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Module-level histogram observation; no-op while collection is off."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, **labels)


def percentile(values: "list[float] | tuple[float, ...]", q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Deterministic (no interpolation, so the result is always a member of
    ``values``) and dependency-free; the service's latency summaries and
    the load generator both use it so their p50/p99 agree by
    construction.  Raises ``ValueError`` on an empty sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be within [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


# -- Eq. (2) decomposition ----------------------------------------------


def eq2_breakdown(result: "TimingResult") -> dict[str, float]:
    """Decompose a timing result into the paper's Eq. (2) terms.

    Returns ``{execute, read_stall, flush_stall, write_buffer_stall,
    total}_cycles`` where ``total_cycles`` is the *sum of the four
    terms* — exact by construction — and the self-check verifies that
    this sum reconstructs the simulator's ``result.cycles``.  With the
    integer/dyadic ``beta_m`` grids the experiments use, every term is
    exactly representable and the reconstruction is bit-exact; a
    genuine accounting bug raises :class:`Eq2MismatchError`.
    """
    read = result.read_miss_stall_cycles
    flush = result.flush_stall_cycles
    write = result.write_stall_cycles
    execute = result.cycles - read - flush - write
    total = execute + read + flush + write
    if total != result.cycles and not math.isclose(
        total, result.cycles, rel_tol=1e-12, abs_tol=1e-9
    ):
        raise Eq2MismatchError(
            f"Eq. 2 terms sum to {total!r}, simulator reported "
            f"{result.cycles!r} cycles (execute={execute!r}, read={read!r}, "
            f"flush={flush!r}, write_buffer={write!r})"
        )
    return {
        "execute_cycles": execute,
        "read_stall_cycles": read,
        "flush_stall_cycles": flush,
        "write_buffer_stall_cycles": write,
        "total_cycles": total,
    }


def record_timing(engine: str, result: "TimingResult") -> None:
    """Fold one simulation's dispatch + Eq. (2) terms into the metrics.

    ``engine`` is ``"replay"`` (two-phase timing replay) or ``"step"``
    (the step-simulator oracle).  No-op while collection is off; the
    breakdown self-check runs on every recorded result.
    """
    registry = _ACTIVE
    if registry is None:
        return
    breakdown = eq2_breakdown(result)
    registry.inc(f"engine.{engine}.calls")
    registry.inc(f"engine.{engine}.instructions", result.instructions)
    registry.inc("eq2.execute_cycles", breakdown["execute_cycles"])
    registry.inc("eq2.read_stall_cycles", breakdown["read_stall_cycles"])
    registry.inc("eq2.flush_stall_cycles", breakdown["flush_stall_cycles"])
    registry.inc(
        "eq2.write_buffer_stall_cycles", breakdown["write_buffer_stall_cycles"]
    )
    registry.inc("eq2.total_cycles", breakdown["total_cycles"])
