"""Live request observability for the serving layer.

Everything here exists so a *running* ``repro.service`` instance can be
debugged while it serves traffic, without giving up the repo's
determinism or stdlib-only contracts (see ``docs/OBSERVABILITY.md``):

Request-context propagation
    Every ingress request gets a ``request_id`` (the inbound
    ``X-Repro-Request-Id`` header when present, a fresh one otherwise).
    The id rides a :mod:`contextvars` context — :func:`request_context`
    installs it, :func:`current_request_id` reads it anywhere below the
    handler, and a provider hook registered with
    :func:`repro.obs.tracing.set_context_provider` stamps it into the
    ``args`` of every span opened while the context is active.  The
    micro-batch scheduler re-enters the context on its worker thread per
    request, so phase-1/phase-2 spans in a Chrome-trace export show
    which coalesced batch served which requests.

Distributed trace context
    Alongside the request id, every ingress request gets a W3C-style
    trace identity: the inbound ``traceparent`` header when well-formed
    (:func:`parse_traceparent` is strict — anything malformed is
    discarded and a fresh root is minted), installed with
    :func:`repro.obs.tracing.trace_context` so every span records
    ``trace_id``/``span_id``/``parent_span_id``.  The router re-emits
    ``traceparent`` on forwarded requests (:func:`current_traceparent`),
    making its ``service.forward`` span the parent of the worker's
    spans; the batcher re-enters the context on the batch thread, so the
    tree survives both the process hop and the thread hop.

:class:`RingTracer`
    A :class:`~repro.obs.tracing.Tracer` whose event list is a bounded
    ring (``collections.deque`` with ``maxlen``) — safe to leave
    installed on a long-lived server.  ``GET /v1/debug/trace?last=N``
    serves its tail as a Perfetto-loadable document.

:class:`RollingWindow` + :class:`QuantileSketch`
    Time-bucketed sliding-window SLIs (counts, error counts, p50/p95/p99
    latency) over the last ~60 s, with an injectable clock so tests pin
    bucket expiry deterministically.  The sketch is a log-spaced
    histogram: bounded memory, deterministic quantiles (each reported
    quantile is the upper edge of the bin holding the nearest-rank
    sample, ~10% relative resolution).

:func:`render_prometheus`
    Text exposition (version 0.0.4) of the cumulative metrics registry,
    the rolling-window summaries, and point-in-time gauges — what
    ``GET /metrics`` returns.  :func:`parse_exposition` is the matching
    structural parser the tests and the CI smoke use to assert validity.
"""

from __future__ import annotations

import math
import re
import time
import uuid
from collections import OrderedDict, deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

from repro.obs import tracing
from repro.obs.tracing import Tracer

#: The ingress/egress header carrying the request id (any casing).
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: The inbound W3C-style trace-context header
#: (``00-<32 hex trace>-<16 hex span>-<2 hex flags>``).
TRACEPARENT_HEADER = "traceparent"

#: The egress header echoing the request's trace id, so a caller can
#: immediately pull ``/v1/debug/trace?trace_id=...`` for the request it
#: just made (mirrors the :data:`REQUEST_ID_HEADER` echo).
TRACE_ID_HEADER = "X-Repro-Trace-Id"

#: Schema tag of the ``/v1/debug/trace`` document (also a valid Chrome
#: trace: ``traceEvents`` is the ring tail, so Perfetto loads it as-is).
TRACE_TAIL_SCHEMA = "repro.obs.trace_tail/1"

#: Inbound ids are clamped to this many characters.
MAX_REQUEST_ID_LEN = 64

_ID_SANITIZE = re.compile(r"[^A-Za-z0-9._:-]")

#: A well-formed ``traceparent`` is exactly this long; anything longer
#: is rejected before the regex even runs.
MAX_TRACEPARENT_LEN = 55

_TRACEPARENT_RE = re.compile(
    r"^00-(?P<trace_id>[0-9a-f]{32})-(?P<span_id>[0-9a-f]{16})-[0-9a-f]{2}$"
)


# -- request-context propagation -----------------------------------------


@dataclass
class RequestContext:
    """The per-request state carried through handler and worker code."""

    request_id: str
    annotations: dict[str, Any] = field(default_factory=dict)


_CONTEXT: ContextVar[RequestContext | None] = ContextVar(
    "repro_request_context", default=None
)


def new_request_id() -> str:
    """A fresh 16-hex-character request id."""
    return uuid.uuid4().hex[:16]


def request_id_from_header(value: str | None) -> str:
    """Honour an inbound header id (sanitized, clamped) or mint one."""
    if value:
        cleaned = _ID_SANITIZE.sub("", value.strip())[:MAX_REQUEST_ID_LEN]
        if cleaned:
            return cleaned
    return new_request_id()


# -- distributed trace context -------------------------------------------


def new_trace_id() -> str:
    """A fresh 32-hex-character trace id."""
    return uuid.uuid4().hex


def parse_traceparent(value: str | None) -> tuple[str, str] | None:
    """Strictly parse a ``traceparent`` into ``(trace_id, span_id)``.

    Unlike :func:`request_id_from_header`'s strip-the-bad-characters
    sanitization, trace identity is all-or-nothing: a header that is
    missing, oversized, wrongly delimited, uppercase, or carries an
    all-zero trace or span id returns ``None`` — the caller mints a
    fresh context instead of propagating a mangled one.
    """
    if not value:
        return None
    cleaned = value.strip()
    if len(cleaned) > MAX_TRACEPARENT_LEN:
        return None
    match = _TRACEPARENT_RE.match(cleaned)
    if match is None:
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


def trace_context_from_header(value: str | None) -> tuple[str, str]:
    """Honour a well-formed inbound ``traceparent`` or mint a fresh root.

    Returns the ``(trace_id, parent_span_id)`` pair to install with
    :func:`repro.obs.tracing.trace_context`; a fresh root has an empty
    parent id, so the first span opened under it becomes the trace root.
    """
    parsed = parse_traceparent(value)
    if parsed is not None:
        return parsed
    return new_trace_id(), ""


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a ``traceparent`` header value (sampled flag set)."""
    return f"00-{trace_id}-{span_id}-01"


def current_traceparent() -> str | None:
    """An outbound ``traceparent`` for the ambient trace, or ``None``.

    The parent half is the innermost open traced span's id; when no span
    has recorded one (span ring disabled), an ephemeral span id is
    minted so the *trace id* still propagates downstream.
    """
    context = tracing.current_trace_context()
    if context is None:
        return None
    trace_id, span_id = context
    return format_traceparent(trace_id, span_id or tracing.new_span_id())


@contextmanager
def request_context(request_id: str | None) -> Iterator[RequestContext | None]:
    """Install a request context for the duration of the ``with`` block.

    ``None`` yields without installing anything, so call sites that may
    run outside a request (direct :class:`MicroBatcher` use in tests)
    need no conditional.
    """
    if request_id is None:
        yield None
        return
    context = RequestContext(request_id)
    token = _CONTEXT.set(context)
    try:
        yield context
    finally:
        _CONTEXT.reset(token)


def current_request_id() -> str | None:
    """The active request id, or ``None`` outside a request."""
    context = _CONTEXT.get()
    return context.request_id if context is not None else None


def annotate(**fields: Any) -> None:
    """Attach access-log fields to the active request (no-op outside)."""
    context = _CONTEXT.get()
    if context is not None:
        context.annotations.update(fields)


def current_annotations() -> dict[str, Any]:
    """Annotations accumulated on the active request (empty outside)."""
    context = _CONTEXT.get()
    return dict(context.annotations) if context is not None else {}


#: Process-wide fleet identity (``w0``..``wN-1``), set once at worker
#: startup.  ``None`` means "not a fleet worker" (single-process serve,
#: tests, CLI runs) and adds nothing anywhere.
_WORKER_ID: str | None = None


def set_worker_id(worker: str | None) -> None:
    """Declare this process's fleet worker id (``None`` clears it).

    Stamped into every span's ``args`` (via the context provider below)
    and into every access-log record (the server annotates it), so a
    merged fleet trace or log attributes work to the worker that did it.
    """
    global _WORKER_ID
    _WORKER_ID = worker or None


def current_worker_id() -> str | None:
    """This process's fleet worker id, or ``None`` outside a fleet."""
    return _WORKER_ID


def _span_context() -> dict[str, Any]:
    """Provider hook: stamp request id + worker id into every live span."""
    out: dict[str, Any] = {}
    if _WORKER_ID is not None:
        out["worker"] = _WORKER_ID
    context = _CONTEXT.get()
    if context is not None:
        out["request_id"] = context.request_id
    return out


tracing.set_context_provider(_span_context)


# -- the span ring buffer ------------------------------------------------


class RingTracer(Tracer):
    """A tracer whose event store is a bounded ring.

    Appends are GIL-atomic, so the event-loop thread and the batch
    worker can both record spans without a lock; readers snapshot with
    ``list(...)``.  When the ring is full the oldest spans fall off —
    the right trade for a long-lived server where ``/v1/debug/trace``
    only ever wants the recent past.
    """

    def __init__(
        self,
        capacity: int = 4096,
        pid: int = 0,
        tid: int = 0,
        name: str = "service",
        sink: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(pid=pid, tid=tid, name=name)
        self.capacity = capacity
        self.recorded = 0
        #: Optional per-event tap (the span spool's ``append``); called
        #: with each finished span before it lands in the ring.
        self.sink = sink
        self.events = _RingEvents(self, capacity)  # type: ignore[assignment]

    def tail(self, last: int | None = None) -> list[dict[str, Any]]:
        """The most recent ``last`` span events (all when ``None``)."""
        events = list(self.events)
        if last is None:
            return events
        if last <= 0:
            return []
        return events[-last:]


class _RingEvents(deque):
    """Bounded event deque that also counts total appends."""

    def __init__(self, tracer: RingTracer, capacity: int) -> None:
        super().__init__(maxlen=capacity)
        self._tracer = tracer

    def append(self, event: dict[str, Any]) -> None:  # type: ignore[override]
        self._tracer.recorded += 1
        sink = self._tracer.sink
        if sink is not None:
            sink(event)
        super().append(event)


def trace_tail_document(
    tracer: Tracer | None,
    last: int | None = None,
    trace_id: str | None = None,
) -> dict[str, Any]:
    """The ``/v1/debug/trace`` payload: a schema-tagged Chrome trace.

    The document is Perfetto-loadable (``traceEvents`` holds the tail)
    and carries the ring bookkeeping so callers can tell truncation from
    a quiet server, plus a ``clock`` section (``perf_counter`` now and
    the tracer epoch) so a cross-process collector can rebase the events
    onto its own timeline.  ``trace_id`` filters the tail (after the
    ``last`` cut) to one request's spans.
    """
    if tracer is None:
        return {
            "schema": TRACE_TAIL_SCHEMA,
            "enabled": False,
            "traceEvents": [],
            "displayTimeUnit": "ms",
            "clock": {"perf_counter": time.perf_counter(), "epoch": None},
            "otherData": {"producer": "repro.obs.live"},
        }
    if isinstance(tracer, RingTracer):
        events = tracer.tail(last)
        ring = {"capacity": tracer.capacity, "recorded": tracer.recorded}
    else:
        events = list(tracer.events)
        if last is not None:
            events = events[-last:] if last > 0 else []
        ring = {"capacity": None, "recorded": len(tracer.events)}
    if trace_id is not None:
        events = [
            event
            for event in events
            if event.get("args", {}).get("trace_id") == trace_id
        ]
    document = tracer.chrome_trace()
    document["traceEvents"] = [
        event for event in document["traceEvents"] if event.get("ph") == "M"
    ] + events
    document["schema"] = TRACE_TAIL_SCHEMA
    document["enabled"] = True
    document["ring"] = ring
    document["clock"] = {
        "perf_counter": time.perf_counter(),
        "epoch": tracer.epoch,
    }
    return document


# -- rolling-window SLIs -------------------------------------------------


class QuantileSketch:
    """Log-spaced latency histogram with deterministic quantiles.

    Values (milliseconds) land in one of :data:`N_BINS` bins whose edges
    grow geometrically by :data:`GROWTH` from :data:`MIN_VALUE_MS`; a
    quantile query walks the cumulative counts to the nearest-rank bin
    and reports that bin's upper edge.  Memory is a flat int list, the
    answer never depends on arrival order, and the relative resolution
    is ``GROWTH - 1`` (~10%).
    """

    GROWTH = 1.1
    MIN_VALUE_MS = 1e-3
    N_BINS = 192  # upper edge ~8.4e4 ms; larger values clamp to the top bin

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts = [0] * self.N_BINS
        self.total = 0

    _LOG_GROWTH = math.log(GROWTH)

    def _bin_of(self, value_ms: float) -> int:
        if value_ms <= self.MIN_VALUE_MS:
            return 0
        index = int(math.log(value_ms / self.MIN_VALUE_MS) / self._LOG_GROWTH)
        return min(index, self.N_BINS - 1)

    def add(self, value_ms: float) -> None:
        """Fold one latency observation into the sketch."""
        self.counts[self._bin_of(value_ms)] += 1
        self.total += 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (bin-wise sum)."""
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total

    def upper_edge(self, index: int) -> float:
        """The reported value for a quantile landing in bin ``index``."""
        return self.MIN_VALUE_MS * self.GROWTH ** (index + 1)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (``q`` in [0, 1]); 0.0 on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be within [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.upper_edge(index)
        return self.upper_edge(self.N_BINS - 1)  # pragma: no cover


#: The quantiles every endpoint summary reports, in exposition order.
SLI_QUANTILES = (("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99))


class _WindowEntry:
    """Per-(bucket, endpoint) accumulation."""

    __slots__ = (
        "count", "errors", "latency_sum_ms", "sketch",
        "slow_ms", "slow_trace_id",
    )

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.latency_sum_ms = 0.0
        self.sketch = QuantileSketch()
        # The slowest traced request in this entry — the exemplar
        # surfaced next to the p99 (the window max is always an upper
        # witness for the p99 estimate).
        self.slow_ms = -1.0
        self.slow_trace_id: str | None = None


class RollingWindow:
    """Time-bucketed sliding-window SLI aggregator.

    The window is ``n_buckets`` fixed-width time buckets; a record lands
    in the bucket its timestamp falls into, and a summary merges every
    bucket younger than the window.  The clock is injectable
    (``time.monotonic`` by default) so tests can march time forward
    deterministically.  Writers and readers share the event-loop thread
    in the server, so no locking is needed.
    """

    def __init__(
        self,
        window_s: float = 60.0,
        bucket_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if bucket_s <= 0 or window_s < bucket_s:
            raise ValueError(
                f"need window_s >= bucket_s > 0, got {window_s}/{bucket_s}"
            )
        self.window_s = window_s
        self.bucket_s = bucket_s
        self.n_buckets = max(1, int(round(window_s / bucket_s)))
        self._clock = clock
        self._buckets: OrderedDict[int, dict[str, _WindowEntry]] = OrderedDict()

    def _prune(self, now_index: int) -> None:
        floor = now_index - self.n_buckets + 1
        while self._buckets:
            oldest = next(iter(self._buckets))
            if oldest >= floor:
                break
            del self._buckets[oldest]

    def record(
        self,
        endpoint: str,
        status: int,
        latency_ms: float,
        trace_id: str | None = None,
    ) -> None:
        """Fold one served request into the current bucket.

        ``trace_id`` (when the request carried a trace context) feeds
        the per-endpoint exemplar: the slowest traced request in the
        window is exposed next to the p99 quantile.
        """
        index = int(self._clock() / self.bucket_s)
        self._prune(index)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = {}
        entry = bucket.get(endpoint)
        if entry is None:
            entry = bucket[endpoint] = _WindowEntry()
        entry.count += 1
        if status >= 500:
            entry.errors += 1
        entry.latency_sum_ms += latency_ms
        entry.sketch.add(latency_ms)
        if trace_id is not None and latency_ms >= entry.slow_ms:
            entry.slow_ms = latency_ms
            entry.slow_trace_id = trace_id

    def summary(self) -> dict[str, dict[str, Any]]:
        """Per-endpoint SLIs over the live window, endpoints sorted."""
        index = int(self._clock() / self.bucket_s)
        self._prune(index)
        merged: dict[str, _WindowEntry] = {}
        for bucket in self._buckets.values():
            for endpoint, entry in bucket.items():
                into = merged.get(endpoint)
                if into is None:
                    into = merged[endpoint] = _WindowEntry()
                into.count += entry.count
                into.errors += entry.errors
                into.latency_sum_ms += entry.latency_sum_ms
                into.sketch.merge(entry.sketch)
                if (
                    entry.slow_trace_id is not None
                    and entry.slow_ms >= into.slow_ms
                ):
                    into.slow_ms = entry.slow_ms
                    into.slow_trace_id = entry.slow_trace_id
        out: dict[str, dict[str, Any]] = {}
        for endpoint, entry in sorted(merged.items()):
            view: dict[str, Any] = {
                "count": entry.count,
                "errors": entry.errors,
                "latency_sum_ms": entry.latency_sum_ms,
                "quantiles_ms": {
                    label: entry.sketch.quantile(q)
                    for label, q in SLI_QUANTILES
                },
            }
            if entry.slow_trace_id is not None:
                view["exemplar"] = {
                    "trace_id": entry.slow_trace_id,
                    "latency_ms": entry.slow_ms,
                }
            out[endpoint] = view
        return out


# -- Prometheus text exposition ------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")

#: One exposition sample line: ``name{labels} value`` with an optional
#: OpenMetrics-style exemplar suffix (`` # {labels} value``).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)"
    r"(?: # \{(?P<exemplar_labels>[^}]*)\} (?P<exemplar_value>[^ ]+))?$"
)


def _metric_name(raw: str, suffix: str = "") -> str:
    return "repro_" + _NAME_SANITIZE.sub("_", raw.replace(".", "_")) + suffix


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Parse a registry key (``name{k=v,...}``) into name + labels."""
    match = _KEY_RE.match(key)
    if match is None:  # pragma: no cover - registry keys always match
        return key, {}
    labels: dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for item in raw.split(","):
            name, _, value = item.partition("=")
            labels[name] = value
    return match.group("name"), labels


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: dict[str, Any],
    window_summary: dict[str, dict[str, Any]] | None = None,
    gauges: dict[str, float] | None = None,
) -> str:
    """Render ``GET /metrics`` (Prometheus text exposition 0.0.4).

    ``snapshot`` is a :meth:`MetricsRegistry.snapshot`; its counters
    become ``repro_<name>_total`` counter families and its histograms
    become ``_count``/``_sum``/``_min``/``_max`` gauge families.
    ``window_summary`` (from :meth:`RollingWindow.summary`) becomes the
    ``repro_sli_*`` families — per-endpoint rolling-window request and
    error counts plus p50/p95/p99 latency quantiles.  ``gauges`` are
    point-in-time values (queue depth, readiness, cache occupancy).
    """
    lines: list[str] = []

    families: dict[str, list[tuple[dict[str, str], float]]] = {}
    for key, value in snapshot.get("counters", {}).items():
        raw, labels = _split_key(key)
        families.setdefault(_metric_name(raw, "_total"), []).append(
            (labels, value)
        )
    for name in sorted(families):
        lines.append(f"# TYPE {name} counter")
        for labels, value in families[name]:
            lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")

    hist_families: dict[str, list[tuple[dict[str, str], dict[str, float]]]] = {}
    for key, entry in snapshot.get("histograms", {}).items():
        raw, labels = _split_key(key)
        hist_families.setdefault(_metric_name(raw), []).append((labels, entry))
    for name in sorted(hist_families):
        for suffix in ("count", "sum", "min", "max"):
            lines.append(f"# TYPE {name}_{suffix} gauge")
            for labels, entry in hist_families[name]:
                lines.append(
                    f"{name}_{suffix}{_format_labels(labels)} "
                    f"{_format_value(entry[suffix])}"
                )

    for name, value in sorted((gauges or {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    if window_summary:
        lines.append("# TYPE repro_sli_requests_window gauge")
        for endpoint, entry in window_summary.items():
            lines.append(
                "repro_sli_requests_window"
                f'{_format_labels({"endpoint": endpoint})} '
                f"{_format_value(entry['count'])}"
            )
        lines.append("# TYPE repro_sli_errors_window gauge")
        for endpoint, entry in window_summary.items():
            lines.append(
                "repro_sli_errors_window"
                f'{_format_labels({"endpoint": endpoint})} '
                f"{_format_value(entry['errors'])}"
            )
        lines.append("# TYPE repro_sli_request_latency_ms summary")
        for endpoint, entry in window_summary.items():
            exemplar = entry.get("exemplar")
            for label, _ in SLI_QUANTILES:
                value = entry["quantiles_ms"][label]
                sample = (
                    "repro_sli_request_latency_ms"
                    f'{_format_labels({"endpoint": endpoint, "quantile": label})} '
                    f"{_format_value(round(value, 6))}"
                )
                if label == "0.99" and exemplar is not None:
                    # OpenMetrics-style exemplar: the slowest traced
                    # request in the window, linking the quantile to a
                    # renderable trace (`/v1/debug/trace?trace_id=...`).
                    sample += (
                        f' # {{trace_id="{exemplar["trace_id"]}"}} '
                        f"{_format_value(round(exemplar['latency_ms'], 6))}"
                    )
                lines.append(sample)
            lines.append(
                "repro_sli_request_latency_ms_count"
                f'{_format_labels({"endpoint": endpoint})} '
                f"{_format_value(entry['count'])}"
            )
            lines.append(
                "repro_sli_request_latency_ms_sum"
                f'{_format_labels({"endpoint": endpoint})} '
                f"{_format_value(round(entry['latency_sum_ms'], 6))}"
            )

    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Structurally parse exposition text back into samples.

    Returns ``{metric_name: [(labels, value), ...]}`` and raises
    ``ValueError`` on any line that is neither a comment nor a valid
    sample — the shared validity check for tests and the CI smoke.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for item in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', raw):
                labels[item[0]] = (
                    item[1]
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
        try:
            value = float(match.group("value"))
        except ValueError as error:
            raise ValueError(
                f"line {lineno}: bad sample value: {line!r}"
            ) from error
        if match.group("exemplar_value") is not None:
            try:
                float(match.group("exemplar_value"))
            except ValueError as error:
                raise ValueError(
                    f"line {lineno}: bad exemplar value: {line!r}"
                ) from error
        samples.setdefault(match.group("name"), []).append((labels, value))
    if not text.endswith("\n"):
        raise ValueError("exposition text must end with a newline")
    return samples
