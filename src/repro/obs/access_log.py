"""Structured JSONL access logs for the serving layer.

One JSON object per line, one line per served request — including the
observability endpoints themselves — with the request id, routing,
status, latency, and the batch/coalesce/cache outcome the handler
annotated via :func:`repro.obs.live.annotate`.  Lines are rendered with
:func:`repro.util.jsonout.dump_json_line` (sorted keys, stable floats) and
flushed per line, so a SIGTERM'd server leaves a complete log and a
tail-follower sees requests as they finish.

``python -m repro.obs.validate --access-log FILE`` validates every line
against :data:`ACCESS_LOG_SCHEMA`
(:func:`repro.obs.schemas.validate_access_log_record`); the CI smoke
also cross-checks that the ``request_id`` of every span in the
``/v1/debug/trace`` export appears in the access log for the same run.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, IO

from repro.util.jsonout import dump_json_line

#: Schema tag carried by every access-log line.  ``/2`` added the
#: optional ``trace_id``/``span_id`` fields (the request's distributed
#: trace identity, when one was active), so a slow access-log line joins
#: directly to its span tree — and a span's ``trace_id`` greps straight
#: back to the log.  The validator still accepts ``/1`` records.
ACCESS_LOG_SCHEMA = "repro.obs.access_log/2"


def access_record(
    *,
    request_id: str,
    method: str,
    path: str,
    endpoint: str,
    status: int,
    latency_ms: float,
    error_code: str | None = None,
    **annotations: Any,
) -> dict[str, Any]:
    """Assemble one schema-tagged access-log record.

    ``annotations`` carries the optional outcome fields the handler
    accumulated (``cache`` hit/miss, ``batched``, ``deadline_ms`` /
    ``deadline_left_ms``); ``None``-valued annotations are dropped so
    absent outcomes stay absent rather than null.
    """
    record: dict[str, Any] = {
        "schema": ACCESS_LOG_SCHEMA,
        "ts": round(time.time(), 6),
        "request_id": request_id,
        "method": method,
        "path": path,
        "endpoint": endpoint,
        "status": status,
        "latency_ms": round(latency_ms, 3),
    }
    if error_code is not None:
        record["error_code"] = error_code
    for key, value in annotations.items():
        if value is not None:
            record[key] = value
    return record


class AccessLog:
    """Append-only JSONL writer with per-line flush."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("a", encoding="utf-8")
        self.lines_written = 0

    def log(self, record: dict[str, Any]) -> None:
        """Write one record (silently dropped after :meth:`close`)."""
        handle = self._handle
        if handle is None:
            return
        handle.write(dump_json_line(record) + "\n")
        handle.flush()
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_access_log(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL access log back into records (tests, the smoke)."""
    import json

    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records
