"""Run manifests: provenance for every ``--out`` experiment run.

A manifest (``<experiment_id>.meta.json``) records everything needed to
interpret — and re-produce — a result file sitting in ``results/``: the
experiment and configuration, the seeds and instruction counts behind
the synthetic traces, the code version (git SHA) and library versions,
which engine path produced the numbers (two-phase replay vs.
step-simulator oracle vs. purely analytic), the per-run Eq. (2) cycle
breakdown, wall time, and the full metrics snapshot.

Manifests are deterministic *modulo* a small, well-known set of
volatile fields (:data:`VOLATILE_KEYS`): timestamps, wall times, and
host/code provenance.  :func:`stable_view` strips those, and the test
suite pins that two runs of the same experiment agree byte-for-byte on
the rest.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.util.jsonout import write_json

#: Schema tag written into every manifest.
MANIFEST_SCHEMA = "repro.obs.manifest/1"

#: Top-level keys that legitimately change between identical runs.
#: Everything else is covered by the determinism guarantee.
VOLATILE_KEYS = ("provenance", "wall_time_s")

#: Diagnostic-only counters that may legitimately differ between
#: otherwise identical runs (e.g. a corrupt events-store entry on one
#: machine triggers a silent re-extract, and phase-1 engine dispatches
#: only fire on store misses — cold runs count them, warm runs never
#: reach the dispatcher).  :func:`stable_view` strips them — matched on
#: the counter's base name, before any ``{label=...}`` suffix — so the
#: cold/warm snapshot-identity contract is judged on the deterministic
#: remainder.
DIAGNOSTIC_COUNTERS = frozenset(
    {
        "events_store.corrupt_reextract",
        "reuse_store.corrupt_reextract",
        "result_store.corrupt_recompute",
        "engine.phase1.dispatches",
    }
)


def _counter_base(key: str) -> str:
    """Counter name with any ``{label=...}`` suffix removed."""
    return key.split("{", 1)[0]


def git_revision() -> str | None:
    """Best-effort git SHA of the working tree; ``None`` off-repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _numpy_version() -> str | None:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return None
    return numpy.__version__


def _engine_path(counters: dict[str, Any]) -> str:
    """Classify which engine produced the run's numbers."""
    replay = counters.get("engine.replay.calls", 0)
    step = counters.get("engine.step.calls", 0)
    if replay and step:
        return "mixed"
    if replay:
        return "replay"
    if step:
        return "step"
    return "analytic"


def build_manifest(
    *,
    experiment_id: str,
    title: str,
    quick: bool,
    jobs: int,
    seed: int,
    n_instructions: int,
    wall_time_s: float,
    outputs: list[str],
    metrics_snapshot: dict[str, Any] | None,
) -> dict[str, Any]:
    """Assemble the manifest document for one experiment run.

    ``metrics_snapshot`` is the per-experiment
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; the Eq. (2)
    breakdown and engine classification are lifted out of it into
    first-class fields (all zero / ``"analytic"`` for experiments that
    never run the simulator).
    """
    counters = (metrics_snapshot or {}).get("counters", {})
    eq2 = {
        "execute_cycles": counters.get("eq2.execute_cycles", 0),
        "read_stall_cycles": counters.get("eq2.read_stall_cycles", 0),
        "flush_stall_cycles": counters.get("eq2.flush_stall_cycles", 0),
        "write_buffer_stall_cycles": counters.get(
            "eq2.write_buffer_stall_cycles", 0
        ),
        "total_cycles": counters.get("eq2.total_cycles", 0),
    }
    return {
        "schema": MANIFEST_SCHEMA,
        "experiment": experiment_id,
        "title": title,
        "config": {"quick": quick, "jobs": jobs},
        "seeds": {"spec92": seed},
        "instructions_per_trace": n_instructions,
        "engine": {
            "path": _engine_path(counters),
            "replay_calls": counters.get("engine.replay.calls", 0),
            "step_calls": counters.get("engine.step.calls", 0),
        },
        "eq2": eq2,
        "outputs": sorted(outputs),
        "metrics": metrics_snapshot or {"counters": {}, "histograms": {}},
        "wall_time_s": wall_time_s,
        "provenance": {
            "git_sha": git_revision(),
            "created_at": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "python": sys.version.split()[0],
            "numpy": _numpy_version(),
            "platform": platform.platform(),
        },
    }


def stable_view(manifest: dict[str, Any]) -> dict[str, Any]:
    """The manifest minus its volatile fields (the deterministic part).

    Strips :data:`VOLATILE_KEYS` at the top level and the
    :data:`DIAGNOSTIC_COUNTERS` from the metrics snapshot, without
    mutating the input.
    """
    view = {k: v for k, v in manifest.items() if k not in VOLATILE_KEYS}
    metrics = view.get("metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("counters"), dict):
        counters = metrics["counters"]
        if any(_counter_base(key) in DIAGNOSTIC_COUNTERS for key in counters):
            view["metrics"] = {
                **metrics,
                "counters": {
                    k: v
                    for k, v in counters.items()
                    if _counter_base(k) not in DIAGNOSTIC_COUNTERS
                },
            }
    return view


def write_manifest(
    directory: str | Path, experiment_id: str, manifest: dict[str, Any]
) -> Path:
    """Write ``<directory>/<experiment_id>.meta.json``; returns the path."""
    return write_json(Path(directory) / f"{experiment_id}.meta.json", manifest)
