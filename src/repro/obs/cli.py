"""Observability consumers: ``python -m repro obs <command>``.

Commands
--------
timeline
    Assemble one Perfetto-loadable fleet timeline from the span spools a
    serving run left behind (``--span-spool-dir``): every process's
    spool becomes its own process track, aligned on the wall clock each
    spool record carries (``wall_end``), with ``--campaign`` narrowing
    the document to one campaign's spans *and* the cross-process trees
    its forwarded points produced.
validate
    Alias for :mod:`repro.obs.validate` (``obs validate --spans DIR``).

The timeline is the *offline* half of the fleet's tracing story: the
router's live ``GET /v1/debug/trace`` merges ring tails while the fleet
is up, the spools survive it — a drained or crashed fleet still yields a
complete timeline from disk.  Wall-clock alignment is coarser than the
router's monotonic handshake (NTP-grade rather than RTT-grade), which
is the honest trade for working post mortem.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.obs import logs
from repro.util.jsonout import dump_json

logger = logging.getLogger(__name__)


def _spool_sources(root: str) -> list[tuple[str, str]]:
    """(track name, directory) per spool under ``root``.

    A fleet run leaves one subdirectory per process (``router``,
    ``w0``..); a single-process run spools into ``root`` itself.  The
    router's track leads, workers follow in name order, matching the
    live collector's pid assignment.
    """
    from repro.obs.span_spool import spool_files

    root_path = Path(root)
    if not root_path.is_dir():
        raise OSError(f"span-spool root {root!r} is not a directory")
    if spool_files(root):
        return [(root_path.name or "spool", str(root_path))]
    named = {
        entry.name: str(entry)
        for entry in root_path.iterdir()
        if entry.is_dir() and spool_files(str(entry))
    }
    ordered = [name for name in ("router",) if name in named]
    ordered += sorted(name for name in named if name != "router")
    return [(name, named[name]) for name in ordered]


def _campaign_prefix(campaign_dir: str) -> str:
    """The 12-char campaign tag spans carry, from a registry directory."""
    from repro.campaign import spec as spec_mod

    spec_path = os.path.join(campaign_dir, "spec.json")
    with open(spec_path) as handle:
        spec = json.load(handle)
    return spec_mod.campaign_id(spec)[:12]


def assemble_timeline(
    spool_root: str, campaign_dir: str | None = None
) -> dict[str, Any]:
    """One merged Chrome-trace document from on-disk span spools.

    Each spool record is a finished ``"X"`` event stamped with the wall
    clock at span end (``wall_end``); the span's wall start is therefore
    ``wall_end - dur`` and the whole fleet aligns on the earliest start,
    giving a single timeline with ts 0 at the first recorded span.  With
    ``campaign_dir``, spans tagged with that campaign select the
    document — plus every span sharing a ``trace_id`` with one of them,
    so a forwarded point's worker-side tree rides along.
    """
    from repro.obs.span_spool import read_spool

    sources = _spool_sources(spool_root)
    if not sources:
        raise OSError(f"no span spools under {spool_root!r}")
    per_source: list[tuple[str, list[dict[str, Any]]]] = [
        (name, list(read_spool(directory))) for name, directory in sources
    ]

    if campaign_dir is not None:
        tag = _campaign_prefix(campaign_dir)
        campaign_traces = {
            record["args"]["trace_id"]
            for _, records in per_source
            for record in records
            if record.get("args", {}).get("campaign") == tag
            and record.get("args", {}).get("trace_id")
        }
        per_source = [
            (
                name,
                [
                    record
                    for record in records
                    if record.get("args", {}).get("campaign") == tag
                    or record.get("args", {}).get("trace_id")
                    in campaign_traces
                ],
            )
            for name, records in per_source
        ]

    base = min(
        (
            record["wall_end"] - record["dur"] / 1_000_000.0
            for _, records in per_source
            for record in records
        ),
        default=0.0,
    )
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []
    counts: dict[str, int] = {}
    for pid, (name, records) in enumerate(per_source):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        counts[name] = len(records)
        for record in records:
            event = {
                key: value
                for key, value in record.items()
                if key not in ("schema", "seq", "wall_end")
            }
            start_wall = record["wall_end"] - record["dur"] / 1_000_000.0
            event["ts"] = round((start_wall - base) * 1_000_000.0, 3)
            event["pid"] = pid
            events.append(event)
    events.sort(key=lambda event: event["ts"])
    document: dict[str, Any] = {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.cli",
            "alignment": "wall_clock",
        },
        "sources": counts,
    }
    if campaign_dir is not None:
        document["otherData"]["campaign"] = tag
    return document


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Observability consumers (offline timeline assembly).",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0)
    commands = parser.add_subparsers(dest="command", required=True)
    timeline = commands.add_parser(
        "timeline",
        help="merge span spools into one Perfetto timeline",
    )
    timeline.add_argument(
        "--spool",
        required=True,
        metavar="DIR",
        help="span-spool root (a fleet's --span-spool-dir, or one "
        "process's spool directory)",
    )
    timeline.add_argument(
        "--campaign",
        metavar="DIR",
        default=None,
        help="narrow to one campaign's spans (and the cross-process "
        "trees of its forwarded points); DIR is the campaign's registry "
        "subdirectory (the one holding spec.json)",
    )
    timeline.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the merged document here (default: stdout)",
    )
    return parser.parse_args(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit status."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "validate":
        # Wholesale delegation, like `repro campaign` and friends.
        from repro.obs.validate import main as validate_main

        return validate_main(argv[1:])
    args = _parse_args(argv)
    logs.configure(verbosity=args.verbose)
    try:
        document = assemble_timeline(args.spool, args.campaign)
    except (OSError, ValueError, KeyError) as error:
        logger.error("timeline failed: %s", error)
        return 1
    rendered = dump_json(document)
    n_spans = sum(document["sources"].values())
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(
            f"wrote {n_spans} spans across {len(document['sources'])} "
            f"process tracks to {args.out}"
        )
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
