"""CLI: append bench scoreboards to a history log and gate regressions.

The committed ``BENCH_engine.json`` / ``BENCH_service.json`` scoreboards
pin the current performance envelope, but nothing watched their
*trajectory*: a slow drift (or a one-commit cliff) in a headline metric
shipped silently as long as the schema still validated.  This gate
closes that hole:

``python -m repro.obs.bench_history``
    validates both scoreboards, extracts the pinned
    :data:`HEADLINE_METRICS`, compares each against the median of its
    recent history (up to the last :data:`BASELINE_DEPTH` entries of
    ``results/bench_history.jsonl``), and **exits 2** when any
    lower-is-better metric regresses by more than
    :data:`REGRESSION_THRESHOLD` (or a higher-is-better metric drops by
    the same fraction).  On a pass, the run is appended to the history
    (a failing run is *not* appended, so one regression cannot poison
    the baseline it will be re-judged against after a fix).

``--check``
    read-only mode for CI: gate against the committed history without
    appending.  An empty or missing history passes trivially — the
    first appended entry seeds the baseline.

The median-of-recent-history baseline keeps the gate robust to one
noisy entry while still tracking genuine improvements: after a real
speedup is committed a few times, the baseline follows it down and the
old, slower numbers age out of the window.
"""

from __future__ import annotations

import argparse
import json
import logging
import statistics
import sys
from collections.abc import Sequence
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.obs import logs, manifest
from repro.obs.schemas import (
    BENCH_HISTORY_SCHEMA,
    SchemaError,
    validate_bench_engine,
    validate_bench_history_entry,
    validate_bench_service,
)
from repro.util.jsonout import dump_json_line

logger = logging.getLogger(__name__)

#: A candidate metric must stay within this fraction of its baseline
#: (lower-is-better: at most ``baseline * (1 + threshold)``;
#: higher-is-better: at least ``baseline * (1 - threshold)``).
REGRESSION_THRESHOLD = 0.25

#: How many of the most recent history entries feed the median baseline.
BASELINE_DEPTH = 10

#: Phase-level deltas printed per source in an exit-2 attribution.
ATTRIBUTION_TOP = 5


@dataclass(frozen=True)
class HeadlineMetric:
    """One gated scoreboard metric."""

    name: str
    source: str  # "engine" | "service"
    path: tuple[str, ...]
    direction: str  # "lower" | "higher"


#: The pinned metrics the gate watches.  Names are stable history keys;
#: paths index into the matching scoreboard document.
HEADLINE_METRICS: tuple[HeadlineMetric, ...] = (
    HeadlineMetric(
        "engine.phase1_extract_60k_s",
        "engine",
        ("benchmarks", "phase1_extract_60k_s"),
        "lower",
    ),
    HeadlineMetric(
        "engine.phase1_reuse_s",
        "engine",
        ("benchmarks", "phase1_reuse_s"),
        "lower",
    ),
    HeadlineMetric(
        "engine.phase2_replay_point_s",
        "engine",
        ("benchmarks", "phase2_replay_point_s"),
        "lower",
    ),
    HeadlineMetric(
        "engine.figure1_quick_s",
        "engine",
        ("benchmarks", "figure1_quick_s"),
        "lower",
    ),
    HeadlineMetric(
        "engine.all_quick_s", "engine", ("benchmarks", "all_quick_s"), "lower"
    ),
    HeadlineMetric(
        "service.warm_cache.p50_ms",
        "service",
        ("warm_cache", "p50_ms"),
        "lower",
    ),
    HeadlineMetric(
        "service.levels.16.latency_p50_ms",
        "service",
        ("levels", "16", "latency_ms", "p50"),
        "lower",
    ),
    HeadlineMetric(
        "service.levels.16.throughput_rps",
        "service",
        ("levels", "16", "throughput_rps"),
        "higher",
    ),
    HeadlineMetric(
        "service.capacity.single.max_sustained_rps",
        "service",
        ("capacity", "single", "max_sustained_rps"),
        "higher",
    ),
    HeadlineMetric(
        "service.capacity.fleet.max_sustained_rps",
        "service",
        ("capacity", "fleet", "max_sustained_rps"),
        "higher",
    ),
)

_DIRECTIONS = {metric.name: metric.direction for metric in HEADLINE_METRICS}


@dataclass(frozen=True)
class Regression:
    """One gate failure: a metric outside its tolerated envelope."""

    name: str
    current: float
    baseline: float
    direction: str

    @property
    def ratio(self) -> float:
        """current / baseline (the number the threshold judges)."""
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        arrow = "above" if self.direction == "lower" else "below"
        return (
            f"{self.name}: {self.current:g} is {self.ratio:.2f}x the "
            f"baseline {self.baseline:g} ({arrow} the "
            f"{REGRESSION_THRESHOLD:.0%} tolerance)"
        )


def _lookup(document: dict[str, Any], path: tuple[str, ...]) -> Any:
    node: Any = document
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def collect_metrics(
    engine: dict[str, Any] | None, service: dict[str, Any] | None
) -> dict[str, float]:
    """Extract the headline metrics present in the given scoreboards."""
    documents = {"engine": engine, "service": service}
    metrics: dict[str, float] = {}
    for headline in HEADLINE_METRICS:
        document = documents[headline.source]
        if document is None:
            continue
        value = _lookup(document, headline.path)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            logger.warning(
                "%s: missing from %s scoreboard, not gated",
                headline.name,
                headline.source,
            )
            continue
        metrics[headline.name] = float(value)
    return metrics


def collect_phases(
    engine: dict[str, Any] | None, service: dict[str, Any] | None
) -> dict[str, float]:
    """Flatten both scoreboards' ``phase_breakdown`` tables.

    Returns ``{"<source>.<phase>": self_seconds}`` — the view history
    entries store (under ``phases``) and regression attribution diffs.
    """
    phases: dict[str, float] = {}
    for source, document in (("engine", engine), ("service", service)):
        if not isinstance(document, dict):
            continue
        breakdown = document.get("phase_breakdown")
        if not isinstance(breakdown, dict):
            continue
        table = breakdown.get("phases")
        if not isinstance(table, dict):
            continue
        for name, entry in table.items():
            value = entry.get("self_s") if isinstance(entry, dict) else None
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                phases[f"{source}.{name}"] = float(value)
    return phases


def phase_deltas(
    phases: dict[str, float],
    history: Sequence[dict[str, Any]],
    source: str,
    depth: int = BASELINE_DEPTH,
) -> list[tuple[float, str, float, float]]:
    """Per-phase self-time deltas vs history baselines, for one source.

    Returns ``(delta_s, phase, current_s, baseline_s)`` tuples sorted
    biggest increase first — the "where did the time go" answer for a
    regressed ``source`` (``engine`` or ``service``).  The baseline is
    the median over the recent entries that recorded the phase; a phase
    with no history (or absent from the current run) diffs against 0.
    """
    prefix = source + "."
    keys = {key for key in phases if key.startswith(prefix)}
    for entry in history:
        keys.update(
            key
            for key in (entry.get("phases") or {})
            if key.startswith(prefix)
        )
    deltas: list[tuple[float, str, float, float]] = []
    for key in keys:
        values = [
            entry["phases"][key]
            for entry in history
            if key in (entry.get("phases") or {})
        ][-depth:]
        baseline = float(statistics.median(values)) if values else 0.0
        current = phases.get(key, 0.0)
        deltas.append((current - baseline, key, current, baseline))
    deltas.sort(key=lambda item: (-item[0], item[1]))
    return deltas


def load_history(path: Path) -> list[dict[str, Any]]:
    """Parse + validate the history JSONL (missing file: empty history)."""
    if not path.exists():
        return []
    entries: list[dict[str, Any]] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            validate_bench_history_entry(entry)
        except (json.JSONDecodeError, SchemaError) as error:
            raise SchemaError(f"{path}: line {lineno}: {error}") from None
        entries.append(entry)
    return entries


def baseline_of(
    history: Sequence[dict[str, Any]], name: str, depth: int = BASELINE_DEPTH
) -> float | None:
    """Median of the metric over the most recent ``depth`` entries."""
    values = [
        entry["metrics"][name]
        for entry in history
        if name in entry["metrics"]
    ][-depth:]
    if not values:
        return None
    return float(statistics.median(values))


def gate(
    metrics: dict[str, float],
    history: Sequence[dict[str, Any]],
    threshold: float = REGRESSION_THRESHOLD,
    depth: int = BASELINE_DEPTH,
) -> list[Regression]:
    """Compare candidate metrics against their history baselines."""
    regressions: list[Regression] = []
    for name, current in sorted(metrics.items()):
        baseline = baseline_of(history, name, depth)
        direction = _DIRECTIONS[name]
        if baseline is None or baseline == 0:
            logger.info("%s: no baseline yet (%g recorded)", name, current)
            continue
        ratio = current / baseline
        if direction == "lower":
            bad = ratio > 1.0 + threshold
        else:
            bad = ratio < 1.0 - threshold
        marker = "REGRESSION" if bad else "ok"
        logger.info(
            "%s: %g vs baseline %g (%.2fx, %s-is-better): %s",
            name,
            current,
            baseline,
            ratio,
            direction,
            marker,
        )
        if bad:
            regressions.append(Regression(name, current, baseline, direction))
    return regressions


def make_entry(
    metrics: dict[str, float],
    sources: dict[str, str],
    phases: dict[str, float] | None = None,
) -> dict[str, Any]:
    """Assemble one schema-tagged history entry for the current run."""
    entry: dict[str, Any] = {
        "schema": BENCH_HISTORY_SCHEMA,
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": manifest.git_revision(),
        "sources": sources,
        "metrics": metrics,
    }
    if phases:
        entry["phases"] = phases
    return entry


def append_entry(path: Path, entry: dict[str, Any]) -> None:
    """Append one entry to the history JSONL."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(dump_json_line(entry) + "\n")


def _load_scoreboard(
    path: Path, validator: Any, required: bool
) -> dict[str, Any] | None:
    if not path.exists():
        if required:
            raise SchemaError(f"{path}: scoreboard not found")
        logger.warning("%s: not found, its metrics are not gated", path)
        return None
    with path.open() as handle:
        document = json.load(handle)
    try:
        validator(document)
    except SchemaError as error:
        raise SchemaError(f"{path}: {error}") from None
    return document


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-bench-history",
        description="Gate committed bench scoreboards against their "
        "recorded history; exit 2 on a headline-metric regression.",
    )
    parser.add_argument(
        "--engine", default="BENCH_engine.json", metavar="FILE"
    )
    parser.add_argument(
        "--service", default="BENCH_service.json", metavar="FILE"
    )
    parser.add_argument(
        "--history",
        default="results/bench_history.jsonl",
        metavar="FILE",
        help="JSONL history log (appended on a passing non-check run)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="read-only: gate without appending (the CI mode)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=REGRESSION_THRESHOLD,
        help="tolerated fractional regression (default %(default)s)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=BASELINE_DEPTH,
        help="history entries feeding the median baseline "
        "(default %(default)s)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0)
    return parser.parse_args(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; 0 = pass, 1 = bad input, 2 = regression."""
    args = _parse_args(argv)
    logs.configure(verbosity=args.verbose + 1)
    try:
        engine = _load_scoreboard(
            Path(args.engine), validate_bench_engine, required=True
        )
        service = _load_scoreboard(
            Path(args.service), validate_bench_service, required=False
        )
        history = load_history(Path(args.history))
    except (OSError, json.JSONDecodeError, SchemaError) as error:
        logger.error("%s", error)
        return 1

    metrics = collect_metrics(engine, service)
    if not metrics:
        logger.error("no headline metrics found in the given scoreboards")
        return 1

    regressions = gate(
        metrics, history, threshold=args.threshold, depth=args.depth
    )
    phases = collect_phases(engine, service)
    if regressions:
        for regression in regressions:
            logger.error("%s", regression.describe())
        print(
            f"FAIL: {len(regressions)} headline metric(s) regressed beyond "
            f"{args.threshold:.0%} of the history baseline"
        )
        # Name the guilty phase: diff the regressed source's
        # phase_breakdown against its history baseline, biggest
        # self-time increase first.
        for source in sorted({r.name.split(".", 1)[0] for r in regressions}):
            deltas = phase_deltas(phases, history, source, depth=args.depth)[
                :ATTRIBUTION_TOP
            ]
            if not deltas:
                print(
                    f"attribution ({source}): no phase_breakdown recorded "
                    "yet — re-run the bench to collect one"
                )
                continue
            print(
                f"attribution ({source} phase self-time vs history baseline):"
            )
            for delta, key, current, baseline in deltas:
                print(
                    f"  {key:40s} {current:8.3f}s vs {baseline:8.3f}s "
                    f"({delta:+.3f}s)"
                )
        return 2

    if not args.check:
        entry = make_entry(
            metrics,
            {"engine": args.engine, "service": args.service},
            phases=phases,
        )
        append_entry(Path(args.history), entry)
        print(
            f"PASS: recorded {len(metrics)} headline metric(s) as history "
            f"entry #{len(history) + 1} in {args.history}"
        )
    else:
        print(
            f"PASS: {len(metrics)} headline metric(s) within "
            f"{args.threshold:.0%} of the history baseline "
            f"({len(history)} entries)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
