"""Worst/best-case envelopes for the feature tradeoffs.

Designers rarely know ``beta_m`` or ``alpha`` exactly — the memory part
is chosen late and the copy-back ratio is workload-dependent.  Each
feature's miss-volume ratio ``r`` is monotone in both parameters
(directions proved below and property-tested against grid sampling), so
its exact range over a ``(beta_m, alpha)`` rectangle is attained at two
corners; :func:`feature_bounds` evaluates them.

Monotonicity directions (write-allocate, full-stalling baseline):

* **doubling bus** — ``r`` *decreases* in ``beta_m`` (the −1 per-miss
  issue-cycle credit matters less as misses get costlier) and
  *decreases* in ``alpha`` for ``L > 2D`` (flush cycles halve rather
  than scale with ``φ``); at ``L = 2D`` it is alpha-independent... not
  quite: both fill and flush halve, so ``r`` is alpha-independent only
  in the asymptote.  The corner evaluation needs no case analysis —
  both directions are verified numerically at construction.
* **write buffers** — ``r`` increases in ``alpha`` (more to hide) and
  decreases in ``beta_m`` toward the ``1 + alpha`` asymptote.
* **pipelined memory** — ``r`` increases in ``beta_m`` (Figures 3-5)
  and is alpha-independent (cancels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig
from repro.core.tradeoff import hit_ratio_traded


@dataclass(frozen=True)
class TradeoffBounds:
    """Exact range of r (and traded hit ratio) over a parameter box."""

    feature: ArchFeature
    r_min: float
    r_max: float
    base_hit_ratio: float

    @property
    def traded_min(self) -> float:
        """Least hit ratio the feature is worth anywhere in the box."""
        return hit_ratio_traded(self.r_min, self.base_hit_ratio)

    @property
    def traded_max(self) -> float:
        """Most hit ratio the feature is worth anywhere in the box."""
        return hit_ratio_traded(self.r_max, self.base_hit_ratio)

    def contains(self, r: float) -> bool:
        """Whether an observed r lies inside the envelope."""
        return self.r_min - 1e-12 <= r <= self.r_max + 1e-12


def _corner_values(
    feature: ArchFeature,
    config: SystemConfig,
    beta_range: tuple[float, float],
    alpha_range: tuple[float, float],
    measured_stall_factor: float | None,
) -> list[float]:
    values = []
    for beta in beta_range:
        for alpha in alpha_range:
            values.append(
                feature_miss_ratio(
                    feature,
                    config.with_memory_cycle(beta),
                    flush_ratio=alpha,
                    measured_stall_factor=measured_stall_factor,
                )
            )
    return values


def feature_bounds(
    feature: ArchFeature,
    config: SystemConfig,
    base_hit_ratio: float,
    beta_range: tuple[float, float],
    alpha_range: tuple[float, float] = (0.0, 1.0),
    measured_stall_factor: float | None = None,
    monotonicity_probes: int = 5,
) -> TradeoffBounds:
    """Exact r-range of ``feature`` over a ``(beta_m, alpha)`` box.

    Corner evaluation is exact only under coordinate-wise monotonicity,
    which holds for every supported feature; a cheap probe grid guards
    the assumption and raises if an interior value escapes the corner
    range (which would indicate a model change broke monotonicity).
    """
    beta_low, beta_high = beta_range
    alpha_low, alpha_high = alpha_range
    if beta_low > beta_high or alpha_low > alpha_high:
        raise ValueError("ranges must be (low, high)")
    corners = _corner_values(
        feature, config, (beta_low, beta_high), (alpha_low, alpha_high),
        measured_stall_factor,
    )
    r_min, r_max = min(corners), max(corners)

    if monotonicity_probes > 1:
        for i in range(monotonicity_probes):
            t = i / (monotonicity_probes - 1)
            beta = beta_low + t * (beta_high - beta_low)
            alpha = alpha_low + t * (alpha_high - alpha_low)
            r = feature_miss_ratio(
                feature,
                config.with_memory_cycle(beta),
                flush_ratio=alpha,
                measured_stall_factor=measured_stall_factor,
            )
            if not (r_min - 1e-9 <= r <= r_max + 1e-9):
                raise AssertionError(
                    f"monotonicity violated for {feature}: r={r} outside "
                    f"corner range [{r_min}, {r_max}] at "
                    f"(beta={beta}, alpha={alpha})"
                )
    return TradeoffBounds(
        feature=feature, r_min=r_min, r_max=r_max, base_hit_ratio=base_hit_ratio
    )


def guaranteed_winner(
    config: SystemConfig,
    base_hit_ratio: float,
    beta_range: tuple[float, float],
    alpha_range: tuple[float, float] = (0.1, 0.9),
) -> ArchFeature | None:
    """The feature that beats every rival across the WHOLE box, if any.

    Feature A is a guaranteed winner when its worst-case r exceeds every
    rival's best-case r.  Returns ``None`` when no feature dominates —
    the box straddles a crossover and the designer must pin the
    parameters down first.
    """
    features = (
        ArchFeature.DOUBLING_BUS,
        ArchFeature.WRITE_BUFFERS,
        ArchFeature.PIPELINED_MEMORY,
    )
    bounds = {
        feature: feature_bounds(
            feature, config, base_hit_ratio, beta_range, alpha_range
        )
        for feature in features
    }
    for feature, own in bounds.items():
        if all(
            own.r_min > other.r_max
            for rival, other in bounds.items()
            if rival is not feature
        ):
            return feature
    return None
