"""Sensitivity analysis of the tradeoff results.

The paper fixes alpha = 0.5 ("the other value of alpha can also be
used"), q = 2 ("the best possible implementation"), and a 95-98 % base
hit ratio.  The ablation benches quantify how much each conclusion
depends on those choices; this module supplies the machinery: central
finite differences of any feature's traded hit ratio with respect to a
named model parameter, plus a one-call summary across all parameters.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig
from repro.core.tradeoff import hit_ratio_traded


@dataclass(frozen=True)
class OperatingPoint:
    """Everything a traded-hit-ratio evaluation depends on."""

    config: SystemConfig
    base_hit_ratio: float
    flush_ratio: float = 0.5
    measured_stall_factor: float | None = None

    def traded(self, feature: ArchFeature) -> float:
        """delta_HR for ``feature`` at this operating point."""
        r = feature_miss_ratio(
            feature,
            self.config,
            flush_ratio=self.flush_ratio,
            measured_stall_factor=self.measured_stall_factor,
        )
        return hit_ratio_traded(r, self.base_hit_ratio)


#: Parameter name -> (getter, setter) over an OperatingPoint.
_PARAMETERS: dict[
    str,
    tuple[
        Callable[[OperatingPoint], float],
        Callable[[OperatingPoint, float], OperatingPoint],
    ],
] = {
    "memory_cycle": (
        lambda p: p.config.memory_cycle,
        lambda p, v: replace(p, config=p.config.with_memory_cycle(v)),
    ),
    "flush_ratio": (
        lambda p: p.flush_ratio,
        lambda p, v: replace(p, flush_ratio=v),
    ),
    "base_hit_ratio": (
        lambda p: p.base_hit_ratio,
        lambda p, v: replace(p, base_hit_ratio=v),
    ),
    "pipeline_turnaround": (
        lambda p: p.config.pipeline_turnaround,
        lambda p, v: replace(
            p, config=replace(p.config, pipeline_turnaround=v)
        ),
    ),
}

PARAMETER_NAMES = tuple(_PARAMETERS)


def sensitivity(
    point: OperatingPoint,
    feature: ArchFeature,
    parameter: str,
    relative_step: float = 0.01,
) -> float:
    """d(delta_HR)/d(parameter) by central finite difference.

    ``relative_step`` scales the probe around the current value; the
    probes stay inside each parameter's validity range (clamped below).
    """
    try:
        getter, setter = _PARAMETERS[parameter]
    except KeyError:
        raise ValueError(
            f"unknown parameter {parameter!r}; choose from {PARAMETER_NAMES}"
        ) from None
    value = getter(point)
    step = max(abs(value) * relative_step, 1e-6)
    low, high = value - step, value + step
    if parameter == "flush_ratio":
        low, high = max(0.0, low), min(1.0, high)
    if parameter == "base_hit_ratio":
        low, high = max(1e-6, low), min(1.0 - 1e-9, high)
    if parameter in ("memory_cycle", "pipeline_turnaround"):
        low = max(1.0, low)
    if high == low:
        raise ValueError(f"degenerate probe for {parameter} at {value}")
    delta_low = setter(point, low).traded(feature)
    delta_high = setter(point, high).traded(feature)
    return (delta_high - delta_low) / (high - low)


def sensitivity_report(
    point: OperatingPoint, feature: ArchFeature
) -> dict[str, float]:
    """All parameter sensitivities for one feature at one point.

    ``pipeline_turnaround`` only moves the pipelined-memory feature; it
    is reported as exactly 0.0 for the others (their r does not contain
    q), keeping the report uniform.
    """
    report = {}
    for name in PARAMETER_NAMES:
        if (
            name == "pipeline_turnaround"
            and feature is not ArchFeature.PIPELINED_MEMORY
        ):
            report[name] = 0.0
            continue
        report[name] = sensitivity(point, feature, name)
    return report
