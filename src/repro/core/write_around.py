"""Tradeoff equivalence for write-around caches (W > 0).

The paper's worked tradeoffs use write-allocate caches (W = 0, Eq. 3
onward); for write-around mode it notes only that ``W = W'`` between the
compared systems.  This module carries the algebra through: with

    X = E + (R/L) * kappa_read + W * (c_W - 1)

where ``kappa_read = (phi + (L/D) alpha) * beta_m - 1`` and ``c_W`` is
the cycles one write-around miss costs (``beta_m`` unbuffered, 1 when a
write buffer absorbs it), equating the execution times of a base and a
feature system at fixed W yields::

    R'/L = ((R/L) * kappa_base + W * (cW_base - cW_feature)) / kappa_feature

and the miss-volume ratio the hit-ratio conversion needs is

    r = Lambda_m' / Lambda_m = (R'/L + W) / (R/L + W).

When both systems charge writes the same (``cW_base == cW_feature``) the
W terms cancel and ``r = (1 - omega) * r_R + omega`` with ``omega``
the write-around share of misses — write traffic *dilutes* every
feature's hit-ratio value, which is itself a finding the write-allocate
analysis cannot show.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SystemConfig
from repro.core.tradeoff import TradeoffResult, miss_cost_factor


@dataclass(frozen=True)
class WriteAroundSystem:
    """Per-system costs for the write-around equivalence.

    ``kappa_read`` is the read-miss cost factor; ``write_cost`` is the
    cycles one write-around miss spends on the bus (``beta_m`` without
    buffers, 1.0 with a fully-hiding read-bypassing write buffer).
    """

    kappa_read: float
    write_cost: float

    def __post_init__(self) -> None:
        if self.kappa_read <= 0:
            raise ValueError("kappa_read must be positive")
        if self.write_cost < 1.0:
            raise ValueError(
                f"write_cost must be >= 1 cycle, got {self.write_cost}"
            )


def write_around_miss_volume_ratio(
    base: WriteAroundSystem,
    feature: WriteAroundSystem,
    write_share: float,
) -> float:
    """``r`` for a write-around workload with miss mix ``write_share``.

    ``write_share`` (omega) is ``W / Lambda_m`` in the base system:
    the fraction of misses that are write-arounds.  Raises when the
    implied feature system would need negative read traffic.
    """
    if not 0.0 <= write_share < 1.0:
        raise ValueError(f"write_share must be in [0, 1), got {write_share}")
    read_share = 1.0 - write_share
    # Normalize Lambda_m = 1: R/L = read_share, W = write_share.
    feature_reads = (
        read_share * base.kappa_read
        + write_share * (base.write_cost - feature.write_cost)
    ) / feature.kappa_read
    if feature_reads < 0:
        raise ValueError(
            "write-cost savings exceed the read-miss budget; the feature "
            "system cannot reach equal performance by shrinking its cache"
        )
    return feature_reads + write_share


def write_around_doubling_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    write_share: float,
    flush_ratio: float = 0.5,
) -> TradeoffResult:
    """Bus-doubling tradeoff for a write-around cache.

    Write-around misses cost ``beta_m`` on either bus width (operands at
    or below D bytes), so their only effect is dilution:
    ``r = (1 - omega) r_R + omega < r_R``.
    """
    doubled = config.doubled_bus()
    base = WriteAroundSystem(
        kappa_read=miss_cost_factor(
            config.bus_cycles_per_line,
            flush_ratio,
            config.bus_cycles_per_line,
            config.memory_cycle,
        ),
        write_cost=config.memory_cycle,
    )
    feature = WriteAroundSystem(
        kappa_read=miss_cost_factor(
            doubled.bus_cycles_per_line,
            flush_ratio,
            doubled.bus_cycles_per_line,
            config.memory_cycle,
        ),
        write_cost=config.memory_cycle,
    )
    r = write_around_miss_volume_ratio(base, feature, write_share)
    return TradeoffResult(miss_ratio_of_misses=r, base_hit_ratio=base_hit_ratio)


def write_around_buffer_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    write_share: float,
    flush_ratio: float = 0.5,
) -> TradeoffResult:
    """Read-bypassing write buffers on a write-around cache.

    Buffers hide both the copy-back traffic (flush term) and the
    write-around misses themselves (each shrinking from ``beta_m``
    cycles to its single issue cycle), so unlike bus doubling the W
    terms do NOT cancel.  Even so, in hit-ratio currency the write share
    still *dilutes* the feature — W misses are fixed and cannot be
    converted into cache-size savings — the W-hiding merely offsets part
    of the dilution (r sits above the dilution-only value but below the
    write-allocate one).
    """
    ld = config.bus_cycles_per_line
    base = WriteAroundSystem(
        kappa_read=miss_cost_factor(ld, flush_ratio, ld, config.memory_cycle),
        write_cost=config.memory_cycle,
    )
    feature = WriteAroundSystem(
        kappa_read=miss_cost_factor(ld, 0.0, ld, config.memory_cycle),
        write_cost=1.0,
    )
    r = write_around_miss_volume_ratio(base, feature, write_share)
    return TradeoffResult(miss_ratio_of_misses=r, base_hit_ratio=base_hit_ratio)
