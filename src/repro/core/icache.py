"""Instruction-cache and unified-cache tradeoffs (paper Sections 3.4, 4.5).

Section 4.5 closes with: "Since the mean memory delay time of an
instruction cache, or a unified cache can also be represented in the
same form as a data cache[,] the tradeoff model can also be applied to
an instruction cache or a unified cache."  This module carries that
statement out:

* instruction caches are full-blocking (Section 3.3: "Instruction caches
  with a full blocking feature can be found in most of the current
  processors") and clean (no flush traffic), so their per-miss cost is
  ``kappa_i = (L/D) * beta_m - 1``;
* a unified cache mixes instruction fetches and data references; its
  per-miss cost is the reference-weighted blend.

The same Eq. (6) conversion then prices any feature against the
instruction or unified hit ratio.
"""

from __future__ import annotations

from repro.core.params import SystemConfig
from repro.core.tradeoff import TradeoffResult, miss_cost_factor


def instruction_miss_cost_factor(config: SystemConfig) -> float:
    """``kappa_i = (L/D) beta_m - 1`` — full-blocking, no copy-backs."""
    return miss_cost_factor(
        stall_factor=config.bus_cycles_per_line,
        flush_ratio=0.0,
        bus_cycles_per_line=config.bus_cycles_per_line,
        memory_cycle=config.memory_cycle,
    )


def instruction_cache_doubling_tradeoff(
    config: SystemConfig, base_hit_ratio: float
) -> TradeoffResult:
    """Bus doubling priced in *instruction*-cache hit ratio.

    Because instruction caches carry no flush traffic, the asymptotic
    ``r`` is exactly 2 and the design-limit ``r`` is
    ``(2*beta_m - 1)/(beta_m - 1)`` — a wider envelope than the data
    cache's alpha=0.5 case.
    """
    doubled = config.doubled_bus()
    kappa_base = instruction_miss_cost_factor(config)
    kappa_doubled = instruction_miss_cost_factor(doubled.with_memory_cycle(config.memory_cycle))
    return TradeoffResult(
        miss_ratio_of_misses=kappa_base / kappa_doubled,
        base_hit_ratio=base_hit_ratio,
    )


def unified_miss_cost_factor(
    config: SystemConfig,
    data_fraction: float,
    flush_ratio: float = 0.5,
    data_stall_factor: float | None = None,
) -> float:
    """Reference-weighted per-miss cost of a unified cache.

    Parameters
    ----------
    data_fraction:
        Fraction of the unified cache's *misses* that are data misses
        (the rest are instruction fetches: clean, full-blocking).
    flush_ratio:
        alpha for the data side (only data lines get dirty).
    data_stall_factor:
        phi for the data side; defaults to full stalling (L/D).
    """
    if not 0.0 <= data_fraction <= 1.0:
        raise ValueError(f"data_fraction must be in [0, 1], got {data_fraction}")
    phi = (
        float(config.bus_cycles_per_line)
        if data_stall_factor is None
        else data_stall_factor
    )
    kappa_data = miss_cost_factor(
        phi, flush_ratio, config.bus_cycles_per_line, config.memory_cycle
    )
    kappa_inst = instruction_miss_cost_factor(config)
    return data_fraction * kappa_data + (1.0 - data_fraction) * kappa_inst


def unified_cache_doubling_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    data_fraction: float,
    flush_ratio: float = 0.5,
) -> TradeoffResult:
    """Bus doubling priced in unified-cache hit ratio.

    The result interpolates between the instruction-only and data-only
    tradeoffs as ``data_fraction`` moves from 0 to 1 (the Section 4.5
    claim, testable directly).
    """
    doubled = config.doubled_bus()
    kappa_base = unified_miss_cost_factor(config, data_fraction, flush_ratio)
    kappa_feature = unified_miss_cost_factor(
        doubled.with_memory_cycle(config.memory_cycle),
        data_fraction,
        flush_ratio,
    )
    return TradeoffResult(
        miss_ratio_of_misses=kappa_base / kappa_feature,
        base_hit_ratio=base_hit_ratio,
    )
