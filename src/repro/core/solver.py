"""Brute-force equivalence solver.

The closed forms of Sections 4.1-4.4 all answer the same question: *what
hit ratio makes system B run exactly as fast as system A?*  This module
answers it numerically instead — build both systems' Eq. (2) execution
times from raw workloads and bisect on system B's hit ratio — providing
an independent check on every derivation: for each feature,

    solve_equivalent_hit_ratio(...) == TradeoffResult.feature_hit_ratio

to solver tolerance (asserted in ``tests/core/test_solver.py``).  It
also handles combinations the paper has no closed form for, e.g. a
doubled bus *plus* write buffers at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.execution import execution_time
from repro.core.params import SystemConfig, workload_from_hit_ratio
from repro.core.stalling import StallPolicy


@dataclass(frozen=True)
class SystemUnderTest:
    """One side of an equivalence: configuration + feature set.

    ``stall_factor``/``policy`` select the blocking behaviour (defaults
    to full stalling); ``write_buffers`` drops the flush term;
    ``pipelined`` swaps the line-fill time to Eq. (9)'s ``beta_p``.
    """

    config: SystemConfig
    policy: StallPolicy = StallPolicy.FULL_STALL
    stall_factor: float | None = None
    write_buffers: bool = False
    pipelined: bool = False

    def execution_time_at(
        self,
        hit_ratio: float,
        instructions: float,
        loadstore_fraction: float,
        flush_ratio: float,
    ) -> float:
        """Eq. (2) at a given hit ratio, honoring the feature flags."""
        workload = workload_from_hit_ratio(
            hit_ratio,
            self.config,
            instructions=instructions,
            loadstore_fraction=loadstore_fraction,
            flush_ratio=flush_ratio,
        )
        phi = self.stall_factor
        if self.pipelined:
            if phi is not None:
                raise ValueError(
                    "pipelined systems use Eq. (9); a measured phi cannot "
                    "be combined with pipelining in this solver"
                )
            phi = (
                self.config.pipelined_line_fill_time / self.config.memory_cycle
            )
            # Pipelined copy-backs: fold the flush saving into phi-space by
            # scaling alpha the same way the fill scaled.
            flush_scale = phi / self.config.bus_cycles_per_line
            workload = workload_from_hit_ratio(
                hit_ratio,
                self.config,
                instructions=instructions,
                loadstore_fraction=loadstore_fraction,
                flush_ratio=min(1.0, flush_ratio * flush_scale),
            )
        return execution_time(
            workload,
            self.config,
            stall_factor=phi,
            policy=StallPolicy.NON_BLOCKING if self.pipelined else self.policy,
            write_buffers=self.write_buffers,
        )


def solve_equivalent_hit_ratio(
    base: SystemUnderTest,
    feature: SystemUnderTest,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
    instructions: float = 1_000_000.0,
    loadstore_fraction: float = 0.3,
    tolerance: float = 1e-10,
) -> float:
    """Hit ratio at which ``feature`` matches ``base``'s execution time.

    Bisects on the feature system's hit ratio in (0, 1].  Raises when no
    hit ratio in (0, base_hit_ratio + headroom] can slow the feature
    system down enough (an unphysical Eq. 6 case) or when even a perfect
    cache leaves it slower.
    """
    if not 0.0 < base_hit_ratio < 1.0:
        raise ValueError(f"base_hit_ratio must be in (0, 1), got {base_hit_ratio}")
    target = base.execution_time_at(
        base_hit_ratio, instructions, loadstore_fraction, flush_ratio
    )

    def feature_time(hr: float) -> float:
        return feature.execution_time_at(
            hr, instructions, loadstore_fraction, flush_ratio
        )

    # Execution time decreases in hit ratio: bracket the root.
    low, high = 1e-9, 1.0 - 1e-12
    time_low, time_high = feature_time(low), feature_time(high)
    if time_high > target:
        raise ValueError(
            "feature system is slower than the base even with a perfect "
            "cache; no equivalence exists"
        )
    if time_low < target:
        raise ValueError(
            "feature system beats the base even with a useless cache "
            "(HR -> 0); the Eq. 6 physical-validity bound is violated"
        )
    for _ in range(200):
        mid = 0.5 * (low + high)
        if feature_time(mid) > target:
            low = mid
        else:
            high = mid
        if high - low < tolerance:
            break
    return 0.5 * (low + high)
