"""Data bus width versus hit ratio (paper Section 4.1).

Doubling the processor's external data bus from ``D`` to ``2D`` halves
both the line-fill bus cycles (``phi: L/D -> L/2D`` for a full-stalling
cache) and the per-line flush transfer length.  Equating execution times
gives Eq. (3)::

    r = R'/R = ((phi + (L/D) alpha) beta_m - 1)
             / ((phi' + (L/2D) alpha') beta_m - 1)

and the traded hit ratio follows Eq. (6).  Two closed-form limits anchor
the analysis (both for ``alpha = alpha' = 0.5``):

* **Design limit** ``L = 2D, beta_m = 2``: ``r = 2.5`` so
  ``HR_2 = 2.5 HR_1 - 1.5``.
* **Long-memory-cycle limit** ``beta_m -> inf``: ``r -> 2`` so
  ``HR_2 = 2 HR_1 - 1``.

In the reverse direction (Eq. 7) the gain from doubling the bus equals
raising the hit ratio by ``0.5 (1 - HR)`` to ``0.6 (1 - HR)``.
"""

from __future__ import annotations

from repro.core.params import SystemConfig
from repro.core.tradeoff import (
    TradeoffResult,
    equivalence,
    miss_cost_factor,
    reverse_hit_ratio_traded,
)


def miss_volume_ratio_for_doubling(
    config: SystemConfig,
    flush_ratio: float = 0.5,
    flush_ratio_doubled: float | None = None,
) -> float:
    """Eq. (3) with full-stalling caches on both sides.

    ``phi = L/D`` in the base system and ``phi' = L/2D`` after doubling;
    the flush ratio may differ between the systems (the paper uses
    ``alpha = alpha' = 0.5`` throughout).
    """
    doubled = config.doubled_bus()
    if flush_ratio_doubled is None:
        flush_ratio_doubled = flush_ratio
    kappa_base = miss_cost_factor(
        stall_factor=config.bus_cycles_per_line,
        flush_ratio=flush_ratio,
        bus_cycles_per_line=config.bus_cycles_per_line,
        memory_cycle=config.memory_cycle,
    )
    kappa_doubled = miss_cost_factor(
        stall_factor=doubled.bus_cycles_per_line,
        flush_ratio=flush_ratio_doubled,
        bus_cycles_per_line=doubled.bus_cycles_per_line,
        memory_cycle=config.memory_cycle,
    )
    return kappa_base / kappa_doubled


def doubling_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
) -> TradeoffResult:
    """Hit ratio the 2D-width system can give up at equal performance.

    ``base_hit_ratio`` belongs to the D-width system (the paper's Figure 2
    uses 98 % and 90 %).
    """
    doubled = config.doubled_bus()
    kappa_base = miss_cost_factor(
        config.bus_cycles_per_line,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    kappa_doubled = miss_cost_factor(
        doubled.bus_cycles_per_line,
        flush_ratio,
        doubled.bus_cycles_per_line,
        config.memory_cycle,
    )
    return equivalence(kappa_base, kappa_doubled, base_hit_ratio)


def hit_ratio_gain_equivalent_to_doubling(
    config: SystemConfig,
    narrow_bus_hit_ratio: float,
    flush_ratio: float = 0.5,
) -> float:
    """Eq. (7): hit-ratio increase worth the same as doubling the bus.

    Anchored at the hit ratio of the (narrow-bus) system being improved;
    for ``L >= 2D`` and ``alpha = 0.5`` the result lies in
    ``[0.5 (1-HR), 0.6 (1-HR)]``.
    """
    r = miss_volume_ratio_for_doubling(config, flush_ratio)
    return reverse_hit_ratio_traded(r, narrow_bus_hit_ratio)


def design_limit_hit_ratio(base_hit_ratio: float) -> float:
    """The ``beta_m = 2, L = 2D`` limit: ``HR_2 = 2.5 HR_1 - 1.5``."""
    return 2.5 * base_hit_ratio - 1.5


def asymptotic_hit_ratio(base_hit_ratio: float) -> float:
    """The ``beta_m -> inf`` limit: ``HR_2 = 2 HR_1 - 1``."""
    return 2.0 * base_hit_ratio - 1.0
