"""Stalling feature versus hit ratio (paper Section 4.2).

Replacing a full-stalling cache (``phi = L/D``) by a partially-stalling
one (BL, BNL1-3, NB) with measured stalling factor ``phi_ps < L/D``
reduces the per-miss cost; the equivalent hit-ratio difference follows
Eq. (6) with

    r = ((L/D + (L/D) alpha) beta_m - 1) / ((phi_ps + (L/D) alpha) beta_m - 1).

The measured ``phi_ps`` comes from trace-driven simulation
(:mod:`repro.cpu.stall_measure` implements Eq. 8); the paper's Figure 1
reports it as a percentage of ``L/D``.
"""

from __future__ import annotations

from repro.core.params import SystemConfig
from repro.core.stalling import StallPolicy, validate_stall_factor
from repro.core.tradeoff import TradeoffResult, equivalence, miss_cost_factor


def partial_stall_miss_volume_ratio(
    config: SystemConfig,
    measured_stall_factor: float,
    flush_ratio: float = 0.5,
    policy: StallPolicy = StallPolicy.BUS_NOT_LOCKED_1,
) -> float:
    """``r`` for a partially-stalling cache against the FS baseline."""
    validate_stall_factor(policy, measured_stall_factor, config.bus_cycles_per_line)
    kappa_fs = miss_cost_factor(
        config.bus_cycles_per_line,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    kappa_ps = miss_cost_factor(
        measured_stall_factor,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    return kappa_fs / kappa_ps


def partial_stall_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    measured_stall_factor: float,
    flush_ratio: float = 0.5,
    policy: StallPolicy = StallPolicy.BUS_NOT_LOCKED_1,
) -> TradeoffResult:
    """Hit ratio traded by switching FS -> partially-stalling.

    ``base_hit_ratio`` is the full-stalling system's hit ratio (HR_1);
    the partially-stalling system matches its performance at
    ``HR_2 = HR_1 - delta``.
    """
    validate_stall_factor(policy, measured_stall_factor, config.bus_cycles_per_line)
    kappa_fs = miss_cost_factor(
        config.bus_cycles_per_line,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    kappa_ps = miss_cost_factor(
        measured_stall_factor,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    return equivalence(kappa_fs, kappa_ps, base_hit_ratio)


def stall_factor_from_percentage(config: SystemConfig, percent_of_full: float) -> float:
    """Convert a Figure 1 style percentage of ``L/D`` into ``phi``.

    Clamps to the BL/BNL admissible minimum of 1 so that percentages
    measured on other configurations remain usable.
    """
    if not 0.0 <= percent_of_full <= 100.0:
        raise ValueError(f"percentage must be in [0, 100], got {percent_of_full}")
    phi = config.bus_cycles_per_line * percent_of_full / 100.0
    return max(1.0, phi)
