"""Optimal line-size selection and validation against Smith's criterion
(paper Section 5.4.2, Eqs. 15-19).

Smith (1987) picks the line size minimizing the mean cache-miss delay per
memory reference (Eq. 16)::

    min_i  MR(L_i) * (c' + beta * L_i / D),        c' = c - 1.

The paper's methodology instead maximizes the *reduced memory delay* of
each candidate over a base line ``L0`` (Eq. 19)::

    max_i  (delta_MR(L_i) - delta_EMR(L_i)) * (c - 1 + beta * L_i / D)

where ``delta_MR`` is the measured miss-ratio improvement and
``delta_EMR`` the Eq. (14) break-even requirement.  Expanding the
definitions shows the Eq. (19) objective equals::

    MR(L0) * (c - 1 + beta * L0 / D)  -  MR(L_i) * (c - 1 + beta * L_i / D)

— a constant minus Smith's objective, so **the two criteria select the
same line size for every miss-ratio table** (the paper's Figure 6
validation; property-tested in ``tests/core/test_smith.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.line_size import required_hit_ratio_gain


def _check_table(miss_ratios: dict[int, float]) -> None:
    if not miss_ratios:
        raise ValueError("miss-ratio table is empty")
    for line, mr in miss_ratios.items():
        if line <= 0:
            raise ValueError(f"line size must be positive, got {line}")
        if not 0.0 < mr <= 1.0:
            raise ValueError(f"miss ratio for L={line} must be in (0, 1], got {mr}")


def mean_memory_delay_per_reference(
    miss_ratio: float, latency: float, transfer: float, line_size: float, bus_width: float
) -> float:
    """Eq. (15) objective: ``(1 - HR)(c + beta L/D) + HR`` with hit cost 1."""
    return miss_ratio * (latency + transfer * line_size / bus_width) + (1.0 - miss_ratio)


def smith_miss_delay(
    miss_ratio: float, latency: float, transfer: float, line_size: float, bus_width: float
) -> float:
    """Eq. (16) objective: ``MR * (c' + beta L/D)`` with ``c' = c - 1``."""
    return miss_ratio * (latency - 1.0 + transfer * line_size / bus_width)


def smith_optimal_line(
    miss_ratios: dict[int, float],
    latency: float,
    transfer: float,
    bus_width: float,
) -> int:
    """Smith's criterion (Eq. 16): line size with the least miss delay.

    Ties break toward the smaller line (cheaper cache control storage).
    """
    _check_table(miss_ratios)
    return min(
        sorted(miss_ratios),
        key=lambda line: (
            smith_miss_delay(miss_ratios[line], latency, transfer, line, bus_width),
            line,
        ),
    )


@dataclass(frozen=True)
class ReducedDelayPoint:
    """Eq. (19) evaluation for one candidate line size.

    ``reduced_delay`` is evaluated in the algebraically expanded form
    ``MR(L0) * w(L0) - MR(L_i) * w(L_i)`` (module docstring) rather than
    as ``(actual_gain - required_gain) * w(L_i)``: the two are equal in
    exact arithmetic, but the expanded form makes the Eq. 19 ranking
    float-for-float identical to Smith's Eq. 16 ranking, so exact ties
    break the same way in both criteria.
    """

    line_size: int
    actual_gain: float
    required_gain: float
    reduced_delay: float
    miss_delay: float

    @property
    def beneficial(self) -> bool:
        """Positive reduced delay — the larger line beats the base line."""
        return self.reduced_delay > 0.0


def reduced_memory_delay(
    miss_ratios: dict[int, float],
    base_line: int,
    latency: float,
    transfer: float,
    bus_width: float,
) -> list[ReducedDelayPoint]:
    """Eq. (19) for every candidate line ``L_i >= L0`` in the table.

    ``reduced_delay`` is the per-reference memory-delay saving of
    switching from ``base_line`` to the candidate; negative values mean
    the candidate's higher hit ratio cannot justify its longer fill.
    """
    _check_table(miss_ratios)
    if base_line not in miss_ratios:
        raise ValueError(f"base line {base_line} not in miss-ratio table")
    base_mr = miss_ratios[base_line]
    base_hr = 1.0 - base_mr
    base_term = smith_miss_delay(base_mr, latency, transfer, base_line, bus_width)
    points = []
    for line in sorted(miss_ratios):
        if line < base_line:
            continue
        actual_gain = base_mr - miss_ratios[line]  # = delta_HR = delta_MR
        required_gain = required_hit_ratio_gain(
            base_line, line, latency, transfer, bus_width, base_hr
        )
        miss_delay = smith_miss_delay(
            miss_ratios[line], latency, transfer, line, bus_width
        )
        points.append(
            ReducedDelayPoint(
                line_size=line,
                actual_gain=actual_gain,
                required_gain=required_gain,
                reduced_delay=base_term - miss_delay,
                miss_delay=miss_delay,
            )
        )
    return points


def tradeoff_optimal_line(
    miss_ratios: dict[int, float],
    base_line: int,
    latency: float,
    transfer: float,
    bus_width: float,
) -> int:
    """The paper's criterion (Eq. 19): maximize the reduced memory delay.

    Ties break toward the smaller line, mirroring
    :func:`smith_optimal_line`; the theorem in the module docstring
    guarantees both functions agree.
    """
    points = reduced_memory_delay(miss_ratios, base_line, latency, transfer, bus_width)
    # Maximizing reduced_delay == minimizing miss_delay (they differ by the
    # constant base term); ranking on miss_delay keeps the comparison
    # float-for-float identical to smith_optimal_line's.
    best = min(points, key=lambda p: (p.miss_delay, p.line_size))
    return best.line_size


def criteria_agree(
    miss_ratios: dict[int, float],
    latency: float,
    transfer: float,
    bus_width: float,
) -> bool:
    """Check the Figure 6 validation: Eq. (19) picks Smith's line size.

    Uses the smallest table entry as the base line, as in the paper
    (candidates are the lines at least as large as the base).
    """
    base_line = min(miss_ratios)
    return smith_optimal_line(
        miss_ratios, latency, transfer, bus_width
    ) == tradeoff_optimal_line(miss_ratios, base_line, latency, transfer, bus_width)
