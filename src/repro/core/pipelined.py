"""Pipelined memory system versus hit ratio (paper Section 4.4, Eq. 9).

A pipelined memory accepts a new D-byte request every ``q`` cycles, so
an L-byte line fill costs

    beta_p = beta_m + q * (L/D - 1)            (Eq. 9)

instead of ``(L/D) * beta_m``.  With a full-blocking write-allocate
cache the flush traffic pipelines too, giving the per-miss cost
``kappa_p = (1 + alpha) * beta_p - 1`` and

    r = ((L/D)(1 + alpha) beta_m - 1) / ((1 + alpha) beta_p - 1)

against the non-pipelined baseline (Table 3).  At ``beta_m = q`` the two
systems coincide (``beta_p = (L/D) * beta_m``) and ``r = 1`` — the solid
curves in Figures 3-5 meet the x-axis at ``beta_m = q = 2``.

:func:`pipelined_vs_doubling_crossover` solves for the memory cycle time
beyond which pipelining beats doubling the bus width — the paper's
"about five or six clock cycles for q = 2 and L/D >= 2".
"""

from __future__ import annotations

from repro.core.params import SystemConfig
from repro.core.tradeoff import TradeoffResult, miss_cost_factor


def pipelined_line_fill_time(config: SystemConfig) -> float:
    """Eq. (9): ``beta_p = beta_m + q (L/D - 1)``."""
    return config.pipelined_line_fill_time


def pipelined_miss_cost_factor(config: SystemConfig, flush_ratio: float = 0.5) -> float:
    """``kappa_p = (1 + alpha) beta_p - 1`` (read fill + pipelined flush)."""
    kappa = (1.0 + flush_ratio) * pipelined_line_fill_time(config) - 1.0
    if kappa <= 0:
        raise ValueError(f"non-positive pipelined per-miss cost {kappa}")
    return kappa


def pipelined_miss_volume_ratio(config: SystemConfig, flush_ratio: float = 0.5) -> float:
    """``r`` for the pipelined system against the non-pipelined baseline."""
    kappa_base = miss_cost_factor(
        config.bus_cycles_per_line,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    return kappa_base / pipelined_miss_cost_factor(config, flush_ratio)


def pipelined_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
) -> TradeoffResult:
    """Hit ratio traded by pipelining the memory system.

    ``base_hit_ratio`` (HR_1) belongs to the non-pipelined system.
    """
    r = pipelined_miss_volume_ratio(config, flush_ratio)
    return TradeoffResult(miss_ratio_of_misses=r, base_hit_ratio=base_hit_ratio)


def pipelined_vs_doubling_crossover(
    line_size: int,
    bus_width: int,
    pipeline_turnaround: float = 2.0,
    flush_ratio: float = 0.5,
) -> float | None:
    """Memory cycle time where pipelining overtakes doubling the bus.

    Pipelining wins when its per-miss cost drops below the doubled-bus
    per-miss cost::

        (1 + alpha)(beta_m + q (L/D - 1)) < (L/2D)(1 + alpha) beta_m

    which is linear in ``beta_m``; the closed-form root is

        beta_m* = q (L/D - 1) / (L/2D - 1).

    Returns ``None`` when ``L = 2D`` (the doubled bus then transfers the
    whole line in one cycle-group and pipelining never catches up —
    Figure 3's observation).
    """
    if line_size % bus_width != 0 or line_size < 2 * bus_width:
        raise ValueError("need L >= 2D with D | L")
    ratio = line_size / bus_width
    half_ratio = ratio / 2.0
    if half_ratio <= 1.0:
        return None
    del flush_ratio  # cancels out of the inequality; kept for API symmetry
    return pipeline_turnaround * (ratio - 1.0) / (half_ratio - 1.0)
