"""Architectural and workload parameters (paper Table 1).

Two dataclasses carry everything the execution-time model of Eq. (2) needs:

* :class:`SystemConfig` — the hardware: external data bus width ``D``,
  cache line size ``L``, memory cycle time ``beta_m`` (cycles per D-byte
  read/write), and the pipelined-memory turnaround ``q``.
* :class:`WorkloadCharacter` — the application as seen through the caches:
  instruction count ``E``, read-miss bytes ``R`` (data) and ``RI``
  (instruction), write-around miss count ``W``, and the dirty-line flush
  ratio ``alpha``.

The paper's ``{E, RI, R, W, alpha, phi}`` tuple characterizes an
application on a specific configuration; ``phi`` (the stalling factor)
lives separately in :mod:`repro.core.stalling` because it is a property of
the cache's blocking behaviour, not of the workload alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Bus widths the paper admits (Table 1): "D can be any number in {4, 8, 16, 32}".
VALID_BUS_WIDTHS = (4, 8, 16, 32)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class SystemConfig:
    """Hardware parameters of one system under study.

    Parameters
    ----------
    bus_width:
        ``D`` — processor external data bus width in bytes.
    line_size:
        ``L`` — cache line size in bytes; must be a positive multiple
        of ``bus_width``.
    memory_cycle:
        ``beta_m`` — memory cycle time, in processor clock cycles, for one
        D-byte read/write cycle.  The paper treats ``beta_m = 2`` as the
        design limit of a non-pipelined memory.
    pipeline_turnaround:
        ``q`` — clock cycles before a pipelined memory can accept the next
        request (Section 4.4).  ``q = 2`` is the paper's "best possible"
        pipelined implementation.  Must satisfy ``q <= beta_m`` for the
        pipelined cycle to be an improvement.
    """

    bus_width: int
    line_size: int
    memory_cycle: float
    pipeline_turnaround: float = 2.0

    def __post_init__(self) -> None:
        _require(self.bus_width > 0, f"bus_width must be positive, got {self.bus_width}")
        _require(
            self.line_size > 0 and self.line_size % self.bus_width == 0,
            f"line_size ({self.line_size}) must be a positive multiple of "
            f"bus_width ({self.bus_width})",
        )
        _require(
            self.memory_cycle >= 1.0,
            f"memory_cycle must be >= 1 processor clock, got {self.memory_cycle}",
        )
        _require(
            self.pipeline_turnaround >= 1.0,
            f"pipeline_turnaround must be >= 1, got {self.pipeline_turnaround}",
        )

    @property
    def bus_cycles_per_line(self) -> int:
        """``L/D`` — bus cycles needed to transfer one full cache line."""
        return self.line_size // self.bus_width

    @property
    def line_fill_time(self) -> float:
        """Non-pipelined time to fill one line: ``(L/D) * beta_m`` cycles."""
        return self.bus_cycles_per_line * self.memory_cycle

    @property
    def pipelined_line_fill_time(self) -> float:
        """Eq. (9): ``beta_p = beta_m + q * (L/D - 1)`` cycles per line."""
        return self.memory_cycle + self.pipeline_turnaround * (
            self.bus_cycles_per_line - 1
        )

    def with_bus_width(self, bus_width: int) -> SystemConfig:
        """A copy of this configuration with a different bus width."""
        return replace(self, bus_width=bus_width)

    def with_line_size(self, line_size: int) -> SystemConfig:
        """A copy of this configuration with a different line size."""
        return replace(self, line_size=line_size)

    def with_memory_cycle(self, memory_cycle: float) -> SystemConfig:
        """A copy of this configuration with a different memory cycle time."""
        return replace(self, memory_cycle=memory_cycle)

    def doubled_bus(self) -> SystemConfig:
        """The 2D-width system of Section 4.1.  Requires ``L >= 2D``."""
        _require(
            self.line_size >= 2 * self.bus_width,
            "doubling the bus requires L >= 2D "
            f"(L={self.line_size}, D={self.bus_width})",
        )
        return self.with_bus_width(2 * self.bus_width)


@dataclass(frozen=True)
class WorkloadCharacter:
    """Application characterization ``{E, RI, R, W, alpha}`` (Table 1).

    Parameters
    ----------
    instructions:
        ``E`` — instructions executed.
    read_bytes:
        ``R`` — data bytes read in full bus width on read misses (for a
        write-allocate cache this also includes the lines read on write
        misses).  Excludes instruction fetches.
    instruction_bytes:
        ``RI`` — instruction bytes read on instruction-cache misses.
    write_around_misses:
        ``W`` — write-around miss instructions using the external bus.
        Zero for a write-allocate cache (the paper folds those reads
        into ``R``).
    flush_ratio:
        ``alpha`` in [0, 1] — dirty-line copy-back traffic as a fraction
        of ``R``.  The paper follows Smith in using 0.5 as the typical
        value.
    """

    instructions: float
    read_bytes: float
    instruction_bytes: float = 0.0
    write_around_misses: float = 0.0
    flush_ratio: float = 0.5

    def __post_init__(self) -> None:
        _require(self.instructions > 0, "instructions must be positive")
        _require(self.read_bytes >= 0, "read_bytes must be non-negative")
        _require(self.instruction_bytes >= 0, "instruction_bytes must be non-negative")
        _require(
            self.write_around_misses >= 0, "write_around_misses must be non-negative"
        )
        _require(
            0.0 <= self.flush_ratio <= 1.0,
            f"flush_ratio must be within [0, 1], got {self.flush_ratio}",
        )

    @property
    def uses_write_allocate(self) -> bool:
        """True when write misses allocate lines (the paper's W = 0 case)."""
        return self.write_around_misses == 0

    def miss_instructions(self, line_size: int) -> float:
        """Eq. (1): ``Lambda_m = R/L + W`` — load/stores missing in cache."""
        _require(line_size > 0, "line_size must be positive")
        return self.read_bytes / line_size + self.write_around_misses

    def flush_bytes(self) -> float:
        """``alpha * R`` — bytes of dirty lines copied back to memory."""
        return self.flush_ratio * self.read_bytes

    def scaled(self, factor: float) -> WorkloadCharacter:
        """Scale every extensive quantity (E, R, RI, W) by ``factor``.

        Useful for normalizing characterizations taken over different
        instruction counts onto a common basis; ``flush_ratio`` is
        intensive and unchanged.
        """
        _require(factor > 0, "factor must be positive")
        return WorkloadCharacter(
            instructions=self.instructions * factor,
            read_bytes=self.read_bytes * factor,
            instruction_bytes=self.instruction_bytes * factor,
            write_around_misses=self.write_around_misses * factor,
            flush_ratio=self.flush_ratio,
        )


def workload_from_hit_ratio(
    hit_ratio: float,
    config: SystemConfig,
    instructions: float = 1_000_000.0,
    loadstore_fraction: float = 0.3,
    flush_ratio: float = 0.5,
) -> WorkloadCharacter:
    """Construct a write-allocate workload exhibiting a given data hit ratio.

    The paper's tradeoff curves are parameterized by a *base hit ratio*
    rather than raw byte counts; this helper inverts Eq. (1) and Eq. (4):
    with ``Lambda_h + Lambda_m = loadstore_fraction * E`` memory references
    and miss ratio ``1 - hit_ratio``, the read-miss volume is
    ``R = Lambda_m * L``.

    Parameters
    ----------
    hit_ratio:
        Data-cache hit ratio ``HR`` in (0, 1].
    config:
        Supplies the line size ``L`` that converts misses to bytes.
    instructions:
        ``E``; the tradeoff results are independent of this scale.
    loadstore_fraction:
        Fraction of instructions that reference data memory (the paper's
        trace-driven studies have roughly 30 % load/stores).
    flush_ratio:
        ``alpha``, forwarded to the workload.
    """
    _require(0.0 < hit_ratio <= 1.0, f"hit_ratio must be in (0, 1], got {hit_ratio}")
    _require(
        0.0 < loadstore_fraction < 1.0,
        f"loadstore_fraction must be in (0, 1), got {loadstore_fraction}",
    )
    references = instructions * loadstore_fraction
    misses = references * (1.0 - hit_ratio)
    return WorkloadCharacter(
        instructions=instructions,
        read_bytes=misses * config.line_size,
        write_around_misses=0.0,
        flush_ratio=flush_ratio,
    )
