"""Read-bypassing write buffers versus hit ratio (paper Section 4.3).

With an appropriate memory cycle time, read-bypassing write buffers hide
the dirty-line copy-back (flush) latency completely: the flushed line is
posted after the missing line arrives, and the processor spends the next
cycles consuming data from the line just fetched.  The best-possible
execution time therefore drops the ``(alpha R / D) beta_m`` term, giving

    r = ((L/D)(1 + alpha) beta_m - 1) / ((L/D) beta_m - 1)

against the full-stalling, unbuffered baseline (Table 3, write-allocate).
A ``hiding_efficiency`` below 1 models the reads that cannot bypass
in-flight writes (the paper's dashed curve is the efficiency-1 bound).
"""

from __future__ import annotations

from repro.core.params import SystemConfig
from repro.core.tradeoff import TradeoffResult, miss_cost_factor


def write_buffer_miss_volume_ratio(
    config: SystemConfig,
    flush_ratio: float = 0.5,
    hiding_efficiency: float = 1.0,
) -> float:
    """``r`` for read-bypassing write buffers against no buffers.

    ``hiding_efficiency`` in [0, 1] scales how much of the flush traffic
    the buffers hide; 1 is the paper's best case, 0 degenerates to the
    baseline (r = 1).
    """
    if not 0.0 <= hiding_efficiency <= 1.0:
        raise ValueError(
            f"hiding_efficiency must be in [0, 1], got {hiding_efficiency}"
        )
    residual_flush = flush_ratio * (1.0 - hiding_efficiency)
    kappa_base = miss_cost_factor(
        config.bus_cycles_per_line,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    kappa_buffered = miss_cost_factor(
        config.bus_cycles_per_line,
        residual_flush,
        config.bus_cycles_per_line,
        config.memory_cycle,
    )
    return kappa_base / kappa_buffered


def write_buffer_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
    hiding_efficiency: float = 1.0,
) -> TradeoffResult:
    """Hit ratio traded by adding read-bypassing write buffers.

    ``base_hit_ratio`` (HR_1) belongs to the unbuffered system.
    """
    r = write_buffer_miss_volume_ratio(config, flush_ratio, hiding_efficiency)
    return TradeoffResult(miss_ratio_of_misses=r, base_hit_ratio=base_hit_ratio)
