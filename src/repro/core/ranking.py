"""Unified comparison and ranking of architectural features
(paper Section 5.3, Figures 3-5).

All features are compared on the same ground — a full-blocking cache on a
non-pipelined memory — by sweeping the memory cycle time ``beta_m`` and
recording how much hit ratio each feature trades (Eq. 6).  The paper's
conclusions, which this module lets you regenerate for any configuration:

* except for pipelined memory, doubling the bus width is the best choice,
  then read-bypassing write buffers, then a bus-not-locked cache;
* the pipelined system overtakes doubling the bus once ``beta_m`` passes
  the crossover (about 5-6 cycles for ``q = 2`` and ``L/D >= 2``), and
  never does when ``L = 2D``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig
from repro.core.tradeoff import hit_ratio_traded
from repro.util.interp import crossover


@dataclass(frozen=True)
class FeatureSweep:
    """One feature's traded-hit-ratio curve over memory cycle times."""

    feature: ArchFeature
    memory_cycles: tuple[float, ...]
    hit_ratio_traded: tuple[float, ...]

    def value_at(self, memory_cycle: float) -> float:
        """The traded hit ratio at an exact swept ``beta_m``."""
        try:
            index = self.memory_cycles.index(memory_cycle)
        except ValueError:
            raise ValueError(
                f"beta_m={memory_cycle} was not swept for {self.feature}"
            ) from None
        return self.hit_ratio_traded[index]


@dataclass(frozen=True)
class UnifiedComparison:
    """Figures 3-5: every feature's curve plus derived rankings."""

    config_template: SystemConfig
    base_hit_ratio: float
    sweeps: dict[ArchFeature, FeatureSweep] = field(default_factory=dict)

    def ranking_at(self, memory_cycle: float) -> list[ArchFeature]:
        """Features ordered best-first at one memory cycle time."""
        return sorted(
            self.sweeps,
            key=lambda f: self.sweeps[f].value_at(memory_cycle),
            reverse=True,
        )

    def pipelined_crossover_vs(self, rival: ArchFeature) -> float | None:
        """First swept ``beta_m`` where pipelining overtakes ``rival``."""
        pipe = self.sweeps[ArchFeature.PIPELINED_MEMORY]
        other = self.sweeps[rival]
        return crossover(
            list(pipe.memory_cycles),
            list(pipe.hit_ratio_traded),
            list(other.hit_ratio_traded),
        )


def unified_comparison(
    config: SystemConfig,
    base_hit_ratio: float,
    memory_cycles: Sequence[float],
    flush_ratio: float = 0.5,
    measured_stall_factors: dict[float, float] | None = None,
    stall_feature_label: ArchFeature = ArchFeature.PARTIAL_STALLING,
) -> UnifiedComparison:
    """Sweep ``beta_m`` and build every feature's traded-hit-ratio curve.

    Parameters
    ----------
    config:
        Template configuration; its ``memory_cycle`` is replaced by each
        swept value.
    base_hit_ratio:
        Hit ratio of the common baseline (95 % in Figures 3-5).
    memory_cycles:
        The swept non-pipelined ``beta_m`` values (x axis).
    measured_stall_factors:
        Optional map ``beta_m -> phi`` from trace simulation; enables the
        partially-stalling (BNL) curve.  Each ``phi`` must be supplied at
        the swept ``beta_m`` values (missing entries raise ``KeyError``).
    """
    cycles = tuple(float(b) for b in memory_cycles)
    if not cycles:
        raise ValueError("memory_cycles must be non-empty")

    always_on = (
        ArchFeature.DOUBLING_BUS,
        ArchFeature.WRITE_BUFFERS,
        ArchFeature.PIPELINED_MEMORY,
    )
    sweeps: dict[ArchFeature, FeatureSweep] = {}
    for feature in always_on:
        traded = []
        for beta_m in cycles:
            r = feature_miss_ratio(
                feature, config.with_memory_cycle(beta_m), flush_ratio
            )
            traded.append(hit_ratio_traded(r, base_hit_ratio))
        sweeps[feature] = FeatureSweep(feature, cycles, tuple(traded))

    if measured_stall_factors is not None:
        traded = []
        for beta_m in cycles:
            phi = measured_stall_factors[beta_m]
            r = feature_miss_ratio(
                ArchFeature.PARTIAL_STALLING,
                config.with_memory_cycle(beta_m),
                flush_ratio,
                measured_stall_factor=phi,
            )
            traded.append(hit_ratio_traded(r, base_hit_ratio))
        sweeps[stall_feature_label] = FeatureSweep(
            stall_feature_label, cycles, tuple(traded)
        )

    return UnifiedComparison(
        config_template=config, base_hit_ratio=base_hit_ratio, sweeps=sweeps
    )
