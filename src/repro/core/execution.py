"""CPU execution-time model (paper Section 3.3, Eq. 2) and the mean
memory delay equivalence (Section 4.5).

Eq. (2), for a RISC processor with on-chip write-back data cache where
every non-memory instruction and every cache hit takes one cycle::

    X = (E - Lambda_m) + (R/L) * phi * beta_m + (alpha*R/D) * beta_m + W * beta_m

* ``(E - Lambda_m)`` — cycles for non-load/store instructions plus hits;
* ``(R/L) * phi * beta_m`` — read-miss stall cycles (``phi`` from Table 2);
* ``(alpha*R/D) * beta_m`` — dirty-line flush (copy-back) cycles when no
  write buffers hide them;
* ``W * beta_m`` — write-around miss cycles.

When the instruction cache cannot be neglected (multiprogramming), the
term ``(RI/D) * phi_i * beta_m`` is added (Section 3.4); the model shape
is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SystemConfig, WorkloadCharacter
from repro.core.stalling import StallPolicy, validate_stall_factor


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Eq. (2) with each contribution exposed, all in processor cycles."""

    base_cycles: float
    read_miss_stall_cycles: float
    flush_cycles: float
    write_around_cycles: float
    instruction_fetch_cycles: float

    @property
    def total(self) -> float:
        """X — total CPU execution time in cycles."""
        return (
            self.base_cycles
            + self.read_miss_stall_cycles
            + self.flush_cycles
            + self.write_around_cycles
            + self.instruction_fetch_cycles
        )


def full_stall_factor(config: SystemConfig) -> float:
    """``phi = L/D`` — the stalling factor of a full-blocking cache."""
    return float(config.bus_cycles_per_line)


def execution_breakdown(
    workload: WorkloadCharacter,
    config: SystemConfig,
    stall_factor: float | None = None,
    policy: StallPolicy = StallPolicy.FULL_STALL,
    write_buffers: bool = False,
    include_instruction_fetch: bool = False,
    instruction_stall_factor: float | None = None,
) -> ExecutionBreakdown:
    """Evaluate Eq. (2) term by term.

    Parameters
    ----------
    workload, config:
        The application characterization and hardware parameters.
    stall_factor:
        ``phi``; defaults to the policy-appropriate extreme (``L/D`` for
        FS).  Partially-stalling policies require an explicit measured
        value (Section 4.2 obtains it from trace-driven simulation).
    policy:
        Stalling feature used to validate ``phi`` against Table 2.
    write_buffers:
        When True, read-bypassing write buffers hide the flush term
        entirely — the best-possible behaviour of Section 4.3.
    include_instruction_fetch:
        Add the Section 3.4 instruction-miss term ``(RI/D) * phi_i * beta_m``.
    instruction_stall_factor:
        ``phi_i`` for the (full-blocking) instruction cache; defaults to
        ``L/D``.
    """
    if stall_factor is None:
        if policy is not StallPolicy.FULL_STALL:
            raise ValueError(
                f"policy {policy.value} needs an explicit measured stall_factor"
            )
        stall_factor = full_stall_factor(config)
    validate_stall_factor(policy, stall_factor, config.bus_cycles_per_line)

    misses = workload.miss_instructions(config.line_size)
    if misses > workload.instructions:
        raise ValueError(
            f"workload implies {misses} missing load/stores but only "
            f"{workload.instructions} instructions"
        )

    read_lines = workload.read_bytes / config.line_size
    flush = (
        0.0
        if write_buffers
        else (workload.flush_ratio * workload.read_bytes / config.bus_width)
        * config.memory_cycle
    )
    ifetch = 0.0
    if include_instruction_fetch:
        phi_i = (
            full_stall_factor(config)
            if instruction_stall_factor is None
            else instruction_stall_factor
        )
        ifetch = (
            workload.instruction_bytes / config.line_size
        ) * phi_i * config.memory_cycle

    return ExecutionBreakdown(
        base_cycles=workload.instructions - misses,
        read_miss_stall_cycles=read_lines * stall_factor * config.memory_cycle,
        flush_cycles=flush,
        write_around_cycles=workload.write_around_misses * config.memory_cycle,
        instruction_fetch_cycles=ifetch,
    )


def execution_time(
    workload: WorkloadCharacter,
    config: SystemConfig,
    stall_factor: float | None = None,
    policy: StallPolicy = StallPolicy.FULL_STALL,
    write_buffers: bool = False,
) -> float:
    """Eq. (2): total CPU execution time X in processor cycles."""
    return execution_breakdown(
        workload,
        config,
        stall_factor=stall_factor,
        policy=policy,
        write_buffers=write_buffers,
    ).total


def memory_delay_cycles(
    workload: WorkloadCharacter,
    config: SystemConfig,
    stall_factor: float | None = None,
    policy: StallPolicy = StallPolicy.FULL_STALL,
    write_buffers: bool = False,
) -> float:
    """Total memory-induced delay: ``X - (E - Lambda_m)`` cycles."""
    breakdown = execution_breakdown(
        workload,
        config,
        stall_factor=stall_factor,
        policy=policy,
        write_buffers=write_buffers,
    )
    return breakdown.total - breakdown.base_cycles


def mean_memory_delay(
    workload: WorkloadCharacter,
    config: SystemConfig,
    data_references: float,
    stall_factor: float | None = None,
    policy: StallPolicy = StallPolicy.FULL_STALL,
    write_buffers: bool = False,
) -> float:
    """Section 4.5: mean memory delay per data reference.

    ``(phi*(R/L)*beta_m + alpha*(R/D)*beta_m + W*beta_m + Lambda_m hit-part)``
    ... concretely, the paper shows that equating the execution times of two
    systems with the same program is the same as equating::

        (memory stall cycles + Lambda_h + Lambda_m) / (Lambda_h + Lambda_m)

    i.e. the *mean memory delay time per (data) memory reference*, which is
    independent of the non-load/store instruction count.  This function
    returns exactly that quantity, with ``data_references = Lambda_h +
    Lambda_m`` held fixed across the systems being compared.
    """
    misses = workload.miss_instructions(config.line_size)
    if data_references < misses:
        raise ValueError(
            f"data_references ({data_references}) below miss count ({misses})"
        )
    stall = memory_delay_cycles(
        workload,
        config,
        stall_factor=stall_factor,
        policy=policy,
        write_buffers=write_buffers,
    )
    # Hits and the issue cycle of each miss contribute one cycle per
    # reference; stalls add on top.
    return (data_references + stall) / data_references


def miss_ratio(workload: WorkloadCharacter, config: SystemConfig, data_references: float) -> float:
    """Eq. (4): ``MR = Lambda_m / (Lambda_h + Lambda_m)``."""
    misses = workload.miss_instructions(config.line_size)
    if data_references <= 0:
        raise ValueError("data_references must be positive")
    if misses > data_references:
        raise ValueError("miss count exceeds total references")
    return misses / data_references


def hit_ratio(workload: WorkloadCharacter, config: SystemConfig, data_references: float) -> float:
    """``HR = 1 - MR`` for the same accounting as :func:`miss_ratio`."""
    return 1.0 - miss_ratio(workload, config, data_references)
