"""Line size versus hit ratio (paper Section 5.4, Eqs. 11-14).

For the line-size study the paper switches to Smith's latency model: an
L-byte line fill costs ``c + (L/D) * beta`` cycles, where ``c`` is the
memory access latency and ``beta`` the bus transfer time per D bytes.
Equating the full-stalling execution times of a base line size ``L0``
and a candidate ``L*`` (Eqs. 11-12) yields Eq. (13)::

    R* = R0 * (L*/L0) * ((1 + alpha)(c + (L0/D) beta) - 1)
                      / ((1 + alpha*)(c + (L*/D) beta) - 1)

so the miss-count ratio ``r = (R*/L*) / (R0/L0)`` is below one, and the
*required* extra hit ratio for the larger line to break even (Eq. 14) is

    delta_EHR = (1 - r) / (s + 1) = (1 - r)(1 - HR_L0)  > 0.

A larger line size only pays off when the application's *actual* hit
ratio improvement ``delta_HR`` exceeds ``delta_EHR`` (Section 5.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass


def line_fill_time(latency: float, transfer: float, line_size: float, bus_width: float) -> float:
    """Smith's fill-time model: ``c + (L/D) * beta`` cycles."""
    if latency < 1.0:
        raise ValueError(f"latency c must be >= 1 cycle, got {latency}")
    if transfer < 0.0:
        raise ValueError(f"transfer beta must be non-negative, got {transfer}")
    if line_size <= 0 or bus_width <= 0:
        raise ValueError("line_size and bus_width must be positive")
    return latency + (line_size / bus_width) * transfer


def line_size_miss_count_ratio(
    base_line: float,
    larger_line: float,
    latency: float,
    transfer: float,
    bus_width: float,
    flush_ratio: float = 0.0,
    flush_ratio_larger: float | None = None,
) -> float:
    """Eq. (13) reduced to the miss-count ratio ``r = Lambda_m*/Lambda_m``.

    With write-allocate caches ``Lambda_m = R/L``, so Eq. (13) gives::

        r = ((1 + alpha )(c + (L0/D) beta) - 1)
          / ((1 + alpha*)(c + (L*/D) beta) - 1)

    which is < 1 whenever ``L* > L0`` (a larger line makes each miss more
    expensive, so fewer misses are affordable).  Smith's model carries no
    copy-back term, hence ``flush_ratio`` defaults to 0 for the Figure 6
    validation.
    """
    if larger_line < base_line:
        raise ValueError(
            f"larger_line ({larger_line}) must be >= base_line ({base_line})"
        )
    alpha_larger = flush_ratio if flush_ratio_larger is None else flush_ratio_larger
    cost_base = (1.0 + flush_ratio) * line_fill_time(
        latency, transfer, base_line, bus_width
    ) - 1.0
    cost_larger = (1.0 + alpha_larger) * line_fill_time(
        latency, transfer, larger_line, bus_width
    ) - 1.0
    if cost_base <= 0 or cost_larger <= 0:
        raise ValueError("per-miss costs must be positive; increase c or beta")
    return cost_base / cost_larger


def required_hit_ratio_gain(
    base_line: float,
    larger_line: float,
    latency: float,
    transfer: float,
    bus_width: float,
    base_hit_ratio: float,
    flush_ratio: float = 0.0,
) -> float:
    """Eq. (14): ``delta_EHR = (1 - r)(1 - HR_L0)`` — break-even gain.

    The minimum hit-ratio improvement a larger line must deliver to match
    the smaller line's mean memory delay.
    """
    if not 0.0 <= base_hit_ratio < 1.0:
        raise ValueError(f"base_hit_ratio must be in [0, 1), got {base_hit_ratio}")
    r = line_size_miss_count_ratio(
        base_line, larger_line, latency, transfer, bus_width, flush_ratio
    )
    return (1.0 - r) * (1.0 - base_hit_ratio)


@dataclass(frozen=True)
class LineSizeDecision:
    """Section 5.4.1 verdict for one candidate line size."""

    line_size: float
    actual_gain: float
    required_gain: float

    @property
    def beneficial(self) -> bool:
        """True when the actual hit-ratio gain exceeds the break-even gain."""
        return self.actual_gain > self.required_gain

    @property
    def margin(self) -> float:
        """``delta_HR - delta_EHR`` — positive when the larger line wins."""
        return self.actual_gain - self.required_gain


def evaluate_line_size(
    base_line: float,
    larger_line: float,
    latency: float,
    transfer: float,
    bus_width: float,
    base_hit_ratio: float,
    larger_hit_ratio: float,
    flush_ratio: float = 0.0,
) -> LineSizeDecision:
    """Compare a larger line's actual gain against its break-even gain."""
    required = required_hit_ratio_gain(
        base_line,
        larger_line,
        latency,
        transfer,
        bus_width,
        base_hit_ratio,
        flush_ratio,
    )
    return LineSizeDecision(
        line_size=larger_line,
        actual_gain=larger_hit_ratio - base_hit_ratio,
        required_gain=required,
    )
