"""Multiple-instruction-issue extension (paper Section 6, future work).

The paper closes by announcing a CPU execution-time model "for systems
where the throughput could be more than one instruction per clock cycle",
developed "similar to the one above".  This module carries that program
out: with a base throughput of ``ipc`` instructions per cycle, Eq. (2)
generalizes to::

    X = (E - Lambda_m) / ipc + (R/L) * phi * beta_m
        + (alpha R / D) * beta_m + W * beta_m

— memory stalls are serialization points and do not scale with issue
width.  The per-miss cost factor (see :mod:`repro.core.tradeoff`) becomes

    kappa = (phi + (L/D) alpha) * beta_m - 1/ipc

because a hit would have retired in ``1/ipc`` cycles rather than one.
Consequences, derivable with :func:`multi_issue_tradeoff`:

* as ``ipc`` grows, the saved hit cycle vanishes and every feature's
  ``r`` converges to the pure ratio of per-miss memory costs — a small
  (second-order) shift from the single-issue value;
* the qualitative ranking of Section 5.3 is unchanged, while the
  *absolute* weight of memory stalls in total execution time rises
  sharply (the ``(E - Lambda_m)/ipc`` term shrinks), which is why the
  paper flags multiple issue as the natural next study.
"""

from __future__ import annotations

from repro.core.params import SystemConfig, WorkloadCharacter
from repro.core.tradeoff import TradeoffResult


def multi_issue_execution_time(
    workload: WorkloadCharacter,
    config: SystemConfig,
    ipc: float,
    stall_factor: float | None = None,
    write_buffers: bool = False,
) -> float:
    """Generalized Eq. (2) with base throughput ``ipc`` instr/cycle."""
    if ipc < 1.0:
        raise ValueError(f"ipc must be >= 1, got {ipc}")
    if stall_factor is None:
        stall_factor = float(config.bus_cycles_per_line)
    misses = workload.miss_instructions(config.line_size)
    read_lines = workload.read_bytes / config.line_size
    flush = (
        0.0
        if write_buffers
        else workload.flush_ratio * workload.read_bytes / config.bus_width
        * config.memory_cycle
    )
    return (
        (workload.instructions - misses) / ipc
        + read_lines * stall_factor * config.memory_cycle
        + flush
        + workload.write_around_misses * config.memory_cycle
    )


def multi_issue_miss_cost_factor(
    stall_factor: float,
    flush_ratio: float,
    bus_cycles_per_line: float,
    memory_cycle: float,
    ipc: float,
) -> float:
    """``kappa = (phi + (L/D) alpha) beta_m - 1/ipc`` for issue width > 1."""
    if ipc < 1.0:
        raise ValueError(f"ipc must be >= 1, got {ipc}")
    kappa = (
        (stall_factor + bus_cycles_per_line * flush_ratio) * memory_cycle
        - 1.0 / ipc
    )
    if kappa <= 0:
        raise ValueError(f"non-positive per-miss cost {kappa}")
    return kappa


def multi_issue_doubling_ratio(
    config: SystemConfig, flush_ratio: float, ipc: float
) -> float:
    """Bus-doubling ``r`` under multiple issue (cf. Eq. 3)."""
    doubled = config.doubled_bus()
    kappa_base = multi_issue_miss_cost_factor(
        config.bus_cycles_per_line,
        flush_ratio,
        config.bus_cycles_per_line,
        config.memory_cycle,
        ipc,
    )
    kappa_doubled = multi_issue_miss_cost_factor(
        doubled.bus_cycles_per_line,
        flush_ratio,
        doubled.bus_cycles_per_line,
        config.memory_cycle,
        ipc,
    )
    return kappa_base / kappa_doubled


def multi_issue_tradeoff(
    config: SystemConfig,
    base_hit_ratio: float,
    ipc: float,
    flush_ratio: float = 0.5,
) -> TradeoffResult:
    """Bus-doubling hit-ratio tradeoff at issue width ``ipc``.

    At ``ipc = 1`` this reproduces :func:`repro.core.bus_width.doubling_tradeoff`
    exactly; larger ``ipc`` yields a slightly larger ``r`` (memory features
    gain value as the core gets faster).
    """
    r = multi_issue_doubling_ratio(config, flush_ratio, ipc)
    return TradeoffResult(miss_ratio_of_misses=r, base_hit_ratio=base_hit_ratio)
