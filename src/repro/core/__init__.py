"""The paper's analytic contribution: the unified tradeoff methodology.

Public surface:

* :class:`SystemConfig`, :class:`WorkloadCharacter` — Table 1 parameters;
* :class:`StallPolicy` and stall-factor bounds — Table 2;
* :func:`execution_time` and friends — the Eq. (2) CPU model;
* per-feature tradeoffs — bus width (Section 4.1), partial stalling
  (Section 4.2), write buffers (Section 4.3), pipelined memory
  (Section 4.4), line size (Section 5.4);
* :func:`unified_comparison` — the Figures 3-5 sweep and ranking;
* Smith-criterion validation (Section 5.4.2);
* the Section 6 multiple-issue extension.
"""

from repro.core.bounds import TradeoffBounds, feature_bounds, guaranteed_winner
from repro.core.bus_width import (
    asymptotic_hit_ratio,
    design_limit_hit_ratio,
    doubling_tradeoff,
    hit_ratio_gain_equivalent_to_doubling,
    miss_volume_ratio_for_doubling,
)
from repro.core.execution import (
    ExecutionBreakdown,
    execution_breakdown,
    execution_time,
    full_stall_factor,
    hit_ratio,
    mean_memory_delay,
    memory_delay_cycles,
    miss_ratio,
)
from repro.core.features import ArchFeature, Table3Row, feature_miss_ratio, table3
from repro.core.line_size import (
    LineSizeDecision,
    evaluate_line_size,
    line_fill_time,
    line_size_miss_count_ratio,
    required_hit_ratio_gain,
)
from repro.core.icache import (
    instruction_cache_doubling_tradeoff,
    instruction_miss_cost_factor,
    unified_cache_doubling_tradeoff,
    unified_miss_cost_factor,
)
from repro.core.multi_issue import (
    multi_issue_execution_time,
    multi_issue_tradeoff,
)
from repro.core.sensitivity import (
    PARAMETER_NAMES,
    OperatingPoint,
    sensitivity,
    sensitivity_report,
)
from repro.core.traffic import (
    TrafficReport,
    ranking_disagreement,
    traffic_optimal_line,
    traffic_report,
)
from repro.core.write_around import (
    WriteAroundSystem,
    write_around_buffer_tradeoff,
    write_around_doubling_tradeoff,
    write_around_miss_volume_ratio,
)
from repro.core.params import (
    VALID_BUS_WIDTHS,
    SystemConfig,
    WorkloadCharacter,
    workload_from_hit_ratio,
)
from repro.core.pipelined import (
    pipelined_line_fill_time,
    pipelined_miss_volume_ratio,
    pipelined_tradeoff,
    pipelined_vs_doubling_crossover,
)
from repro.core.ranking import FeatureSweep, UnifiedComparison, unified_comparison
from repro.core.solver import SystemUnderTest, solve_equivalent_hit_ratio
from repro.core.speedup import (
    equivalence_check,
    feature_speedup,
    hit_ratio_speedup,
)
from repro.core.smith import (
    ReducedDelayPoint,
    criteria_agree,
    reduced_memory_delay,
    smith_optimal_line,
    tradeoff_optimal_line,
)
from repro.core.stall_tradeoff import (
    partial_stall_miss_volume_ratio,
    partial_stall_tradeoff,
    stall_factor_from_percentage,
)
from repro.core.stalling import (
    MEASURED_POLICIES,
    StallFactorBounds,
    StallPolicy,
    stall_factor_bounds,
    validate_stall_factor,
)
from repro.core.tradeoff import (
    TradeoffResult,
    equivalence,
    hit_ratio_traded,
    miss_cost_factor,
    miss_volume_ratio,
    odds,
    reverse_hit_ratio_traded,
)
from repro.core.write_buffer import (
    write_buffer_miss_volume_ratio,
    write_buffer_tradeoff,
)

__all__ = [
    # params
    "SystemConfig",
    "WorkloadCharacter",
    "workload_from_hit_ratio",
    "VALID_BUS_WIDTHS",
    # stalling
    "StallPolicy",
    "StallFactorBounds",
    "stall_factor_bounds",
    "validate_stall_factor",
    "MEASURED_POLICIES",
    # execution
    "ExecutionBreakdown",
    "execution_breakdown",
    "execution_time",
    "full_stall_factor",
    "memory_delay_cycles",
    "mean_memory_delay",
    "miss_ratio",
    "hit_ratio",
    # tradeoff engine
    "TradeoffResult",
    "equivalence",
    "miss_cost_factor",
    "miss_volume_ratio",
    "odds",
    "hit_ratio_traded",
    "reverse_hit_ratio_traded",
    # envelopes
    "TradeoffBounds",
    "feature_bounds",
    "guaranteed_winner",
    # bus width
    "doubling_tradeoff",
    "miss_volume_ratio_for_doubling",
    "hit_ratio_gain_equivalent_to_doubling",
    "design_limit_hit_ratio",
    "asymptotic_hit_ratio",
    # stalling tradeoff
    "partial_stall_tradeoff",
    "partial_stall_miss_volume_ratio",
    "stall_factor_from_percentage",
    # write buffers
    "write_buffer_tradeoff",
    "write_buffer_miss_volume_ratio",
    # pipelined memory
    "pipelined_tradeoff",
    "pipelined_miss_volume_ratio",
    "pipelined_line_fill_time",
    "pipelined_vs_doubling_crossover",
    # features / Table 3
    "ArchFeature",
    "Table3Row",
    "feature_miss_ratio",
    "table3",
    # ranking
    "unified_comparison",
    "UnifiedComparison",
    "FeatureSweep",
    # line size & Smith
    "LineSizeDecision",
    "evaluate_line_size",
    "line_fill_time",
    "line_size_miss_count_ratio",
    "required_hit_ratio_gain",
    "ReducedDelayPoint",
    "reduced_memory_delay",
    "smith_optimal_line",
    "tradeoff_optimal_line",
    "criteria_agree",
    # multi-issue extension
    "multi_issue_execution_time",
    "multi_issue_tradeoff",
    # instruction / unified caches
    "instruction_miss_cost_factor",
    "instruction_cache_doubling_tradeoff",
    "unified_miss_cost_factor",
    "unified_cache_doubling_tradeoff",
    # write-around equivalence
    "WriteAroundSystem",
    "write_around_miss_volume_ratio",
    "write_around_doubling_tradeoff",
    "write_around_buffer_tradeoff",
    # speedup conversions
    "feature_speedup",
    "hit_ratio_speedup",
    "equivalence_check",
    # numeric equivalence solver
    "SystemUnderTest",
    "solve_equivalent_hit_ratio",
    # traffic model
    "TrafficReport",
    "traffic_report",
    "traffic_optimal_line",
    "ranking_disagreement",
    # sensitivity
    "OperatingPoint",
    "sensitivity",
    "sensitivity_report",
    "PARAMETER_NAMES",
]
