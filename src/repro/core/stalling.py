"""Processor stalling features and stalling-factor bounds (paper Table 2).

A cache miss delays the processor by ``phi * beta_m`` cycles, where the
*stalling factor* ``phi`` depends on how the cache blocks during a line
fill:

========  ===========================================  ================
feature   behaviour during a line fill                 phi bounds
========  ===========================================  ================
FS        full stalling — wait for the whole line      phi = L/D
BL        bus-locked — resume once the requested
          word arrives, but any load/store during
          the rest of the fill stalls to fill end      1 <= phi <= L/D
BNL1      bus not locked — other lines accessible;
          a second access to the in-flight line
          stalls until the whole line arrives          1 <= phi <= L/D
BNL2      like BNL1 but the second access stalls
          only if it touches a not-yet-fetched part
          (then waits for the whole line)              1 <= phi <= L/D
BNL3      the second access stalls only until its
          own word arrives (partial-line reads)        1 <= phi <= L/D
NB        non-blocking — misses overlap execution      0 <= phi <= L/D
========  ===========================================  ================

FS is the paper's *full-stalling* baseline; every other feature is
*partially stalling* (PS).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class StallPolicy(Enum):
    """The six stalling features of Table 2."""

    FULL_STALL = "FS"
    BUS_LOCKED = "BL"
    BUS_NOT_LOCKED_1 = "BNL1"
    BUS_NOT_LOCKED_2 = "BNL2"
    BUS_NOT_LOCKED_3 = "BNL3"
    NON_BLOCKING = "NB"

    @property
    def is_full_stalling(self) -> bool:
        """True only for the FS baseline."""
        return self is StallPolicy.FULL_STALL

    @property
    def is_partially_stalling(self) -> bool:
        """True for BL, BNL1-3 and NB (the paper's PS class)."""
        return not self.is_full_stalling

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class StallFactorBounds:
    """Closed interval of admissible stalling factors for a policy."""

    minimum: float
    maximum: float

    def contains(self, phi: float) -> bool:
        """Whether ``phi`` lies within the (inclusive) bounds."""
        return self.minimum <= phi <= self.maximum

    def clamp(self, phi: float) -> float:
        """``phi`` clipped into the bounds."""
        return min(self.maximum, max(self.minimum, phi))


def stall_factor_bounds(policy: StallPolicy, bus_cycles_per_line: float) -> StallFactorBounds:
    """Table 2: the admissible ``phi`` interval for ``policy``.

    Parameters
    ----------
    policy:
        The stalling feature.
    bus_cycles_per_line:
        ``L/D``, the upper bound for every policy.
    """
    if bus_cycles_per_line < 1:
        raise ValueError(f"L/D must be >= 1, got {bus_cycles_per_line}")
    top = float(bus_cycles_per_line)
    if policy is StallPolicy.FULL_STALL:
        return StallFactorBounds(top, top)
    if policy is StallPolicy.NON_BLOCKING:
        return StallFactorBounds(0.0, top)
    return StallFactorBounds(1.0, top)


def validate_stall_factor(
    policy: StallPolicy, phi: float, bus_cycles_per_line: float
) -> float:
    """Return ``phi`` unchanged if admissible for ``policy``, else raise.

    The FS policy pins ``phi`` to exactly ``L/D``; partially-stalling
    policies accept measured values within their Table 2 interval.
    """
    bounds = stall_factor_bounds(policy, bus_cycles_per_line)
    if not bounds.contains(phi):
        raise ValueError(
            f"stalling factor {phi} outside {policy.value} bounds "
            f"[{bounds.minimum}, {bounds.maximum}] for L/D={bus_cycles_per_line}"
        )
    return phi


#: Policies evaluated by trace-driven simulation in Figure 1.
MEASURED_POLICIES = (
    StallPolicy.BUS_LOCKED,
    StallPolicy.BUS_NOT_LOCKED_1,
    StallPolicy.BUS_NOT_LOCKED_2,
    StallPolicy.BUS_NOT_LOCKED_3,
)
