"""Per-feature miss-volume ratios in one place (paper Table 3).

Table 3 tabulates, for a write-allocate cache, the execution time and the
ratio of cache misses ``r`` each architectural feature affords against the
common baseline — a full-stalling cache on a non-pipelined memory.  This
module exposes that table programmatically: :func:`feature_miss_ratio`
dispatches on :class:`ArchFeature`, and :func:`table3` renders the whole
row set for a configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.bus_width import miss_volume_ratio_for_doubling
from repro.core.params import SystemConfig
from repro.core.pipelined import pipelined_miss_volume_ratio
from repro.core.stall_tradeoff import partial_stall_miss_volume_ratio
from repro.core.tradeoff import hit_ratio_traded
from repro.core.write_buffer import write_buffer_miss_volume_ratio


class ArchFeature(Enum):
    """The four performance-improving features of Table 3."""

    DOUBLING_BUS = "doubling-bus"
    PARTIAL_STALLING = "partially-stalling"
    WRITE_BUFFERS = "write-buffers"
    PIPELINED_MEMORY = "pipelined-memory"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def feature_miss_ratio(
    feature: ArchFeature,
    config: SystemConfig,
    flush_ratio: float = 0.5,
    measured_stall_factor: float | None = None,
) -> float:
    """Table 3: the miss-volume ratio ``r`` for ``feature``.

    ``measured_stall_factor`` is required for
    :attr:`ArchFeature.PARTIAL_STALLING` (a trace-measured ``phi``) and
    ignored otherwise.
    """
    if feature is ArchFeature.DOUBLING_BUS:
        return miss_volume_ratio_for_doubling(config, flush_ratio)
    if feature is ArchFeature.WRITE_BUFFERS:
        return write_buffer_miss_volume_ratio(config, flush_ratio)
    if feature is ArchFeature.PIPELINED_MEMORY:
        return pipelined_miss_volume_ratio(config, flush_ratio)
    if feature is ArchFeature.PARTIAL_STALLING:
        if measured_stall_factor is None:
            raise ValueError(
                "PARTIAL_STALLING needs a trace-measured stall factor phi"
            )
        return partial_stall_miss_volume_ratio(
            config, measured_stall_factor, flush_ratio
        )
    raise ValueError(f"unknown feature {feature!r}")  # pragma: no cover


@dataclass(frozen=True)
class Table3Row:
    """One Table 3 row: a feature, its ``r``, and the traded hit ratio."""

    feature: ArchFeature
    miss_volume_ratio: float
    hit_ratio_traded: float


def table3(
    config: SystemConfig,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
    measured_stall_factor: float | None = None,
) -> list[Table3Row]:
    """Every Table 3 row for ``config`` at ``base_hit_ratio``.

    The partially-stalling row is included only when a measured ``phi``
    is supplied (the paper obtains it from trace-driven simulation).
    """
    features = [
        ArchFeature.DOUBLING_BUS,
        ArchFeature.WRITE_BUFFERS,
        ArchFeature.PIPELINED_MEMORY,
    ]
    if measured_stall_factor is not None:
        features.insert(1, ArchFeature.PARTIAL_STALLING)
    rows = []
    for feature in features:
        r = feature_miss_ratio(
            feature,
            config,
            flush_ratio=flush_ratio,
            measured_stall_factor=measured_stall_factor,
        )
        rows.append(
            Table3Row(
                feature=feature,
                miss_volume_ratio=r,
                hit_ratio_traded=hit_ratio_traded(r, base_hit_ratio),
            )
        )
    return rows
