"""The unified tradeoff engine (paper Section 4, Eqs. 3-7).

Every tradeoff in the paper reduces to the same three steps:

1. Write the execution time of the base system and of the system with the
   candidate feature.  For a write-allocate cache both collapse to::

       X = E + Lambda_m * kappa,
       kappa = (phi + (L/D) * alpha) * beta_m - 1,

   where ``kappa`` is the *per-miss cost factor*: the extra cycles each
   missing load/store adds beyond its single issue cycle.  ``phi`` is the
   stalling factor, the ``(L/D) * alpha * beta_m`` part is the dirty-line
   flush, and the ``-1`` removes the issue cycle already counted in ``E``.

2. Equate the two execution times.  With the program fixed, the feature
   system can tolerate ``r = kappa_base / kappa_feature`` times the base
   system's miss volume: ``Lambda_m' = r * Lambda_m`` (Eq. 3 is exactly
   this ratio for bus-width doubling).

3. Convert the miss-volume ratio into a hit-ratio difference (Eqs. 4-6)::

       delta_HR = HR_base - HR_feature = (r - 1) / (s + 1)
                = (r - 1) * (1 - HR_base),       s = HR_base / (1 - HR_base).

The reverse direction (Eq. 7) uses the *feature* system as the base:
``delta_HR = (1 - 1/r) * (1 - HR_feature)``.
"""

from __future__ import annotations

from dataclasses import dataclass


def miss_cost_factor(
    stall_factor: float,
    flush_ratio: float,
    bus_cycles_per_line: float,
    memory_cycle: float,
) -> float:
    """``kappa = (phi + (L/D)*alpha) * beta_m - 1`` for a write-allocate cache.

    ``bus_cycles_per_line`` is the flush transfer length ``L/D`` on the bus
    that carries the copy-back traffic (halved when the bus is doubled).
    Raises when the result is non-positive — the model needs each miss to
    cost at least one extra cycle (the paper's ``beta_m >= 2`` design limit
    guarantees this).
    """
    if stall_factor < 0:
        raise ValueError(f"stall_factor must be non-negative, got {stall_factor}")
    if not 0.0 <= flush_ratio <= 1.0:
        raise ValueError(f"flush_ratio must be in [0, 1], got {flush_ratio}")
    kappa = (stall_factor + bus_cycles_per_line * flush_ratio) * memory_cycle - 1.0
    if kappa <= 0:
        raise ValueError(
            "per-miss cost factor must be positive; got "
            f"kappa={kappa} (phi={stall_factor}, alpha={flush_ratio}, "
            f"L/D={bus_cycles_per_line}, beta_m={memory_cycle})"
        )
    return kappa


def miss_volume_ratio(kappa_base: float, kappa_feature: float) -> float:
    """``r = kappa_base / kappa_feature`` (Eq. 3 in per-miss-cost form).

    ``r > 1`` means the feature system tolerates more misses — i.e. a
    smaller cache — at equal performance.
    """
    if kappa_base <= 0 or kappa_feature <= 0:
        raise ValueError("per-miss cost factors must be positive")
    return kappa_base / kappa_feature


def odds(hit_ratio: float) -> float:
    """``s = HR / (1 - HR)`` — the hit/miss odds of Eq. (4)."""
    if not 0.0 <= hit_ratio < 1.0:
        raise ValueError(f"hit_ratio must be in [0, 1), got {hit_ratio}")
    return hit_ratio / (1.0 - hit_ratio)


def hit_ratio_traded(r: float, base_hit_ratio: float) -> float:
    """Eq. (6): ``delta_HR = (r - 1) / (s + 1) = (r - 1)(1 - HR_base)``.

    Positive when the feature improves performance (``r > 1``): the base
    system's hit-ratio advantage that the feature is worth.
    """
    if r <= 0:
        raise ValueError(f"miss-volume ratio must be positive, got {r}")
    return (r - 1.0) / (odds(base_hit_ratio) + 1.0)


def reverse_hit_ratio_traded(r: float, feature_hit_ratio: float) -> float:
    """Eq. (7): hit ratio the base system must *gain* to match the feature.

    Uses the feature system's hit ratio as the anchor:
    ``delta_HR = (1 - 1/r)(1 - HR_feature)``.
    """
    if r <= 0:
        raise ValueError(f"miss-volume ratio must be positive, got {r}")
    return (1.0 - 1.0 / r) / (odds(feature_hit_ratio) + 1.0)


@dataclass(frozen=True)
class TradeoffResult:
    """Outcome of one feature-vs-hit-ratio equivalence.

    Attributes
    ----------
    miss_ratio_of_misses:
        ``r`` — feature-to-base miss volume ratio at equal performance.
    base_hit_ratio:
        ``HR_1`` of the system *without* the feature.
    feature_hit_ratio:
        ``HR_2 = HR_1 - delta`` the feature system can afford.
    """

    miss_ratio_of_misses: float
    base_hit_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_hit_ratio < 1.0:
            raise ValueError(
                f"base_hit_ratio must be in [0, 1), got {self.base_hit_ratio}"
            )
        if self.miss_ratio_of_misses <= 0:
            raise ValueError("miss-volume ratio must be positive")

    @property
    def hit_ratio_delta(self) -> float:
        """``delta_HR = HR_1 - HR_2`` (Eq. 6)."""
        return hit_ratio_traded(self.miss_ratio_of_misses, self.base_hit_ratio)

    @property
    def feature_hit_ratio(self) -> float:
        """Hit ratio the feature system needs for equal performance."""
        return self.base_hit_ratio - self.hit_ratio_delta

    @property
    def is_physical(self) -> bool:
        """Eq. (6) validity: the implied feature hit ratio must be >= 0."""
        return self.feature_hit_ratio >= 0.0


def equivalence(
    kappa_base: float, kappa_feature: float, base_hit_ratio: float
) -> TradeoffResult:
    """Full pipeline: per-miss costs -> r -> traded hit ratio."""
    r = miss_volume_ratio(kappa_base, kappa_feature)
    return TradeoffResult(miss_ratio_of_misses=r, base_hit_ratio=base_hit_ratio)
