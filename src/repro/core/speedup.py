"""Speedup conversions: from hit-ratio currency back to wall-clock.

The methodology prices features in hit ratio; designers usually also
want the raw execution-time ratio.  These helpers convert in both
directions for a concrete workload:

* :func:`feature_speedup` — execution-time ratio from adding a feature
  at a fixed cache (the naive question the paper refines);
* :func:`hit_ratio_speedup` — execution-time ratio from growing the
  cache at fixed features;
* :func:`equivalence_check` — the methodology's defining identity: the
  feature speedup equals the speedup of the Eq. (6)-traded hit-ratio
  increase, for any workload shape.
"""

from __future__ import annotations

from repro.core.execution import execution_time
from repro.core.features import ArchFeature
from repro.core.params import SystemConfig, workload_from_hit_ratio
from repro.core.pipelined import pipelined_line_fill_time
from repro.core.stalling import StallPolicy


def _feature_time(
    feature: ArchFeature,
    config: SystemConfig,
    hit_ratio: float,
    flush_ratio: float,
    measured_stall_factor: float | None,
    instructions: float,
    loadstore_fraction: float,
) -> float:
    """Eq. (2) with ``feature`` applied, at ``hit_ratio``."""
    if feature is ArchFeature.DOUBLING_BUS:
        wide = config.doubled_bus()
        workload = workload_from_hit_ratio(
            hit_ratio, wide, instructions, loadstore_fraction, flush_ratio
        )
        return execution_time(workload, wide)
    workload = workload_from_hit_ratio(
        hit_ratio, config, instructions, loadstore_fraction, flush_ratio
    )
    if feature is ArchFeature.WRITE_BUFFERS:
        return execution_time(workload, config, write_buffers=True)
    if feature is ArchFeature.PIPELINED_MEMORY:
        phi = pipelined_line_fill_time(config) / config.memory_cycle
        scale = phi / config.bus_cycles_per_line
        workload = workload_from_hit_ratio(
            hit_ratio,
            config,
            instructions,
            loadstore_fraction,
            flush_ratio * scale,
        )
        return execution_time(
            workload, config, stall_factor=phi, policy=StallPolicy.NON_BLOCKING
        )
    if feature is ArchFeature.PARTIAL_STALLING:
        if measured_stall_factor is None:
            raise ValueError("PARTIAL_STALLING needs a measured stall factor")
        return execution_time(
            workload,
            config,
            stall_factor=measured_stall_factor,
            policy=StallPolicy.BUS_NOT_LOCKED_1,
        )
    raise ValueError(f"unknown feature {feature!r}")  # pragma: no cover


def feature_speedup(
    feature: ArchFeature,
    config: SystemConfig,
    hit_ratio: float,
    flush_ratio: float = 0.5,
    measured_stall_factor: float | None = None,
    loadstore_fraction: float = 0.3,
) -> float:
    """Execution-time ratio baseline/feature at a fixed cache.

    Always >= 1 for the paper's features; grows with the miss volume
    (lower hit ratio means more for the feature to accelerate).
    """
    instructions = 1_000_000.0
    baseline_workload = workload_from_hit_ratio(
        hit_ratio, config, instructions, loadstore_fraction, flush_ratio
    )
    baseline = execution_time(baseline_workload, config)
    improved = _feature_time(
        feature,
        config,
        hit_ratio,
        flush_ratio,
        measured_stall_factor,
        instructions,
        loadstore_fraction,
    )
    return baseline / improved


def hit_ratio_speedup(
    config: SystemConfig,
    from_hit_ratio: float,
    to_hit_ratio: float,
    flush_ratio: float = 0.5,
    loadstore_fraction: float = 0.3,
) -> float:
    """Execution-time ratio from raising the hit ratio (growing the cache)."""
    if to_hit_ratio < from_hit_ratio:
        raise ValueError(
            f"to_hit_ratio ({to_hit_ratio}) below from_hit_ratio "
            f"({from_hit_ratio}); that is a slowdown, not a speedup"
        )
    instructions = 1_000_000.0
    before = execution_time(
        workload_from_hit_ratio(
            from_hit_ratio, config, instructions, loadstore_fraction, flush_ratio
        ),
        config,
    )
    after = execution_time(
        workload_from_hit_ratio(
            to_hit_ratio, config, instructions, loadstore_fraction, flush_ratio
        ),
        config,
    )
    return before / after


def equivalence_check(
    feature: ArchFeature,
    config: SystemConfig,
    base_hit_ratio: float,
    flush_ratio: float = 0.5,
    measured_stall_factor: float | None = None,
) -> tuple[float, float]:
    """(feature speedup, equivalent-hit-ratio speedup) — must match.

    The second element raises the hit ratio by the Eq. (7) reverse-traded
    amount instead of adding the feature; the methodology's soundness is
    that both deliver the same speedup.
    """
    from repro.core.features import feature_miss_ratio
    from repro.core.tradeoff import reverse_hit_ratio_traded

    r = feature_miss_ratio(
        feature,
        config,
        flush_ratio=flush_ratio,
        measured_stall_factor=measured_stall_factor,
    )
    gain = reverse_hit_ratio_traded(r, base_hit_ratio)
    return (
        feature_speedup(
            feature,
            config,
            base_hit_ratio,
            flush_ratio,
            measured_stall_factor,
        ),
        hit_ratio_speedup(
            config, base_hit_ratio, base_hit_ratio + gain, flush_ratio
        ),
    )
