"""Unified command-line interface: ``python -m repro <command>``.

Commands
--------
experiments
    Regenerate paper tables/figures (same as ``repro.experiments.runner``).
advise
    Rank architectural features for a design brief (Section 5.3 as a tool).
generate-trace
    Write a synthetic workload trace to a file.
characterize
    Extract the Table 1 parameters {E, R, W, alpha} (and optionally phi)
    from a trace file against a cache configuration.
simulate
    Run a trace file through the timing simulator and report cycles.
sweep
    Evaluate a feature's traded hit ratio over custom parameter grids.
serve
    Start the HTTP/JSON tradeoff-query server (see ``docs/SERVICE.md``).
campaign
    Declarative sweep campaigns: submit, resume, diff, promote
    (see ``docs/CAMPAIGNS.md``).
cache
    Offline store maintenance (``cache gc --budget-mib N``) for the
    events / reuse-profile / result stores.
obs
    Observability consumers: ``obs timeline`` assembles an offline
    fleet timeline from span spools (see ``docs/OBSERVABILITY.md``);
    ``obs validate`` is an alias for ``repro.obs.validate``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.characterize import characterize
from repro.analysis.design_advisor import DesignBrief, recommend
from repro.analysis.short_levy import short_levy_curve
from repro.cache.cache import CacheConfig
from repro.core.params import SystemConfig
from repro.core.stalling import StallPolicy
from repro.cpu.replay import simulate
from repro.memory.mainmem import MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.obs import logs, metrics, tracing
from repro.trace.io import read_trace, write_trace
from repro.trace.markov import three_phase_example
from repro.trace.spec92 import SPEC92_PROFILES, spec92_trace


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-bytes", type=int, default=8192)
    parser.add_argument("--line-size", type=int, default=32)
    parser.add_argument("--associativity", type=int, default=2)


def _add_memory_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bus-width", type=int, default=4)
    parser.add_argument("--memory-cycle", type=float, default=8.0)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="diagnostics on stderr (-v info, -vv debug)",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="explicit log level (debug/info/warning/error); wins over -v",
    )
    parser.add_argument(
        "--trace",
        dest="trace_out",
        metavar="FILE",
        help="record spans into a Chrome-trace JSON (view in Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        dest="metrics_out",
        metavar="FILE",
        help="write the collected metrics snapshot as JSON",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiments = commands.add_parser(
        "experiments", help="regenerate paper tables/figures"
    )
    experiments.add_argument("args", nargs=argparse.REMAINDER)

    advise = commands.add_parser("advise", help="rank features for a design")
    _add_memory_arguments(advise)
    advise.add_argument("--line-size", type=int, default=32)
    advise.add_argument("--cache-kib", type=int, default=8)
    advise.add_argument("--turnaround", type=float, default=2.0)
    advise.add_argument(
        "--stall-factor",
        type=float,
        default=None,
        help="trace-measured phi enabling the partially-stalling row",
    )

    generate = commands.add_parser("generate-trace", help="write a trace file")
    generate.add_argument("output", help="trace file path")
    generate.add_argument(
        "--workload",
        default="swm256",
        choices=[*SPEC92_PROFILES, "markov3"],
    )
    generate.add_argument("--instructions", type=int, default=50_000)
    generate.add_argument("--seed", type=int, default=0)

    character = commands.add_parser(
        "characterize", help="extract Table 1 parameters from a trace"
    )
    character.add_argument("trace", help="trace file path")
    _add_cache_arguments(character)
    _add_memory_arguments(character)
    character.add_argument(
        "--measure-phi",
        action="store_true",
        help="also measure BNL1/BNL3 stalling factors (slower)",
    )

    sweep_cmd = commands.add_parser(
        "sweep", help="sweep a feature's traded hit ratio over parameters"
    )
    sweep_cmd.add_argument(
        "feature",
        choices=["doubling-bus", "write-buffers", "pipelined-memory"],
    )
    sweep_cmd.add_argument(
        "--range",
        dest="ranges",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help="e.g. --range memory_cycle=2:20:2 --range line_size=8,16,32",
    )
    sweep_cmd.add_argument("--out", help="write the sweep CSV to this file")

    simulate = commands.add_parser("simulate", help="cycle-count a trace")
    simulate.add_argument("trace", help="trace file path")
    _add_cache_arguments(simulate)
    _add_memory_arguments(simulate)
    simulate.add_argument(
        "--policy",
        default="FS",
        choices=[policy.value for policy in StallPolicy],
    )
    simulate.add_argument("--stall-factor", type=float, default=None)
    simulate.add_argument("--write-buffer-depth", type=int, default=None)
    simulate.add_argument(
        "--pipelined-q",
        type=float,
        default=None,
        help="use a pipelined memory with this turnaround",
    )

    serve = commands.add_parser(
        "serve", help="start the HTTP/JSON tradeoff-query server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8472)
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max simulate requests queued or computing before 429s",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="how long the scheduler waits for requests to coalesce",
    )
    serve.add_argument(
        "--result-cache-mib",
        type=float,
        default=8.0,
        help="byte budget for the in-process result cache",
    )
    serve.add_argument(
        "--default-deadline-s",
        type=float,
        default=30.0,
        help="deadline for requests that do not send deadline_ms",
    )
    serve.add_argument(
        "--access-log",
        metavar="FILE",
        default=None,
        help="append one JSONL access-log line per served request",
    )
    serve.add_argument(
        "--span-ring-capacity",
        type=int,
        default=4096,
        help="bounded span ring for /v1/debug/trace (0 disables)",
    )
    serve.add_argument(
        "--span-spool-dir",
        metavar="DIR",
        default=None,
        help="spool finished spans to checksummed JSONL under this "
        "directory (fleet: one subdirectory per process; merge with "
        "`repro obs timeline --spool DIR`)",
    )
    serve.add_argument(
        "--profile-max-seconds",
        type=float,
        default=10.0,
        help="longest /v1/debug/profile sampling window accepted",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes; >1 runs the sharded fleet "
        "(default: the machine's CPU count)",
    )
    serve.add_argument(
        "--worker-id",
        default=None,
        help=argparse.SUPPRESS,  # set by the fleet router on its workers
    )
    serve.add_argument(
        "--keepalive-timeout",
        type=float,
        default=75.0,
        help="close idle keep-alive connections after this many seconds "
        "(0 disables the timeout)",
    )
    serve.add_argument(
        "--shed-watermark",
        type=int,
        default=None,
        help="shed cache-miss simulate work with 429 once the batch "
        "queue is this deep (default: no admission control)",
    )
    serve.add_argument(
        "--disk-cache-dir",
        metavar="DIR",
        default=None,
        help="enable the disk-backed result cache in this directory "
        "(shared across fleet workers; survives restarts)",
    )
    serve.add_argument(
        "--disk-cache-mib",
        type=float,
        default=64.0,
        help="byte budget for the disk-backed result cache",
    )
    serve.add_argument(
        "--campaign-dir",
        metavar="DIR",
        default=None,
        help="enable the /v1/campaigns endpoints with this registry "
        "directory (campaigns run in the server as background work)",
    )
    return parser


def _cmd_experiments(options: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    return runner_main(options.args)


def _cmd_advise(options: argparse.Namespace) -> int:
    brief = DesignBrief(
        config=SystemConfig(
            options.bus_width,
            options.line_size,
            options.memory_cycle,
            pipeline_turnaround=options.turnaround,
        ),
        cache_bytes=options.cache_kib * 1024,
        hit_ratio_curve=short_levy_curve(),
        measured_stall_factor=options.stall_factor,
    )
    print(
        f"Design: D={options.bus_width} B, L={options.line_size} B, "
        f"beta_m={options.memory_cycle:g}, {options.cache_kib}K cache "
        f"(HR {brief.base_hit_ratio:.2%})"
    )
    for rank, rec in enumerate(recommend(brief), start=1):
        print(f"  {rank}. {rec.summary}")
    return 0


def _cmd_generate_trace(options: argparse.Namespace) -> int:
    if options.workload == "markov3":
        trace = three_phase_example().build(options.instructions, options.seed)
    else:
        trace = spec92_trace(options.workload, options.instructions, options.seed)
    count = write_trace(options.output, trace)
    print(f"wrote {count} instructions to {options.output}")
    return 0


def _cache_config(options: argparse.Namespace) -> CacheConfig:
    return CacheConfig(
        total_bytes=options.cache_bytes,
        line_size=options.line_size,
        associativity=options.associativity,
    )


def _cmd_characterize(options: argparse.Namespace) -> int:
    trace = list(read_trace(options.trace))
    policies = (StallPolicy.BUS_NOT_LOCKED_1, StallPolicy.BUS_NOT_LOCKED_3)
    run = characterize(
        trace,
        _cache_config(options),
        measure_phi=options.measure_phi,
        policies=policies,
        memory_cycle=options.memory_cycle,
        bus_width=options.bus_width,
    )
    workload = run.workload
    print(f"E      = {workload.instructions:.0f} instructions")
    print(f"R      = {workload.read_bytes:.0f} bytes")
    print(f"W      = {workload.write_around_misses:.0f} write-around misses")
    print(f"alpha  = {workload.flush_ratio:.3f}")
    print(f"refs   = {run.references} (HR {run.hit_ratio:.2%})")
    for policy, phi in run.stall_factors.items():
        print(f"phi[{policy.value}] = {phi:.3f}")
    return 0


def _cmd_simulate(options: argparse.Namespace) -> int:
    trace = list(read_trace(options.trace))
    if options.pipelined_q is not None:
        memory = PipelinedMemory(
            options.memory_cycle, options.bus_width, options.pipelined_q
        )
    else:
        memory = MainMemory(options.memory_cycle, options.bus_width)
    # One call site for both engines: the two-phase replay when the
    # configuration supports it, the step-simulator oracle otherwise
    # (identical results either way — the equivalence suite pins it).
    result = simulate(
        trace,
        _cache_config(options),
        memory,
        policy=StallPolicy(options.policy),
        write_buffer_depth=options.write_buffer_depth,
    )
    ld = options.line_size // options.bus_width
    print(f"instructions    = {result.instructions}")
    print(f"cycles          = {result.cycles:.0f}  (CPI {result.cpi:.3f})")
    print(f"read-miss stall = {result.read_miss_stall_cycles:.0f}")
    print(f"flush stall     = {result.flush_stall_cycles:.0f}")
    print(f"write stall     = {result.write_stall_cycles:.0f}")
    print(f"line fills      = {result.line_fills}")
    print(
        f"phi             = {result.stall_factor:.3f} "
        f"({result.stall_percentage(ld):.1f}% of L/D)"
    )
    return 0


def _cmd_sweep(options: argparse.Namespace) -> int:
    from repro.core.features import ArchFeature
    from repro.experiments.sweep import parse_range, records_to_csv, sweep

    ranges = {}
    for spec in options.ranges:
        if "=" not in spec:
            print(f"bad --range {spec!r}: expected NAME=SPEC", file=sys.stderr)
            return 2
        name, values = spec.split("=", 1)
        ranges[name.strip()] = parse_range(values)
    if not ranges:
        ranges = {"memory_cycle": parse_range("2:20:2")}
    records = sweep(ArchFeature(options.feature), ranges)
    csv_text = records_to_csv(records)
    if options.out:
        from pathlib import Path

        Path(options.out).write_text(csv_text)
        print(f"wrote {len(records)} grid points to {options.out}")
    else:
        print(csv_text, end="")
    return 0


def _cmd_serve(options: argparse.Namespace) -> int:
    import os

    from repro.service.server import ServerConfig, run_server

    workers = options.workers if options.workers is not None else os.cpu_count() or 1
    if workers < 1:
        print(f"error: --workers must be >= 1, got {workers}", file=sys.stderr)
        return 2
    config = ServerConfig(
        host=options.host,
        port=options.port,
        queue_limit=options.queue_limit,
        batch_window_s=options.batch_window_ms / 1000.0,
        result_cache_bytes=int(options.result_cache_mib * 1024 * 1024),
        default_deadline_s=options.default_deadline_s,
        access_log_path=options.access_log,
        span_ring_capacity=options.span_ring_capacity,
        span_spool_dir=options.span_spool_dir,
        profile_max_seconds=options.profile_max_seconds,
        keepalive_timeout_s=(
            options.keepalive_timeout if options.keepalive_timeout > 0 else None
        ),
        shed_watermark=options.shed_watermark,
        worker_id=options.worker_id,
        disk_cache_dir=options.disk_cache_dir,
        disk_cache_bytes=int(options.disk_cache_mib * 1024 * 1024),
        campaign_dir=options.campaign_dir,
    )
    if workers > 1:
        from repro.service.router import FleetConfig, run_fleet

        run_fleet(FleetConfig(base=config, workers=workers))
    else:
        run_server(config)
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "sweep": _cmd_sweep,
    "advise": _cmd_advise,
    "generate-trace": _cmd_generate_trace,
    "characterize": _cmd_characterize,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "experiments":
        # Delegate wholesale — the runner owns its option parsing
        # (including --trace/--metrics/-v), and argparse's REMAINDER
        # cannot capture leading options like --list.
        from repro.experiments.runner import main as runner_main

        return runner_main(argv[1:])
    if argv and argv[0] == "campaign":
        # Same wholesale delegation: the campaign CLI owns its parsing.
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.util.store_gc import main as cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "obs":
        # Observability consumers (timeline assembly, validation) own
        # their parsing, like the other delegated sub-CLIs.
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    options = _build_parser().parse_args(argv)
    logs.configure(verbosity=options.verbose, level=options.log_level)
    tracer = tracing.enable_tracing() if options.trace_out else None
    registry = metrics.enable_metrics() if options.metrics_out else None
    try:
        status = _COMMANDS[options.command](options)
    finally:
        if registry is not None:
            from repro.util.jsonout import write_json

            metrics.disable_metrics()
            path = write_json(
                options.metrics_out,
                {"schema": metrics.SNAPSHOT_SCHEMA, **registry.snapshot()},
            )
            print(f"[metrics written to {path}]")
        if tracer is not None:
            tracing.disable_tracing()
            path = tracer.write(options.trace_out)
            print(
                f"[trace written to {path}; open in https://ui.perfetto.dev]"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
