"""Consistent-hash ring sharding events-store keys across fleet workers.

The fleet router (:mod:`repro.service.router`) must send every
``/v1/simulate`` request for the same *(trace, geometry)* events-store
key to the same worker process, or micro-batch coalescing and the
reuse-profile memo stop winning (``docs/SERVICE.md``).  A plain
``hash(key) % N`` would do that — until a worker dies or the fleet is
resized, at which point *every* key moves and every worker's memo goes
cold at once.

:class:`HashRing` is the classic fix: each worker owns
:data:`DEFAULT_REPLICAS` pseudo-random points on a 2^64 ring (the
truncated SHA-256 of ``"<node>#<i>"``), and a key belongs to the first
worker point clockwise of the key's own hash.  Properties (pinned by
``tests/property/test_property_shard.py``):

* **deterministic** — ownership is a pure function of the node set, so
  every router instance, restart, and test agrees;
* **stable slots** — workers are named by slot (``w0``..``wN-1``), so a
  *restarted* worker re-owns exactly its predecessor's range;
* **bounded movement** — adding a node only moves keys *to* it
  (expected ``K/N`` of them); removing a node only moves *its* keys,
  which scatter over the survivors.  No key ever moves between two
  surviving nodes;
* **full coverage** — every key has exactly one owner while the ring is
  non-empty.

Everything is stdlib (``hashlib`` + ``bisect``); ownership lookup is
O(log(nodes * replicas)).
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

#: Virtual points per node.  More points smooth the load split between
#: nodes (the share a node owns concentrates around 1/N); 64 keeps the
#: worst-case imbalance low single-digit percent for small fleets while
#: the ring stays a few hundred entries.
DEFAULT_REPLICAS = 64


def ring_hash(value: str) -> int:
    """Position of ``value`` on the 2^64 ring (truncated SHA-256)."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing over named nodes with virtual points."""

    def __init__(
        self, nodes: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        # Sorted (point, node) pairs; the node tie-break makes ownership
        # deterministic even on a (vanishingly unlikely) hash collision.
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        """The current node set."""
        return frozenset(self._nodes)

    def _node_points(self, node: str) -> list[tuple[int, str]]:
        return [
            (ring_hash(f"{node}#{index}"), node)
            for index in range(self.replicas)
        ]

    def add(self, node: str) -> None:
        """Add a node (idempotent)."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for point in self._node_points(node):
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        """Remove a node (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        gone = set(self._node_points(node))
        self._points = [point for point in self._points if point not in gone]

    def owner(self, key: str) -> str:
        """The node owning ``key`` (raises on an empty ring)."""
        if not self._points:
            raise ValueError("cannot shard over an empty ring")
        position = ring_hash(key)
        # First ring point at or clockwise of the key, wrapping at 2^64.
        index = bisect.bisect_left(self._points, (position, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys-per-node histogram (diagnostics and tests)."""
        counts = {node: 0 for node in sorted(self._nodes)}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts


def worker_names(n: int) -> list[str]:
    """The stable slot names a fleet of ``n`` workers shards over.

    Slot identity — not pid, not port — is what a respawned worker
    inherits, so a restart re-owns the dead worker's range unchanged.
    """
    if n < 1:
        raise ValueError(f"need at least one worker, got {n}")
    return [f"w{slot}" for slot in range(n)]
