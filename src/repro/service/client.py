"""Blocking client for :mod:`repro.service` (stdlib ``http.client``).

One :class:`ServiceClient` holds one persistent connection, so a
closed-loop load-generator thread maps one-to-one onto a server-side
connection coroutine.  Methods mirror the endpoints; each returns the
decoded ``result`` object and raises :class:`ServiceError` (carrying
the structured error envelope) on any non-200 answer.

Every client also keeps :class:`ClientStats` — per-call wall time (the
client-side view, including the network and any reconnect), a retry
counter for the drain-time reconnect path, and an error count — which
``benchmarks/bench_service.py`` surfaces next to the server-side
latency so the two views can be compared.  The server's
``X-Repro-Request-Id`` echo is captured per call as
:attr:`ServiceClient.last_request_id`, and callers can pin their own id
by passing ``request_id=`` to :meth:`ServiceClient.request`.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from collections import deque
from typing import Any

from repro.obs.live import REQUEST_ID_HEADER
from repro.obs.metrics import percentile

#: Client-side latency samples retained for the stats percentiles.
CLIENT_LATENCY_WINDOW = 4096


class ServiceError(Exception):
    """A non-200 answer, with the server's structured error envelope."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class ClientStats:
    """Per-client call accounting: wall times, retries, errors."""

    def __init__(self) -> None:
        self.calls = 0
        self.retries = 0
        self.errors = 0
        self._latency_ms: deque[float] = deque(maxlen=CLIENT_LATENCY_WINDOW)

    def record(self, latency_ms: float, error: bool) -> None:
        """Fold one finished round trip into the stats."""
        self.calls += 1
        if error:
            self.errors += 1
        self._latency_ms.append(latency_ms)

    def latency_percentile(self, q: float) -> float:
        """Client-side latency percentile over the retained window."""
        return percentile(list(self._latency_ms), q)

    def latencies(self) -> list[float]:
        """The retained per-call wall times, in arrival order."""
        return list(self._latency_ms)

    def summary(self) -> dict[str, Any]:
        """JSON-ready view (what ``bench_service.py`` embeds)."""
        values = list(self._latency_ms)
        return {
            "calls": self.calls,
            "retries": self.retries,
            "errors": self.errors,
            "latency_ms": {
                "p50": round(percentile(values, 50.0), 3) if values else 0.0,
                "p99": round(percentile(values, 99.0), 3) if values else 0.0,
            },
        }


class ServiceClient:
    """One keep-alive connection to a running service."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.stats = ClientStats()
        self.last_request_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the connection (safe to call repeatedly)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _round_trip(
        self,
        method: str,
        path: str,
        body: str | None,
        headers: dict[str, str],
    ) -> tuple[http.client.HTTPResponse, bytes]:
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
        except (ConnectionError, http.client.HTTPException, socket.timeout):
            # A draining server answers with Connection: close; retry the
            # request once on a fresh connection before giving up.
            self.close()
            self.stats.retries += 1
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
        if response.getheader("Connection", "keep-alive").lower() == "close":
            self.close()
        self.last_request_id = response.getheader(REQUEST_ID_HEADER)
        return response, payload

    def request(
        self,
        method: str,
        path: str,
        params: dict[str, Any] | None = None,
        request_id: str | None = None,
    ) -> dict[str, Any]:
        """One round trip; returns the decoded response envelope."""
        body = None
        headers: dict[str, str] = {}
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        if params is not None:
            body = json.dumps({"params": params})
            headers["Content-Type"] = "application/json"
        started = time.perf_counter()
        error = True
        try:
            response, payload = self._round_trip(method, path, body, headers)
            envelope = json.loads(payload)
            if response.status != 200:
                envelope_error = envelope.get("error", {})
                raise ServiceError(
                    response.status,
                    envelope_error.get("code", "unknown"),
                    envelope_error.get(
                        "message", payload.decode("utf-8", "replace")
                    ),
                )
            error = False
            return envelope
        finally:
            self.stats.record(
                (time.perf_counter() - started) * 1000.0, error=error
            )

    def get_text(
        self, path: str, request_id: str | None = None
    ) -> tuple[int, str]:
        """Fetch a text endpoint (``/metrics``); returns (status, text)."""
        headers = {REQUEST_ID_HEADER: request_id} if request_id else {}
        started = time.perf_counter()
        error = True
        try:
            response, payload = self._round_trip("GET", path, None, headers)
            error = response.status != 200
            return response.status, payload.decode("utf-8")
        finally:
            self.stats.record(
                (time.perf_counter() - started) * 1000.0, error=error
            )

    # -- endpoints --------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Poll ``/v1/health`` until the server answers (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except (OSError, http.client.HTTPException):
                self.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")["result"]

    def healthz(self) -> dict[str, Any]:
        """Liveness probe (stays 200 during drain)."""
        return self.request("GET", "/healthz")

    def readyz(self) -> dict[str, Any]:
        """Readiness probe (raises ``ServiceError(503)`` during drain)."""
        return self.request("GET", "/readyz")

    def metrics_text(self) -> str:
        """The Prometheus exposition body of ``GET /metrics``."""
        status, text = self.get_text("/metrics")
        if status != 200:
            raise ServiceError(status, "metrics_failed", text)
        return text

    def debug_trace(self, last: int | None = None) -> dict[str, Any]:
        """The span ring tail (``GET /v1/debug/trace?last=N``)."""
        path = "/v1/debug/trace"
        if last is not None:
            path += f"?last={last}"
        return self.request("GET", path)

    def debug_profile(
        self, seconds: float | None = None, hz: int | None = None
    ) -> dict[str, Any]:
        """One on-demand sampling window (``GET /v1/debug/profile``).

        Blocks for ``seconds`` while the server samples itself; returns
        the ``repro.obs.profile/1`` document.  Raises
        ``ServiceError(409)`` if a window is already running.
        """
        query = []
        if seconds is not None:
            query.append(f"seconds={seconds:g}")
        if hz is not None:
            query.append(f"hz={hz}")
        path = "/v1/debug/profile"
        if query:
            path += "?" + "&".join(query)
        return self.request("GET", path)

    def stats_envelope(self) -> dict[str, Any]:
        """The full stats envelope (snapshot + queue + caches + latency)."""
        return self.request("GET", "/v1/stats")

    def execution_time(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/execution-time", params)["result"]

    def tradeoff(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/tradeoff", params)["result"]

    def ranking(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/ranking", params)["result"]

    def advise(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/advise", params)["result"]

    def simulate(self, **params: Any) -> dict[str, Any]:
        """The full simulate envelope (``result`` plus ``cached``)."""
        return self.request("POST", "/v1/simulate", params)
