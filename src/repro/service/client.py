"""Blocking client for :mod:`repro.service` (stdlib ``http.client``).

One :class:`ServiceClient` holds one persistent connection, so a
closed-loop load-generator thread maps one-to-one onto a server-side
connection coroutine.  Methods mirror the endpoints; each returns the
decoded ``result`` object and raises :class:`ServiceError` (carrying
the structured error envelope) on any non-200 answer.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any


class ServiceError(Exception):
    """A non-200 answer, with the server's structured error envelope."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """One keep-alive connection to a running service."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the connection (safe to call repeatedly)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def request(
        self, method: str, path: str, params: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """One round trip; returns the decoded response envelope."""
        body = None
        headers = {}
        if params is not None:
            body = json.dumps({"params": params})
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
        except (ConnectionError, http.client.HTTPException, socket.timeout):
            # A draining server answers with Connection: close; retry the
            # request once on a fresh connection before giving up.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
        if response.getheader("Connection", "keep-alive").lower() == "close":
            self.close()
        envelope = json.loads(payload)
        if response.status != 200:
            error = envelope.get("error", {})
            raise ServiceError(
                response.status,
                error.get("code", "unknown"),
                error.get("message", payload.decode("utf-8", "replace")),
            )
        return envelope

    # -- endpoints --------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Poll ``/v1/health`` until the server answers (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except (OSError, http.client.HTTPException):
                self.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")["result"]

    def stats(self) -> dict[str, Any]:
        """The full stats envelope (snapshot + queue + caches + latency)."""
        return self.request("GET", "/v1/stats")

    def execution_time(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/execution-time", params)["result"]

    def tradeoff(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/tradeoff", params)["result"]

    def ranking(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/ranking", params)["result"]

    def advise(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/advise", params)["result"]

    def simulate(self, **params: Any) -> dict[str, Any]:
        """The full simulate envelope (``result`` plus ``cached``)."""
        return self.request("POST", "/v1/simulate", params)
