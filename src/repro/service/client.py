"""Blocking client for :mod:`repro.service` (stdlib ``http.client``).

One :class:`ServiceClient` holds one persistent connection, so a
closed-loop load-generator thread maps one-to-one onto a server-side
connection coroutine.  Methods mirror the endpoints; each returns the
decoded ``result`` object and raises :class:`ServiceError` (carrying
the structured error envelope) on any non-200 answer.

Every client also keeps :class:`ClientStats` — per-call wall time (the
client-side view, including the network and any reconnect), a retry
counter for the drain-time reconnect path, and an error count — which
``benchmarks/bench_service.py`` surfaces next to the server-side
latency so the two views can be compared.  The server's
``X-Repro-Request-Id`` echo is captured per call as
:attr:`ServiceClient.last_request_id`, and callers can pin their own id
by passing ``request_id=`` to :meth:`ServiceClient.request`.

Busy-server backoff is **opt-in**: constructed with ``busy_retries=N``,
a client answers 429 (backpressure/shed) and 503 (draining) with capped
exponential backoff and deterministic jitter — the jitter stream is
seeded (``backoff_seed``), so a retry schedule is reproducible run to
run.  The default stays ``busy_retries=0`` because immediate 429s are
themselves part of the service's contract (the robustness suite pins
that a full queue answers *without* delay).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from collections import deque
from collections.abc import Iterator
from typing import Any

from repro.obs.live import REQUEST_ID_HEADER, TRACE_ID_HEADER, TRACEPARENT_HEADER
from repro.obs.metrics import percentile

#: Client-side latency samples retained for the stats percentiles.
CLIENT_LATENCY_WINDOW = 4096

#: Statuses that mean "healthy but refusing new work right now" — the
#: only ones the opt-in backoff loop retries.
BUSY_STATUSES = frozenset({429, 503})

#: Default first-retry delay for the opt-in backoff loop.
DEFAULT_BACKOFF_BASE_S = 0.05

#: Default ceiling on any single backoff sleep.
DEFAULT_BACKOFF_CAP_S = 2.0


def backoff_delays(
    base_s: float, cap_s: float, seed: int
) -> Iterator[float]:
    """The capped-exponential, deterministically jittered delay stream.

    Attempt *k* sleeps ``min(cap, base * 2**k) * u`` where ``u`` is
    drawn uniformly from [0.5, 1.0) by a :class:`random.Random` seeded
    with ``seed`` — "equal jitter"-style: never more than the cap,
    never less than half the nominal delay, and the exact sequence is
    reproducible from the seed.
    """
    rng = random.Random(seed)
    attempt = 0
    while True:
        nominal = min(cap_s, base_s * (2.0**attempt))
        yield nominal * rng.uniform(0.5, 1.0)
        attempt += 1


class ServiceError(Exception):
    """A non-200 answer, with the server's structured error envelope."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class ClientStats:
    """Per-client call accounting: wall times, retries, errors."""

    def __init__(self) -> None:
        self.calls = 0
        self.retries = 0
        self.errors = 0
        self.backoffs = 0
        self.backoff_wait_s = 0.0
        self._latency_ms: deque[float] = deque(maxlen=CLIENT_LATENCY_WINDOW)

    def record(self, latency_ms: float, error: bool) -> None:
        """Fold one finished round trip into the stats."""
        self.calls += 1
        if error:
            self.errors += 1
        self._latency_ms.append(latency_ms)

    def latency_percentile(self, q: float) -> float:
        """Client-side latency percentile over the retained window."""
        return percentile(list(self._latency_ms), q)

    def latencies(self) -> list[float]:
        """The retained per-call wall times, in arrival order."""
        return list(self._latency_ms)

    def summary(self) -> dict[str, Any]:
        """JSON-ready view (what ``bench_service.py`` embeds)."""
        values = list(self._latency_ms)
        return {
            "calls": self.calls,
            "retries": self.retries,
            "errors": self.errors,
            "backoffs": self.backoffs,
            "backoff_wait_s": round(self.backoff_wait_s, 6),
            "latency_ms": {
                "p50": round(percentile(values, 50.0), 3) if values else 0.0,
                "p99": round(percentile(values, 99.0), 3) if values else 0.0,
            },
        }


class ServiceClient:
    """One keep-alive connection to a running service."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        busy_retries: int = 0,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        backoff_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.busy_retries = busy_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.backoff_seed = backoff_seed
        self.stats = ClientStats()
        self.last_request_id: str | None = None
        #: Trace id the server minted (or adopted) for the last call,
        #: from its ``X-Repro-Trace-Id`` echo — hand it straight to
        #: ``debug_trace(trace_id=...)`` to pull that request's tree.
        self.last_trace_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None
        self._sleep = time.sleep  # swappable in tests

    # -- plumbing ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the connection (safe to call repeatedly)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _round_trip(
        self,
        method: str,
        path: str,
        body: str | None,
        headers: dict[str, str],
    ) -> tuple[http.client.HTTPResponse, bytes]:
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
        except (ConnectionError, http.client.HTTPException, socket.timeout):
            # A draining server answers with Connection: close; retry the
            # request once on a fresh connection before giving up.
            self.close()
            self.stats.retries += 1
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
        if response.getheader("Connection", "keep-alive").lower() == "close":
            self.close()
        self.last_request_id = response.getheader(REQUEST_ID_HEADER)
        self.last_trace_id = response.getheader(TRACE_ID_HEADER)
        return response, payload

    def request(
        self,
        method: str,
        path: str,
        params: dict[str, Any] | None = None,
        request_id: str | None = None,
        traceparent: str | None = None,
    ) -> dict[str, Any]:
        """One logical call; returns the decoded response envelope.

        With ``busy_retries > 0``, a 429/503 answer is retried up to
        that many times with capped-exponential, seeded-jitter backoff
        (see :func:`backoff_delays`); every other failure — and the
        default configuration — surfaces immediately.  ``traceparent``
        pins the request's W3C trace context (clients embedded in a
        traced pipeline pass :func:`repro.obs.live.current_traceparent`);
        without it the server mints a fresh trace id, echoed back as
        :attr:`last_trace_id` either way.
        """
        if self.busy_retries <= 0:
            return self._request_once(method, path, params, request_id, traceparent)
        delays = backoff_delays(
            self.backoff_base_s, self.backoff_cap_s, self.backoff_seed
        )
        attempts = 0
        while True:
            try:
                return self._request_once(
                    method, path, params, request_id, traceparent
                )
            except ServiceError as error:
                if (
                    error.status not in BUSY_STATUSES
                    or attempts >= self.busy_retries
                ):
                    raise
                delay = next(delays)
                self.stats.backoffs += 1
                self.stats.backoff_wait_s += delay
                self._sleep(delay)
                attempts += 1

    def _request_once(
        self,
        method: str,
        path: str,
        params: dict[str, Any] | None = None,
        request_id: str | None = None,
        traceparent: str | None = None,
    ) -> dict[str, Any]:
        """One round trip; returns the decoded response envelope."""
        body = None
        headers: dict[str, str] = {}
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        if traceparent is not None:
            headers[TRACEPARENT_HEADER] = traceparent
        if params is not None:
            body = json.dumps({"params": params})
            headers["Content-Type"] = "application/json"
        started = time.perf_counter()
        error = True
        try:
            response, payload = self._round_trip(method, path, body, headers)
            envelope = json.loads(payload)
            if response.status != 200:
                envelope_error = envelope.get("error", {})
                raise ServiceError(
                    response.status,
                    envelope_error.get("code", "unknown"),
                    envelope_error.get(
                        "message", payload.decode("utf-8", "replace")
                    ),
                )
            error = False
            return envelope
        finally:
            self.stats.record(
                (time.perf_counter() - started) * 1000.0, error=error
            )

    def get_text(
        self, path: str, request_id: str | None = None
    ) -> tuple[int, str]:
        """Fetch a text endpoint (``/metrics``); returns (status, text)."""
        headers = {REQUEST_ID_HEADER: request_id} if request_id else {}
        started = time.perf_counter()
        error = True
        try:
            response, payload = self._round_trip("GET", path, None, headers)
            error = response.status != 200
            return response.status, payload.decode("utf-8")
        finally:
            self.stats.record(
                (time.perf_counter() - started) * 1000.0, error=error
            )

    # -- endpoints --------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Poll ``/v1/health`` until the server answers (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except (OSError, http.client.HTTPException):
                self.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")["result"]

    def healthz(self) -> dict[str, Any]:
        """Liveness probe (stays 200 during drain)."""
        return self.request("GET", "/healthz")

    def readyz(self) -> dict[str, Any]:
        """Readiness probe (raises ``ServiceError(503)`` during drain)."""
        return self.request("GET", "/readyz")

    def metrics_text(self) -> str:
        """The Prometheus exposition body of ``GET /metrics``."""
        status, text = self.get_text("/metrics")
        if status != 200:
            raise ServiceError(status, "metrics_failed", text)
        return text

    def debug_trace(
        self, last: int | None = None, trace_id: str | None = None
    ) -> dict[str, Any]:
        """The span export (``GET /v1/debug/trace?last=N&trace_id=T``).

        Against a fleet router this is the *merged* cross-process
        document — one Perfetto process track per fleet member, flow
        events on the forward edges; ``trace_id`` (typically
        :attr:`last_trace_id`) narrows it to one request's tree.
        """
        query = []
        if last is not None:
            query.append(f"last={last}")
        if trace_id is not None:
            query.append(f"trace_id={trace_id}")
        path = "/v1/debug/trace"
        if query:
            path += "?" + "&".join(query)
        return self.request("GET", path)

    def debug_profile(
        self, seconds: float | None = None, hz: int | None = None
    ) -> dict[str, Any]:
        """One on-demand sampling window (``GET /v1/debug/profile``).

        Blocks for ``seconds`` while the server samples itself; returns
        the ``repro.obs.profile/1`` document.  Raises
        ``ServiceError(409)`` if a window is already running.
        """
        query = []
        if seconds is not None:
            query.append(f"seconds={seconds:g}")
        if hz is not None:
            query.append(f"hz={hz}")
        path = "/v1/debug/profile"
        if query:
            path += "?" + "&".join(query)
        return self.request("GET", path)

    def stats_envelope(self) -> dict[str, Any]:
        """The full stats envelope (snapshot + queue + caches + latency)."""
        return self.request("GET", "/v1/stats")

    def execution_time(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/execution-time", params)["result"]

    def tradeoff(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/tradeoff", params)["result"]

    def ranking(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/ranking", params)["result"]

    def advise(self, **params: Any) -> dict[str, Any]:
        return self.request("POST", "/v1/advise", params)["result"]

    def simulate(self, **params: Any) -> dict[str, Any]:
        """The full simulate envelope (``result`` plus ``cached``)."""
        return self.request("POST", "/v1/simulate", params)

    def sweep(
        self, resume_retries: int = 0, **params: Any
    ) -> Iterator[dict[str, Any]]:
        """Stream ``POST /v1/sweep``: yields decoded JSONL records.

        The first record is the stream header
        (``repro.service.sweep/1``), then one record per grid point as
        the server (or the fleet's shards) completes it, then the
        ``{"done": true}`` summary.  A missing summary means the stream
        was truncated.  Runs on a dedicated connection — the server
        closes streaming connections when done — so the client's
        keep-alive connection stays usable for other calls.  Lazily
        evaluated: the request is sent, and any non-200 raised, at the
        first ``next()``.

        ``resume_retries`` opts into client-side mid-stream resume,
        mirroring the router's sub-stream policy one level up: a
        transport failure (server restart, cut connection, truncated
        stream) re-issues the whole request and the points already
        yielded are deduplicated by their global index, so the caller
        still sees each index exactly once.  The re-issued grid is
        served from the result caches, so a resume re-streams cheaply
        rather than re-simulating.  The summary's ``errors`` count is
        rewritten to match the error lines actually yielded, keeping
        the merged stream valid under ``validate_sweep_stream``.  The
        default stays 0: a truncated stream raises, as before.
        """
        yielded: set[int] = set()
        header_emitted = False
        emitted_errors = 0
        attempts = 0
        while True:
            failure: Exception | None = None
            try:
                for record in self._sweep_attempt(params):
                    if "index" not in record:
                        if "done" in record:  # the summary: stream is whole
                            summary = dict(record)
                            summary["errors"] = emitted_errors
                            yield summary
                            return
                        if not header_emitted:  # the header
                            header_emitted = True
                            yield record
                        continue
                    index = record["index"]
                    if index in yielded:
                        continue
                    yielded.add(index)
                    if "error" in record:
                        emitted_errors += 1
                    yield record
            except (OSError, http.client.HTTPException, ValueError) as exc:
                failure = exc
            # Either a transport failure or an EOF without a summary.
            attempts += 1
            if attempts > resume_retries:
                if failure is not None:
                    raise failure
                raise ServiceError(
                    0, "truncated", "sweep stream ended without a summary"
                )
            self.stats.retries += 1

    def _sweep_attempt(
        self, params: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        """One raw sweep stream over a dedicated connection."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        started = time.perf_counter()
        error = True
        try:
            conn.request(
                "POST",
                "/v1/sweep",
                body=json.dumps({"params": params}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            self.last_request_id = response.getheader(REQUEST_ID_HEADER)
            if response.status != 200:
                envelope_error = {}
                try:
                    envelope_error = json.loads(response.read()).get("error", {})
                except (ValueError, http.client.HTTPException):
                    pass
                raise ServiceError(
                    response.status,
                    envelope_error.get("code", "unknown"),
                    envelope_error.get("message", "sweep request failed"),
                )
            while True:
                # http.client decodes the chunked framing; each read
                # returns payload bytes, and the service frames one JSON
                # record per line.
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
            error = False
        finally:
            conn.close()
            self.stats.record(
                (time.perf_counter() - started) * 1000.0, error=error
            )

    # -- campaigns ---------------------------------------------------------

    def submit_campaign(self, spec: dict[str, Any]) -> dict[str, Any]:
        """``POST /v1/campaigns``: submit (or resume) a campaign spec."""
        return self.request("POST", "/v1/campaigns", {"spec": spec})["result"]

    def campaigns(self) -> list[dict[str, Any]]:
        """``GET /v1/campaigns``: every registered campaign's status."""
        return self.request("GET", "/v1/campaigns")["result"]["campaigns"]

    def campaign_status(self, ref: str) -> dict[str, Any]:
        """``GET /v1/campaigns/{ref}``: one campaign's progress view."""
        return self.request("GET", f"/v1/campaigns/{ref}")["result"]

    def campaign_results(self, ref: str) -> Iterator[dict[str, Any]]:
        """``GET /v1/campaigns/{ref}/results``: stream the results JSONL
        (header, terminal points so far, summary) on a dedicated
        connection, one decoded record per yield."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        started = time.perf_counter()
        error = True
        try:
            conn.request("GET", f"/v1/campaigns/{ref}/results")
            response = conn.getresponse()
            self.last_request_id = response.getheader(REQUEST_ID_HEADER)
            if response.status != 200:
                envelope_error = {}
                try:
                    envelope_error = json.loads(response.read()).get("error", {})
                except (ValueError, http.client.HTTPException):
                    pass
                raise ServiceError(
                    response.status,
                    envelope_error.get("code", "unknown"),
                    envelope_error.get("message", "campaign results failed"),
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
            error = False
        finally:
            conn.close()
            self.stats.record(
                (time.perf_counter() - started) * 1000.0, error=error
            )

    def wait_campaign(
        self, ref: str, timeout: float = 60.0, poll_s: float = 0.2
    ) -> dict[str, Any]:
        """Poll a campaign's status until complete (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.campaign_status(ref)
            if view["progress"]["complete"]:
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {ref!r} still has "
                    f"{view['progress']['pending']} pending points "
                    f"after {timeout:g}s"
                )
            time.sleep(poll_s)
