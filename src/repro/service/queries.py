"""Query implementations behind the service endpoints.

Pure synchronous functions from *validated* parameter dicts (see
:mod:`repro.service.schemas`) to JSON-ready result dicts.  The analytic
queries (Eq. 2 execution time, Eq. 6 tradeoffs, the unified ranking,
the design advisor) are microseconds of float arithmetic and run inline
on the event loop; the simulation-backed query is split so the
micro-batch scheduler can share its expensive half:

* :func:`trace_fingerprint_of` / :func:`events_key_of` — the
  (trace, geometry) identity a batch group coalesces on;
* :func:`resolve_events` — phase 1: one functional extraction (or
  events-store / memo hit) per group;
* :func:`simulate_from_events` — phase 2: the per-request replay, plus
  the step-simulator oracle for the configurations replay does not
  cover (multi-issue; see ``docs/ENGINE.md``).

Simulation results are byte-identical to a direct
:func:`repro.cpu.replay.simulate` call for the same configuration: the
same engine runs underneath, and :func:`timing_result_dict` is the one
serialization both the service tests and the CLI comparisons use.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.design_advisor import DesignBrief, recommend
from repro.analysis.short_levy import short_levy_curve
from repro.cache.cache import CacheConfig
from repro.cache import events_store
from repro.cache.events import EventStream
from repro.core.execution import execution_breakdown
from repro.core.features import ArchFeature, feature_miss_ratio
from repro.core.params import SystemConfig, workload_from_hit_ratio
from repro.core.ranking import unified_comparison
from repro.core.stalling import StallPolicy
from repro.core.tradeoff import TradeoffResult, hit_ratio_traded
from repro.cpu.processor import TimingResult
from repro.cpu.replay import simulate, unsupported_reason
from repro.memory.mainmem import MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.trace.loops import matmul_fingerprint, square_matmul_trace
from repro.trace.spec92 import spec92_trace, trace_fingerprint

_FEATURES = {
    "doubling-bus": ArchFeature.DOUBLING_BUS,
    "write-buffers": ArchFeature.WRITE_BUFFERS,
    "pipelined-memory": ArchFeature.PIPELINED_MEMORY,
    "partial-stalling": ArchFeature.PARTIAL_STALLING,
}


class InvalidQuery(ValueError):
    """Parameters passed structural validation but fail domain rules.

    (For example a line size the cache geometry cannot express.)  The
    server maps this to the same 400 family as schema errors.
    """


def _system_config(params: dict[str, Any]) -> SystemConfig:
    try:
        return SystemConfig(
            bus_width=params["bus_width"],
            line_size=params["line_size"],
            memory_cycle=params["memory_cycle"],
            pipeline_turnaround=params["turnaround"],
        )
    except ValueError as error:
        raise InvalidQuery(str(error)) from None


def execution_time_query(params: dict[str, Any]) -> dict[str, Any]:
    """Eq. (2) terms for a hit-ratio-characterised workload."""
    config = _system_config(params)
    try:
        workload = workload_from_hit_ratio(
            params["hit_ratio"],
            config,
            instructions=params["instructions"],
            loadstore_fraction=params["loadstore_fraction"],
            flush_ratio=params["flush_ratio"],
        )
        breakdown = execution_breakdown(
            workload,
            config,
            stall_factor=params["stall_factor"],
            policy=StallPolicy(params["policy"]),
            write_buffers=params["write_buffers"],
        )
    except ValueError as error:
        raise InvalidQuery(str(error)) from None
    return {
        "base_cycles": breakdown.base_cycles,
        "read_miss_stall_cycles": breakdown.read_miss_stall_cycles,
        "flush_cycles": breakdown.flush_cycles,
        "write_around_cycles": breakdown.write_around_cycles,
        "instruction_fetch_cycles": breakdown.instruction_fetch_cycles,
        "total_cycles": breakdown.total,
        "cpi": breakdown.total / workload.instructions,
    }


def tradeoff_query(params: dict[str, Any]) -> dict[str, Any]:
    """Eq. (6): the hit ratio one feature is worth at this point."""
    config = _system_config(params)
    feature = _FEATURES[params["feature"]]
    try:
        r = feature_miss_ratio(
            feature,
            config,
            flush_ratio=params["flush_ratio"],
            measured_stall_factor=params["stall_factor"],
        )
        result = TradeoffResult(
            miss_ratio_of_misses=r, base_hit_ratio=params["base_hit_ratio"]
        )
        delta = result.hit_ratio_delta
    except ValueError as error:
        raise InvalidQuery(str(error)) from None
    return {
        "feature": params["feature"],
        "miss_ratio_of_misses": r,
        "hit_ratio_delta": delta,
        "feature_hit_ratio": result.feature_hit_ratio,
        "is_physical": result.is_physical,
    }


def ranking_query(params: dict[str, Any]) -> dict[str, Any]:
    """The Figures 3-5 unified comparison over a ``beta_m`` grid."""
    betas = params["betas"]
    config = SystemConfig(
        bus_width=params["bus_width"],
        line_size=params["line_size"],
        memory_cycle=betas[0],
        pipeline_turnaround=params["turnaround"],
    )
    stall_factors = params["stall_factors"]
    phi_map = (
        dict(zip(betas, stall_factors)) if stall_factors is not None else None
    )
    try:
        comparison = unified_comparison(
            config,
            params["base_hit_ratio"],
            betas,
            flush_ratio=params["flush_ratio"],
            measured_stall_factors=phi_map,
        )
    except ValueError as error:
        raise InvalidQuery(str(error)) from None
    curves = {
        feature.value: list(sweep.hit_ratio_traded)
        for feature, sweep in comparison.sweeps.items()
    }
    rankings = {
        f"{beta:g}": [f.value for f in comparison.ranking_at(beta)]
        for beta in betas
    }
    crossover = comparison.pipelined_crossover_vs(ArchFeature.DOUBLING_BUS)
    return {
        "betas": list(betas),
        "hit_ratio_traded": curves,
        "ranking_at": rankings,
        "pipelined_vs_doubling_crossover": crossover,
    }


def advise_query(params: dict[str, Any]) -> dict[str, Any]:
    """Section 5.3 as a service: priced, ranked feature recommendations."""
    config = _system_config(params)
    try:
        brief = DesignBrief(
            config=config,
            cache_bytes=params["cache_kib"] * 1024,
            hit_ratio_curve=short_levy_curve(),
            flush_ratio=params["flush_ratio"],
            measured_stall_factor=params["stall_factor"],
        )
        recommendations = recommend(brief)
    except ValueError as error:
        raise InvalidQuery(str(error)) from None
    return {
        "base_hit_ratio": brief.base_hit_ratio,
        "recommendations": [
            {
                "feature": rec.feature.value,
                "hit_ratio_value": rec.hit_ratio_value,
                "equivalent_cache_bytes": rec.equivalent_cache_bytes,
                "pin_cost": rec.pin_cost,
                "area_cost_rbe": rec.area_cost_rbe,
                "note": rec.note,
                "summary": rec.summary,
            }
            for rec in recommendations
        ],
    }


# -- the simulation-backed query ----------------------------------------


def trace_fingerprint_of(trace: dict[str, Any]) -> str:
    """Content identity of the request's trace (spec92 or matmul)."""
    if trace["kind"] == "spec92":
        return trace_fingerprint(
            trace["name"], trace["instructions"], trace["seed"]
        )
    return matmul_fingerprint(
        trace["n"],
        trace["tile"],
        trace["element_size"],
        trace["alu_per_reference"],
    )


def cache_config_of(params: dict[str, Any]) -> CacheConfig:
    """The request's cache geometry as a domain object."""
    spec = params["cache"]
    try:
        return CacheConfig(
            total_bytes=spec["total_bytes"],
            line_size=spec["line_size"],
            associativity=spec["associativity"],
        )
    except ValueError as error:
        raise InvalidQuery(str(error)) from None


def events_key_of(params: dict[str, Any]) -> str:
    """The (trace, geometry) identity a batch group coalesces on.

    The same content address the on-disk events store uses, so one
    group == one store lookup == at most one extraction.
    """
    return events_store.entry_key(
        trace_fingerprint_of(params["trace"]), cache_config_of(params)
    )


def trace_key_of(params: dict[str, Any]) -> str:
    """The trace-alone identity phase-1 *profile* work coalesces on.

    Service cache geometries are always LRU/write-back/write-allocate
    (:func:`cache_config_of` builds plain :class:`CacheConfig`\\ s), so
    every simulate request is reuse-engine eligible and its expensive
    phase-1 half — trace generation plus the reuse-distance profiling
    pass — depends on the trace only.  The batch scheduler groups on
    this key to run geometry fans over one trace back-to-back (see
    :mod:`repro.service.batching`).
    """
    return trace_fingerprint_of(params["trace"])


def _trace_factory(trace: dict[str, Any]):
    if trace["kind"] == "spec92":
        return lambda: spec92_trace(
            trace["name"], trace["instructions"], seed=trace["seed"]
        )
    return lambda: square_matmul_trace(
        trace["n"],
        tile=trace["tile"],
        element_size=trace["element_size"],
        alu_per_reference=trace["alu_per_reference"],
    )


def resolve_events(params: dict[str, Any]) -> EventStream:
    """Phase 1 for one batch group: extract (or load) the event stream."""
    return events_store.get_or_extract(
        trace_fingerprint_of(params["trace"]),
        cache_config_of(params),
        _trace_factory(params["trace"]),
    )


def memory_of(params: dict[str, Any]) -> MainMemory:
    """The request's memory model (plain or pipelined)."""
    if params["pipelined_q"] is not None:
        try:
            return PipelinedMemory(
                params["memory_cycle"], params["bus_width"], params["pipelined_q"]
            )
        except ValueError as error:
            raise InvalidQuery(str(error)) from None
    return MainMemory(params["memory_cycle"], params["bus_width"])


def engine_path_of(params: dict[str, Any]) -> str:
    """Which engine will serve this request: ``replay`` or ``step``."""
    reason = unsupported_reason(
        cache_config_of(params),
        memory_of(params),
        StallPolicy(params["policy"]),
        params["write_buffer_depth"],
        params["issue_rate"],
    )
    return "replay" if reason is None else "step"


def timing_result_dict(result: TimingResult, engine: str) -> dict[str, Any]:
    """The one JSON rendering of a :class:`TimingResult` (see tests)."""
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cpi": result.cpi,
        "read_miss_stall_cycles": result.read_miss_stall_cycles,
        "flush_stall_cycles": result.flush_stall_cycles,
        "write_stall_cycles": result.write_stall_cycles,
        "line_fills": result.line_fills,
        "memory_cycle": result.memory_cycle,
        "stall_factor": result.stall_factor,
        "engine": engine,
    }


def simulate_from_events(
    params: dict[str, Any], events: EventStream
) -> dict[str, Any]:
    """Phase 2 for one request: exact cycle accounting over the stream.

    Replay-covered configurations never touch the instruction stream;
    the step-simulator fallback (multi-issue only, within the service's
    schema) re-materializes the trace, which is why the extraction
    memo keys on (trace, geometry) rather than the full request.
    """
    memory = memory_of(params)
    policy = StallPolicy(params["policy"])
    engine = engine_path_of(params)
    trace = None
    if engine == "step":
        trace = _trace_factory(params["trace"])()
    try:
        result = simulate(
            trace if trace is not None else (),
            events.config,
            memory,
            policy=policy,
            write_buffer_depth=params["write_buffer_depth"],
            issue_rate=params["issue_rate"],
            events=events if engine == "replay" else None,
        )
    except ValueError as error:
        raise InvalidQuery(str(error)) from None
    return timing_result_dict(result, engine)
