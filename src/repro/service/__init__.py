"""A batched, cached tradeoff-query server over the two-phase engine.

``python -m repro serve`` starts an asyncio HTTP/JSON server (stdlib
only — the HTTP/1.1 slice lives in :mod:`repro.service.http11`) that
answers the paper's analytic queries inline and routes exact-simulation
queries through a micro-batch scheduler and a content-addressed result
cache; ``--workers N`` shards it into a multi-process fleet behind a
consistent-hash router (:mod:`repro.service.router`).  See
``docs/SERVICE.md`` for the endpoint reference, the robustness contract
(deadlines, backpressure, drain-then-shutdown), fleet mode, and the
load-generator workflow.
"""

from repro.service.batching import EventsMemo, MicroBatcher, QueueFullError
from repro.service.client import (
    BUSY_STATUSES,
    ServiceClient,
    ServiceError,
    backoff_delays,
)
from repro.service.disk_cache import DiskResultCache
from repro.service.queries import InvalidQuery
from repro.service.result_cache import (
    RESULT_CACHE_VERSION,
    ResultCache,
    result_key,
    simulate_key_material,
)
from repro.service.router import (
    Fleet,
    FleetConfig,
    FleetThread,
    RouterServer,
    run_fleet,
)
from repro.service.server import (
    ReproServer,
    ServerConfig,
    ServerThread,
    run_server,
)
from repro.service.shard import HashRing, ring_hash, worker_names

__all__ = [
    "BUSY_STATUSES",
    "DiskResultCache",
    "EventsMemo",
    "Fleet",
    "FleetConfig",
    "FleetThread",
    "HashRing",
    "InvalidQuery",
    "MicroBatcher",
    "QueueFullError",
    "RESULT_CACHE_VERSION",
    "ReproServer",
    "ResultCache",
    "RouterServer",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "backoff_delays",
    "result_key",
    "ring_hash",
    "run_fleet",
    "run_server",
    "simulate_key_material",
    "worker_names",
]
