"""A batched, cached tradeoff-query server over the two-phase engine.

``python -m repro serve`` starts an asyncio HTTP/JSON server (stdlib
only — the HTTP/1.1 slice lives in :mod:`repro.service.http11`) that
answers the paper's analytic queries inline and routes exact-simulation
queries through a micro-batch scheduler and a content-addressed result
cache.  See ``docs/SERVICE.md`` for the endpoint reference, the
robustness contract (deadlines, backpressure, drain-then-shutdown), and
the load-generator workflow.
"""

from repro.service.batching import EventsMemo, MicroBatcher, QueueFullError
from repro.service.client import ServiceClient, ServiceError
from repro.service.queries import InvalidQuery
from repro.service.result_cache import (
    RESULT_CACHE_VERSION,
    ResultCache,
    result_key,
    simulate_key_material,
)
from repro.service.server import (
    ReproServer,
    ServerConfig,
    ServerThread,
    run_server,
)

__all__ = [
    "EventsMemo",
    "InvalidQuery",
    "MicroBatcher",
    "QueueFullError",
    "RESULT_CACHE_VERSION",
    "ReproServer",
    "ResultCache",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "result_key",
    "run_server",
    "simulate_key_material",
]
