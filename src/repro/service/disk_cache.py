"""Disk-backed, content-addressed result cache for the serving layer.

The in-process :class:`~repro.service.result_cache.ResultCache` dies
with its process; a fleet restart (deploy, crash, host move) used to
re-pay every replay.  This module persists the same serialized
``result`` payloads to disk — content-addressed by the same SHA-256 key
:func:`~repro.service.result_cache.result_key` derives — so a re-booted
server (or a whole fleet: the directory is shared, keys are
content-addressed, writes are atomic) starts warm.

The on-disk format deliberately mirrors :mod:`repro.cache.events_store`:

* one payload file (``<key>.bin``, the exact result bytes the server
  would send) plus a JSON sidecar (``<key>.json``) holding the store
  version, the result-cache key version, and the payload size;
* both written atomically (temp file + ``os.replace``) so a killed
  process never leaves a truncated entry;
* any load failure — corrupt payload, size mismatch, version skew,
  truncated sidecar — is a silent miss that falls back to recompute,
  with the diagnostic-only ``result_store.corrupt_recompute`` counter
  bumped (exactly the ``events_store.corrupt_reextract`` contract);
* byte-budgeted: when the directory exceeds the budget, the
  oldest-used entries (sidecar mtime, refreshed on hit) are evicted.

Opt-in / redirection via environment (mirroring the events store):

* the cache is **off by default** — a server enables it with
  ``--disk-cache-dir`` (or programmatically via
  :class:`~repro.service.server.ServerConfig`), keeping the
  byte-identical cold/warm determinism pins meaningful;
* ``REPRO_RESULT_CACHE=0`` (or ``off``) force-disables it;
* ``REPRO_RESULT_CACHE_DIR=<path>`` overrides the configured directory
  (the test suite points it at a temp dir).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from pathlib import Path

from repro.obs import metrics, tracing
from repro.service.result_cache import RESULT_CACHE_VERSION
from repro.util import store_gc

log = logging.getLogger("repro.result_store")

#: Bump when the on-disk layout (file naming, sidecar format) changes.
STORE_VERSION = 1

#: Set to ``0``/``off``/``false`` to force-disable the disk cache.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"

#: Overrides the configured cache directory.
RESULT_CACHE_DIR_ENV = "REPRO_RESULT_CACHE_DIR"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})

#: Default byte budget when a server enables the cache without one.
DEFAULT_CAPACITY_BYTES = 64 * 1024 * 1024


def cache_enabled() -> bool:
    """Whether the env kill-switch allows the disk cache (checked per
    call, so tests and operators can flip it at runtime)."""
    value = os.environ.get(RESULT_CACHE_ENV)
    return value is None or value.strip().lower() not in _DISABLED_VALUES


def default_cache_dir() -> Path:
    """The conventional location (``$XDG_CACHE_HOME/repro/results``)."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


def resolve_cache_dir(configured: str | os.PathLike[str] | None) -> Path:
    """The directory to use: env override, else configured, else default."""
    override = os.environ.get(RESULT_CACHE_DIR_ENV)
    if override:
        return Path(override)
    if configured is not None:
        return Path(configured)
    return default_cache_dir()


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    try:
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class DiskResultCache:
    """Byte-budgeted on-disk store of serialized simulate results.

    One instance per server process; multiple processes (the fleet's
    workers) may share a directory — entries are content-addressed and
    written atomically, so concurrent writers at worst double-write the
    same bytes.  Budget enforcement is therefore best-effort per
    process: each writer evicts down to the budget as it sees the
    directory.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be > 0, got {capacity_bytes}"
            )
        self.directory = Path(directory)
        self.capacity_bytes = capacity_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- paths and sidecars ------------------------------------------------

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.directory / f"{key}.bin", self.directory / f"{key}.json"

    def _sidecar(self, key: str, payload: bytes) -> dict[str, object]:
        return {
            "store_version": STORE_VERSION,
            "result_cache_version": RESULT_CACHE_VERSION,
            "key": key,
            "size": len(payload),
        }

    # -- the cache interface ----------------------------------------------

    def get(self, key: str) -> bytes | None:
        """The stored payload, or ``None`` on miss/corruption/disabled."""
        if not cache_enabled():
            return None
        bin_path, meta_path = self._paths(key)
        try:
            with tracing.span("result_store.load", key=key[:12]):
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                if (
                    meta.get("store_version") != STORE_VERSION
                    or meta.get("result_cache_version") != RESULT_CACHE_VERSION
                    or meta.get("key") != key
                ):
                    self.misses += 1
                    return None
                payload = bin_path.read_bytes()
                if len(payload) != meta.get("size"):
                    raise ValueError(
                        f"payload is {len(payload)} bytes, "
                        f"sidecar says {meta.get('size')!r}"
                    )
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:  # noqa: BLE001 - any corruption => recompute
            # Mirrors events_store: regenerated transparently, but worth
            # a diagnostic signal (stable_view strips the counter).
            metrics.inc("result_store.corrupt_recompute")
            log.warning(
                "result_store: corrupt entry %s (%s: %s); recomputing",
                key[:12],
                type(exc).__name__,
                exc,
            )
            self.misses += 1
            return None
        self.hits += 1
        self._touch(meta_path)
        return payload

    def put(self, key: str, payload: bytes) -> None:
        """Persist one result (best-effort: failures only log).

        A payload larger than the whole budget is not stored.  After a
        successful write the directory is trimmed back under the budget,
        oldest-used sidecar first.
        """
        if not cache_enabled() or len(payload) > self.capacity_bytes:
            return
        bin_path, meta_path = self._paths(key)
        sidecar = json.dumps(
            self._sidecar(key, payload), indent=2, sort_keys=True
        ).encode("utf-8")
        try:
            with tracing.span("result_store.save", key=key[:12]):
                self.directory.mkdir(parents=True, exist_ok=True)
                _atomic_write(bin_path, payload)
                _atomic_write(meta_path, sidecar)
        except OSError as exc:
            log.debug("result_store: save failed for %s: %s", key[:12], exc)
            return
        self._enforce_budget(keep=key)

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.bin"))
        except OSError:
            return 0

    @property
    def size_bytes(self) -> int:
        """Current payload footprint on disk (best-effort)."""
        total = 0
        try:
            for bin_path in self.directory.glob("*.bin"):
                try:
                    total += bin_path.stat().st_size
                except OSError:
                    continue
        except OSError:
            return 0
        return total

    # -- budget ------------------------------------------------------------

    @staticmethod
    def _touch(meta_path: Path) -> None:
        """Refresh a sidecar's mtime (the eviction recency signal)."""
        try:
            os.utime(meta_path, (time.time(), time.time()))
        except OSError:
            pass

    def _enforce_budget(self, keep: str | None = None) -> None:
        """Evict oldest-used entries until the directory fits the budget.

        The planning (oldest sidecar mtime first, orphans ignored) is
        the shared :mod:`repro.util.store_gc` helper — the same policy
        ``python -m repro cache gc`` applies offline.
        """
        entries, _orphans = store_gc.scan_store(self.directory, ".bin", ".json")
        for entry in store_gc.plan_evictions(
            entries, self.capacity_bytes, keep=keep
        ):
            if store_gc.remove_entry(entry):
                self.evictions += 1

    def stats(self) -> dict[str, object]:
        """JSON-ready view for ``/v1/stats``."""
        return {
            "directory": str(self.directory),
            "entries": len(self),
            "bytes": self.size_bytes,
            "capacity_bytes": self.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
