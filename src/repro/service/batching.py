"""Micro-batch scheduler for simulation-backed queries.

Concurrent ``/v1/simulate`` requests land in one bounded queue.  A
single scheduler task drains the queue in arrival order, groups the
drained requests by their (trace, geometry) content key, and hands the
whole batch to one worker thread, which resolves phase 1 (event-stream
extraction / store lookup / memo hit) **once per group** and then runs
the cheap per-request phase-2 replay for every member.  Sixteen clients
sweeping ``beta_m`` over a shared trace therefore pay for one functional
pass, not sixteen — the batch-coalescing ratio the load generator
reports (``service.batch.requests / service.batch.groups``).

Groups are additionally ordered by the *trace-alone* key
(:func:`repro.service.queries.trace_key_of`): service geometries are
all LRU/write-back, so phase 1 runs on the reuse engine and its
expensive half — trace generation plus the reuse-distance profiling
pass — depends on the trace only (``docs/ENGINE.md``).  A batch fanning
one trace across several geometries therefore resolves those groups
back-to-back: the first builds the trace's
:class:`~repro.cache.reuse.ReuseProfile`, the rest derive their event
streams from the profile memo without regenerating anything
(``service.batch.trace_groups`` / ``service.batch.geometry_coalesced``
count the fan).

Robustness contract:

* the queue is *bounded*; a submit that would exceed ``max_pending``
  raises :class:`QueueFullError` immediately (the server maps it to a
  429) instead of buffering without limit;
* waiters can be cancelled (deadline timeouts): the worker checks each
  future before computing and before resolving, so an abandoned request
  is skipped, not raced;
* :meth:`MicroBatcher.drain` lets in-flight and queued work finish,
  then stops the scheduler — the SIGTERM path.

The worker also keeps a small LRU memo of resolved
:class:`~repro.cache.events.EventStream` objects so *successive*
batches over a hot key skip straight to replay; the memo is counted
(``service.events_memo.{hit,miss}``) and bounded by entry count — event
streams for the service's capped trace sizes are a few hundred KiB.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.cache.events import EventStream
from repro.obs import tracing
from repro.obs.live import current_request_id, request_context
from repro.obs.metrics import MetricsRegistry
from repro.service import queries


class QueueFullError(Exception):
    """The bounded request queue is at capacity (backpressure)."""


@dataclass
class _Pending:
    """One queued request and the future its handler awaits."""

    key: str
    trace_key: str
    params: dict[str, Any]
    future: asyncio.Future
    request_id: str | None = None
    trace_context: tuple[str, str] | None = None


class EventsMemo:
    """Count-bounded LRU of resolved event streams (worker-thread only)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, EventStream] = OrderedDict()

    def get(self, key: str) -> EventStream | None:
        events = self._entries.get(key)
        if events is not None:
            self._entries.move_to_end(key)
        return events

    def put(self, key: str, events: EventStream) -> None:
        self._entries[key] = events
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class MicroBatcher:
    """Coalesces concurrent simulate requests by (trace, geometry) key."""

    def __init__(
        self,
        registry: MetricsRegistry,
        max_pending: int = 64,
        batch_window_s: float = 0.002,
        events_memo_entries: int = 8,
        resolve_events: Callable[[dict], EventStream] = queries.resolve_events,
        compute: Callable[[dict, EventStream], dict] = queries.simulate_from_events,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._registry = registry
        self.max_pending = max_pending
        self.batch_window_s = batch_window_s
        self._resolve_events = resolve_events
        self._compute = compute
        self._memo = EventsMemo(events_memo_entries)
        self._queue: list[_Pending] = []
        self._pending = 0  # queued + computing, for backpressure
        self._wakeup = asyncio.Event()
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-batch"
        )
        self._task: asyncio.Task | None = None

    # -- submission (event-loop thread) ----------------------------------

    def start(self) -> None:
        """Spawn the scheduler task (call once, on the server's loop)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    @property
    def queue_depth(self) -> int:
        """Requests currently queued or computing."""
        return self._pending

    async def submit(self, params: dict[str, Any]) -> dict[str, Any]:
        """Enqueue one simulate request; resolves with its result dict.

        Raises :class:`QueueFullError` when the queue is at capacity and
        propagates any exception the compute raised for this request.
        Cancelling the returned await (deadline) abandons the request —
        the worker skips it if it has not started computing.
        """
        if self._draining:
            raise QueueFullError("server is shutting down")
        if self._pending >= self.max_pending:
            self._registry.inc("service.queue.rejected")
            raise QueueFullError(
                f"request queue at capacity ({self.max_pending} pending)"
            )
        key = queries.events_key_of(params)
        future = asyncio.get_running_loop().create_future()
        entry = _Pending(
            key=key,
            trace_key=queries.trace_key_of(params),
            params=params,
            future=future,
            # run_in_executor does not propagate contextvars, so the
            # ingress request id and trace identity are captured here
            # and re-entered on the worker thread — phase-2 spans then
            # carry the request id and parent onto the request's own
            # span tree, not the batch's.
            request_id=current_request_id(),
            trace_context=tracing.current_trace_context(),
        )
        self._pending += 1
        self._registry.observe("service.queue.depth", self._pending)
        future.add_done_callback(self._on_done)
        self._queue.append(entry)
        self._wakeup.set()
        return await future

    def _on_done(self, _future: asyncio.Future) -> None:
        self._pending -= 1

    # -- scheduling (event-loop thread) -----------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._draining:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            if self.batch_window_s > 0 and not self._draining:
                # Let concurrent requests arrive and coalesce.
                await asyncio.sleep(self.batch_window_s)
            batch, self._queue = self._queue, []
            if not batch:
                continue
            groups: OrderedDict[str, list[_Pending]] = OrderedDict()
            for entry in batch:
                groups.setdefault(entry.key, []).append(entry)
            # Second-level grouping: geometry fans over one trace.  The
            # service's cache geometries are all LRU/write-back, so the
            # expensive half of phase 1 — trace generation plus the
            # reuse-distance profiling pass — depends on the trace
            # alone.  Scheduling a trace's geometry groups back-to-back
            # keeps its profile hot in the reuse store's small memo:
            # the first group pays for the profile, the rest derive
            # their event streams from it analytically.
            by_trace: OrderedDict[str, list[list[_Pending]]] = OrderedDict()
            for key, group in groups.items():
                by_trace.setdefault(group[0].trace_key, []).append(group)
            self._registry.inc("service.batch.batches")
            self._registry.inc("service.batch.requests", len(batch))
            self._registry.inc("service.batch.groups", len(groups))
            self._registry.inc(
                "service.batch.coalesced", len(batch) - len(groups)
            )
            self._registry.inc("service.batch.trace_groups", len(by_trace))
            self._registry.inc(
                "service.batch.geometry_coalesced", len(groups) - len(by_trace)
            )
            self._registry.observe("service.batch.size", len(batch))
            ordered = [g for fan in by_trace.values() for g in fan]
            with tracing.span(
                "service.batch",
                requests=len(batch),
                groups=len(groups),
                trace_groups=len(by_trace),
                request_ids=[e.request_id for e in batch if e.request_id],
            ):
                outcomes = await loop.run_in_executor(
                    self._executor, self._compute_batch, ordered
                )
            for entry, ok, value in outcomes:
                if entry.future.done():
                    continue  # deadline hit while we were computing
                if ok:
                    entry.future.set_result(value)
                else:
                    entry.future.set_exception(value)

    # -- computation (single worker thread) -------------------------------

    def _compute_batch(
        self, groups: list[list[_Pending]]
    ) -> list[tuple[_Pending, bool, Any]]:
        """Resolve phase 1 once per group, then phase 2 per request.

        ``groups`` arrives trace-adjacent (see :meth:`_run`): groups
        sharing a trace run consecutively so the reuse-profile memo hit
        is guaranteed regardless of how many traces the batch spans.
        """
        outcomes: list[tuple[_Pending, bool, Any]] = []
        for group in groups:
            live = [e for e in group if not e.future.done()]
            skipped = len(group) - len(live)
            if skipped:
                self._registry.inc("service.batch.abandoned", skipped)
            if not live:
                continue
            key = live[0].key
            events = self._memo.get(key)
            if events is None:
                self._registry.inc("service.events_memo.miss")
                try:
                    with tracing.span(
                        "service.phase1",
                        key=key[:12],
                        request_ids=[e.request_id for e in live if e.request_id],
                    ):
                        events = self._resolve_events(live[0].params)
                except Exception as error:  # noqa: BLE001 - reported per request
                    for entry in live:
                        outcomes.append((entry, False, error))
                    continue
                self._registry.inc("service.phase1.resolves")
                self._memo.put(key, events)
            else:
                self._registry.inc("service.events_memo.hit")
            for entry in live:
                if entry.future.done():
                    self._registry.inc("service.batch.abandoned")
                    continue
                try:
                    with request_context(entry.request_id):
                        with tracing.trace_context(entry.trace_context):
                            with tracing.span("service.phase2", key=key[:12]):
                                result = self._compute(entry.params, events)
                except Exception as error:  # noqa: BLE001 - reported per request
                    outcomes.append((entry, False, error))
                else:
                    outcomes.append((entry, True, result))
        return outcomes

    # -- shutdown (event-loop thread) --------------------------------------

    async def drain(self) -> None:
        """Finish queued and in-flight work, then stop the scheduler."""
        self._draining = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None
        self._executor.shutdown(wait=True)
