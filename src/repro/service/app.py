"""Request routing, envelopes, and the result cache for the service.

:class:`ServiceApp` is the transport-free core of the server: it maps a
parsed :class:`~repro.service.http11.Request` to a status code and a
JSON body, with every body carrying a ``schema`` tag
(``repro.service.response/1``, ``repro.service.error/1`` or
``repro.service.stats/1``) so captured payloads validate offline via
``python -m repro.obs.validate --service-response``.

Dispatch is two-tier, mirroring the engine split the service fronts:

* the analytic endpoints (``execution-time``, ``tradeoff``, ``ranking``,
  ``advise``) are closed-form float arithmetic and run inline on the
  event loop;
* ``simulate`` first consults the content-addressed
  :class:`~repro.service.result_cache.ResultCache` (a hit costs one
  dict lookup and returns the *identical* result bytes) and otherwise
  awaits the micro-batch scheduler under the request's deadline.

The ``result`` sub-object of a simulate response is byte-identical to
:func:`repro.service.queries.timing_result_dict` rendered through
:func:`repro.util.jsonout.dump_json` — the ``cached`` flag lives in the
envelope precisely so caching can never change the result bytes.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import Any

from collections.abc import Callable

from repro.obs import live, tracing
from repro.obs.access_log import AccessLog, access_record
from repro.obs.live import (
    RollingWindow,
    render_prometheus,
    trace_tail_document,
)
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.schemas import (
    SERVICE_ERROR_SCHEMA,
    SERVICE_RESPONSE_SCHEMA,
    SERVICE_STATS_SCHEMA,
    SchemaError,
)
from repro.service import queries
from repro.service import schemas as request_schemas
from repro.service.batching import MicroBatcher, QueueFullError
from repro.service.http11 import HttpError, Request
from repro.service.result_cache import (
    ResultCache,
    result_key,
    simulate_key_material,
)
from repro.util.jsonout import dump_json

#: Fallback deadline for requests that do not send ``deadline_ms``.
DEFAULT_DEADLINE_S = 30.0

#: Per-endpoint latency samples retained for the stats percentiles.
LATENCY_WINDOW = 2048

_ANALYTIC = {
    "execution-time": (
        request_schemas.validate_execution_time,
        queries.execution_time_query,
    ),
    "tradeoff": (request_schemas.validate_tradeoff, queries.tradeoff_query),
    "ranking": (request_schemas.validate_ranking, queries.ranking_query),
    "advise": (request_schemas.validate_advise, queries.advise_query),
}

_POST_ENDPOINTS = frozenset(_ANALYTIC) | {"simulate"}
_GET_ENDPOINTS = frozenset(
    {
        "health",
        "stats",
        "healthz",
        "readyz",
        "metrics",
        "debug-trace",
        "debug-profile",
    }
)

#: Longest profiling window ``/v1/debug/profile`` accepts.  Kept well
#: under the drain grace period so an in-flight window never pins a
#: terminating server.
DEFAULT_PROFILE_MAX_SECONDS = 10.0

#: Operational endpoints served outside the ``/v1/`` namespace, where
#: load balancers and scrapers conventionally look for them.
_OPS_PATHS = {"/healthz": "healthz", "/readyz": "readyz", "/metrics": "metrics"}

#: Default response content type; ``/metrics`` overrides it with the
#: Prometheus text exposition type.
JSON_CONTENT_TYPE = "application/json"
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def error_body(status: int, code: str, message: str) -> bytes:
    """The structured error envelope every failure path emits."""
    return dump_json(
        {
            "schema": SERVICE_ERROR_SCHEMA,
            "error": {"code": code, "message": message, "status": status},
        }
    ).encode("utf-8")


class ServiceApp:
    """Routes parsed requests to queries; transport-independent."""

    def __init__(
        self,
        registry: MetricsRegistry,
        batcher: MicroBatcher,
        result_cache: ResultCache,
        default_deadline_s: float = DEFAULT_DEADLINE_S,
        window: RollingWindow | None = None,
        access_log: AccessLog | None = None,
        tracer: tracing.Tracer | None = None,
        is_ready: Callable[[], bool] | None = None,
        profile_max_seconds: float = DEFAULT_PROFILE_MAX_SECONDS,
    ) -> None:
        self.registry = registry
        self.batcher = batcher
        self.result_cache = result_cache
        self.default_deadline_s = default_deadline_s
        self.window = window
        self.access_log = access_log
        self.tracer = tracer
        self.is_ready = is_ready if is_ready is not None else (lambda: True)
        self.profile_max_seconds = profile_max_seconds
        self._latency_ms: dict[str, deque[float]] = {}

    # -- entry point ------------------------------------------------------

    async def handle(self, request: Request) -> tuple[int, bytes, str]:
        """One request in, one (status, body, content type) out; never raises."""
        endpoint = self._endpoint_of(request.path)
        started = time.perf_counter()
        error_code: str | None = None
        content_type = JSON_CONTENT_TYPE
        try:
            status, body, content_type = await self._dispatch(endpoint, request)
        except HttpError as error:
            error_code = error.code
            status, body = error.status, error_body(
                error.status, error.code, error.message
            )
        except SchemaError as error:
            error_code = "schema_error"
            status, body = 400, error_body(400, "schema_error", str(error))
        except queries.InvalidQuery as error:
            error_code = "invalid_params"
            status, body = 400, error_body(400, "invalid_params", str(error))
        except QueueFullError as error:
            error_code = "backpressure"
            status, body = 429, error_body(429, "backpressure", str(error))
        except asyncio.TimeoutError:
            error_code = "deadline_exceeded"
            status, body = 504, error_body(
                504, "deadline_exceeded", "request deadline elapsed"
            )
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            error_code = "internal_error"
            status, body = 500, error_body(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        label = endpoint or "unknown"
        self.registry.inc("service.requests", endpoint=label, status=status)
        self.registry.observe("service.latency_ms", elapsed_ms, endpoint=label)
        self._latency_ms.setdefault(
            label, deque(maxlen=LATENCY_WINDOW)
        ).append(elapsed_ms)
        if self.window is not None:
            self.window.record(label, status, elapsed_ms)
        if self.access_log is not None:
            annotations = live.current_annotations()
            deadline_ms = annotations.get("deadline_ms")
            if isinstance(deadline_ms, (int, float)):
                annotations["deadline_left_ms"] = round(
                    deadline_ms - elapsed_ms, 3
                )
            self.access_log.log(
                access_record(
                    request_id=live.current_request_id() or "-",
                    method=request.method,
                    path=request.path,
                    endpoint=label,
                    status=status,
                    latency_ms=elapsed_ms,
                    error_code=error_code,
                    **annotations,
                )
            )
        return status, body, content_type

    @staticmethod
    def _endpoint_of(path: str) -> str | None:
        path = path.partition("?")[0]
        ops = _OPS_PATHS.get(path)
        if ops is not None:
            return ops
        if path == "/v1/debug/trace":
            return "debug-trace"
        if path == "/v1/debug/profile":
            return "debug-profile"
        if not path.startswith("/v1/"):
            return None
        return path[len("/v1/") :] or None

    async def _dispatch(
        self, endpoint: str | None, request: Request
    ) -> tuple[int, bytes, str]:
        if endpoint is None or endpoint not in (_POST_ENDPOINTS | _GET_ENDPOINTS):
            raise HttpError(404, "not_found", f"no such endpoint {request.path!r}")
        expected = "GET" if endpoint in _GET_ENDPOINTS else "POST"
        if request.method != expected:
            raise HttpError(
                405,
                "method_not_allowed",
                f"{endpoint} requires {expected}, got {request.method}",
            )
        if endpoint == "health":
            return 200, self._success(endpoint, {"status": "ok"}), JSON_CONTENT_TYPE
        if endpoint == "healthz":
            # Liveness: the process is up and the loop responds — true
            # even while draining, so orchestrators don't kill a server
            # that is still answering in-flight work.
            body = dump_json({"status": "ok"}).encode("utf-8")
            return 200, body, JSON_CONTENT_TYPE
        if endpoint == "readyz":
            if not self.is_ready():
                raise HttpError(
                    503, "draining", "server is draining; send new work elsewhere"
                )
            body = dump_json({"status": "ready"}).encode("utf-8")
            return 200, body, JSON_CONTENT_TYPE
        if endpoint == "metrics":
            return 200, self._metrics_body(), METRICS_CONTENT_TYPE
        if endpoint == "debug-trace":
            return 200, self._trace_tail_body(request.path), JSON_CONTENT_TYPE
        if endpoint == "debug-profile":
            return (
                200,
                await self._debug_profile_body(request.path),
                JSON_CONTENT_TYPE,
            )
        if endpoint == "stats":
            return 200, self._stats_body(), JSON_CONTENT_TYPE
        with tracing.span("service.parse", endpoint=endpoint):
            params = self._parse_params(request.body)
        if endpoint == "simulate":
            status, body = await self._simulate(params)
            return status, body, JSON_CONTENT_TYPE
        validate, query = _ANALYTIC[endpoint]
        with tracing.span("service.dispatch", endpoint=endpoint):
            validated = validate(params)
            result = query(validated)
        with tracing.span("service.serialize", endpoint=endpoint):
            return 200, self._success(endpoint, result), JSON_CONTENT_TYPE

    @staticmethod
    def _parse_params(body: bytes) -> Any:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise HttpError(
                400, "invalid_json", f"request body is not JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "invalid_json", "request body must be a JSON object"
            )
        unknown = sorted(set(payload) - {"params"})
        if unknown:
            raise HttpError(
                400,
                "invalid_json",
                f"unknown top-level keys {unknown}; send {{'params': ...}}",
            )
        return payload.get("params", {})

    # -- the simulation endpoint ------------------------------------------

    async def _simulate(self, params: Any) -> tuple[int, bytes]:
        with tracing.span("service.dispatch", endpoint="simulate"):
            validated = request_schemas.validate_simulate(params)
            key = result_key(
                simulate_key_material(
                    queries.trace_fingerprint_of(validated["trace"]),
                    queries.cache_config_of(validated),
                    validated["policy"],
                    validated["memory_cycle"],
                    validated["bus_width"],
                    validated["write_buffer_depth"],
                    validated["pipelined_q"],
                    validated["issue_rate"],
                )
            )
            payload = self.result_cache.get(key)
        if payload is not None:
            self.registry.inc("service.result_cache.hits")
            live.annotate(cache="hit")
            with tracing.span("service.serialize", endpoint="simulate"):
                return 200, self._success(
                    "simulate", json.loads(payload), cached=True
                )
        self.registry.inc("service.result_cache.misses")
        deadline_ms = validated["deadline_ms"]
        live.annotate(cache="miss", batched=True, deadline_ms=deadline_ms)
        deadline_s = (
            deadline_ms / 1000.0
            if deadline_ms is not None
            else self.default_deadline_s
        )
        with tracing.span("service.batch_wait", key=key[:12]):
            result = await asyncio.wait_for(
                self.batcher.submit(validated), timeout=deadline_s
            )
        with tracing.span("service.serialize", endpoint="simulate"):
            result_bytes = dump_json(result).encode("utf-8")
            self.result_cache.put(key, result_bytes)
            return 200, self._success("simulate", result, cached=False)

    # -- live observability -------------------------------------------------

    def _metrics_body(self) -> bytes:
        """``GET /metrics``: the Prometheus text exposition."""
        gauges = {
            "service.ready": 1.0 if self.is_ready() else 0.0,
            "service.queue.depth_now": float(self.batcher.queue_depth),
            "service.queue.limit": float(self.batcher.max_pending),
            "service.result_cache.entries": float(len(self.result_cache)),
            "service.result_cache.bytes": float(self.result_cache.size_bytes),
            "service.result_cache.capacity_bytes": float(
                self.result_cache.capacity_bytes
            ),
        }
        window_summary = (
            self.window.summary() if self.window is not None else None
        )
        text = render_prometheus(
            self.registry.snapshot(), window_summary, gauges
        )
        return text.encode("utf-8")

    def _trace_tail_body(self, path: str) -> bytes:
        """``GET /v1/debug/trace?last=N``: the span ring buffer tail."""
        last: int | None = None
        for item in path.partition("?")[2].split("&"):
            name, _, value = item.partition("=")
            if name == "last" and value:
                try:
                    last = int(value)
                except ValueError:
                    raise HttpError(
                        400,
                        "bad_query",
                        f"last must be an integer, got {value!r}",
                    ) from None
        tracer = (
            self.tracer if self.tracer is not None else tracing.current_tracer()
        )
        return dump_json(trace_tail_document(tracer, last)).encode("utf-8")

    async def _debug_profile_body(self, path: str) -> bytes:
        """``GET /v1/debug/profile?seconds=N&hz=M``: on-demand sampling.

        Runs one :class:`~repro.obs.profile.SamplingProfiler` window over
        the live process and returns the ``repro.obs.profile/1`` document
        (the raw artifact, like ``/v1/debug/trace`` — not the service
        envelope, so it validates offline as-is).  The event loop keeps
        serving during the window; concurrent requests therefore show up
        in the samples, which is the point.  A second window while one is
        active is 409; a draining server refuses new windows with 503.
        """
        from repro.obs.profile import (
            DEFAULT_HZ,
            ProfilerActiveError,
            SamplingProfiler,
        )

        seconds, hz = 1.0, DEFAULT_HZ
        for item in path.partition("?")[2].split("&"):
            name, _, value = item.partition("=")
            if not value:
                continue
            if name == "seconds":
                try:
                    seconds = float(value)
                except ValueError:
                    raise HttpError(
                        400,
                        "bad_query",
                        f"seconds must be a number, got {value!r}",
                    ) from None
            elif name == "hz":
                try:
                    hz = int(value)
                except ValueError:
                    raise HttpError(
                        400,
                        "bad_query",
                        f"hz must be an integer, got {value!r}",
                    ) from None
        if not 0 < seconds <= self.profile_max_seconds:
            raise HttpError(
                400,
                "bad_query",
                f"seconds must be within (0, {self.profile_max_seconds:g}], "
                f"got {seconds:g}",
            )
        if not 1 <= hz <= 1000:
            raise HttpError(
                400, "bad_query", f"hz must be within [1, 1000], got {hz}"
            )
        if not self.is_ready():
            raise HttpError(
                503,
                "draining",
                "server is draining; not starting a profile window",
            )
        try:
            profiler = SamplingProfiler(hz=hz).start()
        except ProfilerActiveError as error:
            raise HttpError(409, "profile_active", str(error)) from None
        live.annotate(profile_id=profiler.id)
        try:
            await asyncio.sleep(seconds)
        finally:
            profiler.stop()
        return dump_json(profiler.document()).encode("utf-8")

    # -- envelopes ---------------------------------------------------------

    @staticmethod
    def _success(endpoint: str, result: Any, cached: bool | None = None) -> bytes:
        envelope: dict[str, Any] = {
            "schema": SERVICE_RESPONSE_SCHEMA,
            "endpoint": endpoint,
            "result": result,
        }
        if cached is not None:
            envelope["cached"] = cached
        return dump_json(envelope).encode("utf-8")

    def _stats_body(self) -> bytes:
        latency = {}
        for endpoint, samples in sorted(self._latency_ms.items()):
            values = list(samples)
            latency[endpoint] = {
                "count": len(values),
                "p50_ms": percentile(values, 50.0),
                "p99_ms": percentile(values, 99.0),
            }
        stats = {
            "schema": SERVICE_STATS_SCHEMA,
            **self.registry.snapshot(),
            "queue": {
                "depth": self.batcher.queue_depth,
                "limit": self.batcher.max_pending,
            },
            "result_cache": {
                "entries": len(self.result_cache),
                "bytes": self.result_cache.size_bytes,
                "capacity_bytes": self.result_cache.capacity_bytes,
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "evictions": self.result_cache.evictions,
                "hit_rate": self.result_cache.hit_rate,
            },
            "latency": latency,
        }
        return dump_json(stats).encode("utf-8")
