"""Request routing, envelopes, and the result cache for the service.

:class:`ServiceApp` is the transport-free core of the server: it maps a
parsed :class:`~repro.service.http11.Request` to a status code and a
JSON body, with every body carrying a ``schema`` tag
(``repro.service.response/1``, ``repro.service.error/1`` or
``repro.service.stats/1``) so captured payloads validate offline via
``python -m repro.obs.validate --service-response``.

Dispatch is two-tier, mirroring the engine split the service fronts:

* the analytic endpoints (``execution-time``, ``tradeoff``, ``ranking``,
  ``advise``) are closed-form float arithmetic and run inline on the
  event loop;
* ``simulate`` first consults the content-addressed
  :class:`~repro.service.result_cache.ResultCache` (a hit costs one
  dict lookup and returns the *identical* result bytes) and otherwise
  awaits the micro-batch scheduler under the request's deadline.

The ``result`` sub-object of a simulate response is byte-identical to
:func:`repro.service.queries.timing_result_dict` rendered through
:func:`repro.util.jsonout.dump_json` — the ``cached`` flag lives in the
envelope precisely so caching can never change the result bytes.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import Any

from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.schemas import (
    SERVICE_ERROR_SCHEMA,
    SERVICE_RESPONSE_SCHEMA,
    SERVICE_STATS_SCHEMA,
    SchemaError,
)
from repro.service import queries
from repro.service import schemas as request_schemas
from repro.service.batching import MicroBatcher, QueueFullError
from repro.service.http11 import HttpError, Request
from repro.service.result_cache import (
    ResultCache,
    result_key,
    simulate_key_material,
)
from repro.util.jsonout import dump_json

#: Fallback deadline for requests that do not send ``deadline_ms``.
DEFAULT_DEADLINE_S = 30.0

#: Per-endpoint latency samples retained for the stats percentiles.
LATENCY_WINDOW = 2048

_ANALYTIC = {
    "execution-time": (
        request_schemas.validate_execution_time,
        queries.execution_time_query,
    ),
    "tradeoff": (request_schemas.validate_tradeoff, queries.tradeoff_query),
    "ranking": (request_schemas.validate_ranking, queries.ranking_query),
    "advise": (request_schemas.validate_advise, queries.advise_query),
}

_POST_ENDPOINTS = frozenset(_ANALYTIC) | {"simulate"}
_GET_ENDPOINTS = frozenset({"health", "stats"})


def error_body(status: int, code: str, message: str) -> bytes:
    """The structured error envelope every failure path emits."""
    return dump_json(
        {
            "schema": SERVICE_ERROR_SCHEMA,
            "error": {"code": code, "message": message, "status": status},
        }
    ).encode("utf-8")


class ServiceApp:
    """Routes parsed requests to queries; transport-independent."""

    def __init__(
        self,
        registry: MetricsRegistry,
        batcher: MicroBatcher,
        result_cache: ResultCache,
        default_deadline_s: float = DEFAULT_DEADLINE_S,
    ) -> None:
        self.registry = registry
        self.batcher = batcher
        self.result_cache = result_cache
        self.default_deadline_s = default_deadline_s
        self._latency_ms: dict[str, deque[float]] = {}

    # -- entry point ------------------------------------------------------

    async def handle(self, request: Request) -> tuple[int, bytes]:
        """One request in, one (status, JSON body) out; never raises."""
        endpoint = self._endpoint_of(request.path)
        started = time.perf_counter()
        try:
            status, body = await self._dispatch(endpoint, request)
        except HttpError as error:
            status, body = error.status, error_body(
                error.status, error.code, error.message
            )
        except SchemaError as error:
            status, body = 400, error_body(400, "schema_error", str(error))
        except queries.InvalidQuery as error:
            status, body = 400, error_body(400, "invalid_params", str(error))
        except QueueFullError as error:
            status, body = 429, error_body(429, "backpressure", str(error))
        except asyncio.TimeoutError:
            status, body = 504, error_body(
                504, "deadline_exceeded", "request deadline elapsed"
            )
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            status, body = 500, error_body(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        label = endpoint or "unknown"
        self.registry.inc("service.requests", endpoint=label, status=status)
        self.registry.observe("service.latency_ms", elapsed_ms, endpoint=label)
        self._latency_ms.setdefault(
            label, deque(maxlen=LATENCY_WINDOW)
        ).append(elapsed_ms)
        return status, body

    @staticmethod
    def _endpoint_of(path: str) -> str | None:
        path = path.partition("?")[0]
        if not path.startswith("/v1/"):
            return None
        return path[len("/v1/") :] or None

    async def _dispatch(
        self, endpoint: str | None, request: Request
    ) -> tuple[int, bytes]:
        if endpoint is None or endpoint not in (_POST_ENDPOINTS | _GET_ENDPOINTS):
            raise HttpError(404, "not_found", f"no such endpoint {request.path!r}")
        expected = "GET" if endpoint in _GET_ENDPOINTS else "POST"
        if request.method != expected:
            raise HttpError(
                405,
                "method_not_allowed",
                f"{endpoint} requires {expected}, got {request.method}",
            )
        if endpoint == "health":
            return 200, self._success(endpoint, {"status": "ok"})
        if endpoint == "stats":
            return 200, self._stats_body()
        with tracing.span("service.parse", endpoint=endpoint):
            params = self._parse_params(request.body)
        if endpoint == "simulate":
            return await self._simulate(params)
        validate, query = _ANALYTIC[endpoint]
        with tracing.span("service.dispatch", endpoint=endpoint):
            validated = validate(params)
            result = query(validated)
        with tracing.span("service.serialize", endpoint=endpoint):
            return 200, self._success(endpoint, result)

    @staticmethod
    def _parse_params(body: bytes) -> Any:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise HttpError(
                400, "invalid_json", f"request body is not JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "invalid_json", "request body must be a JSON object"
            )
        unknown = sorted(set(payload) - {"params"})
        if unknown:
            raise HttpError(
                400,
                "invalid_json",
                f"unknown top-level keys {unknown}; send {{'params': ...}}",
            )
        return payload.get("params", {})

    # -- the simulation endpoint ------------------------------------------

    async def _simulate(self, params: Any) -> tuple[int, bytes]:
        with tracing.span("service.dispatch", endpoint="simulate"):
            validated = request_schemas.validate_simulate(params)
            key = result_key(
                simulate_key_material(
                    queries.trace_fingerprint_of(validated["trace"]),
                    queries.cache_config_of(validated),
                    validated["policy"],
                    validated["memory_cycle"],
                    validated["bus_width"],
                    validated["write_buffer_depth"],
                    validated["pipelined_q"],
                    validated["issue_rate"],
                )
            )
            payload = self.result_cache.get(key)
        if payload is not None:
            self.registry.inc("service.result_cache.hits")
            with tracing.span("service.serialize", endpoint="simulate"):
                return 200, self._success(
                    "simulate", json.loads(payload), cached=True
                )
        self.registry.inc("service.result_cache.misses")
        deadline_ms = validated["deadline_ms"]
        deadline_s = (
            deadline_ms / 1000.0
            if deadline_ms is not None
            else self.default_deadline_s
        )
        with tracing.span("service.batch_wait", key=key[:12]):
            result = await asyncio.wait_for(
                self.batcher.submit(validated), timeout=deadline_s
            )
        with tracing.span("service.serialize", endpoint="simulate"):
            result_bytes = dump_json(result).encode("utf-8")
            self.result_cache.put(key, result_bytes)
            return 200, self._success("simulate", result, cached=False)

    # -- envelopes ---------------------------------------------------------

    @staticmethod
    def _success(endpoint: str, result: Any, cached: bool | None = None) -> bytes:
        envelope: dict[str, Any] = {
            "schema": SERVICE_RESPONSE_SCHEMA,
            "endpoint": endpoint,
            "result": result,
        }
        if cached is not None:
            envelope["cached"] = cached
        return dump_json(envelope).encode("utf-8")

    def _stats_body(self) -> bytes:
        latency = {}
        for endpoint, samples in sorted(self._latency_ms.items()):
            values = list(samples)
            latency[endpoint] = {
                "count": len(values),
                "p50_ms": percentile(values, 50.0),
                "p99_ms": percentile(values, 99.0),
            }
        stats = {
            "schema": SERVICE_STATS_SCHEMA,
            **self.registry.snapshot(),
            "queue": {
                "depth": self.batcher.queue_depth,
                "limit": self.batcher.max_pending,
            },
            "result_cache": {
                "entries": len(self.result_cache),
                "bytes": self.result_cache.size_bytes,
                "capacity_bytes": self.result_cache.capacity_bytes,
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "evictions": self.result_cache.evictions,
                "hit_rate": self.result_cache.hit_rate,
            },
            "latency": latency,
        }
        return dump_json(stats).encode("utf-8")
