"""Request routing, envelopes, and the result cache for the service.

:class:`ServiceApp` is the transport-free core of the server: it maps a
parsed :class:`~repro.service.http11.Request` to a status code and a
JSON body, with every body carrying a ``schema`` tag
(``repro.service.response/1``, ``repro.service.error/1`` or
``repro.service.stats/1``) so captured payloads validate offline via
``python -m repro.obs.validate --service-response``.

Dispatch is two-tier, mirroring the engine split the service fronts:

* the analytic endpoints (``execution-time``, ``tradeoff``, ``ranking``,
  ``advise``) are closed-form float arithmetic and run inline on the
  event loop;
* ``simulate`` first consults the content-addressed
  :class:`~repro.service.result_cache.ResultCache` (a hit costs one
  dict lookup and returns the *identical* result bytes), then the
  optional disk-backed
  :class:`~repro.service.disk_cache.DiskResultCache` (a hit is promoted
  into memory), and otherwise awaits the micro-batch scheduler under
  the request's deadline;
* ``sweep`` streams a whole parameter grid as chunked JSONL — one line
  per grid point, produced through the same caches and batcher in
  bounded chunks, so a million-point grid never materialises in memory
  (see :class:`StreamBody` and ``docs/SERVICE.md``).

The ``result`` sub-object of a simulate response is byte-identical to
:func:`repro.service.queries.timing_result_dict` rendered through
:func:`repro.util.jsonout.dump_json` — the ``cached`` flag lives in the
envelope precisely so caching can never change the result bytes.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import Any

from collections.abc import Callable

from repro.obs import live, tracing
from repro.obs.access_log import AccessLog, access_record
from repro.obs.live import (
    RollingWindow,
    render_prometheus,
    trace_tail_document,
)
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.schemas import (
    SERVICE_ERROR_SCHEMA,
    SERVICE_RESPONSE_SCHEMA,
    SERVICE_STATS_SCHEMA,
    SERVICE_SWEEP_SCHEMA,
    SchemaError,
)
from repro.service import queries
from repro.service import schemas as request_schemas
from repro.service.batching import MicroBatcher, QueueFullError
from repro.service.disk_cache import DiskResultCache
from repro.service.http11 import HttpError, Request
from repro.service.result_cache import (
    ResultCache,
    result_key,
    simulate_key_material,
)
from repro.util.jsonout import dump_json, dump_json_line

#: Fallback deadline for requests that do not send ``deadline_ms``.
DEFAULT_DEADLINE_S = 30.0

#: Per-endpoint latency samples retained for the stats percentiles.
LATENCY_WINDOW = 2048

_ANALYTIC = {
    "execution-time": (
        request_schemas.validate_execution_time,
        queries.execution_time_query,
    ),
    "tradeoff": (request_schemas.validate_tradeoff, queries.tradeoff_query),
    "ranking": (request_schemas.validate_ranking, queries.ranking_query),
    "advise": (request_schemas.validate_advise, queries.advise_query),
}

_POST_ENDPOINTS = frozenset(_ANALYTIC) | {"simulate", "sweep", "campaigns"}
_GET_ENDPOINTS = frozenset(
    {
        "health",
        "stats",
        "healthz",
        "readyz",
        "metrics",
        "debug-trace",
        "debug-spans",
        "debug-profile",
        "campaigns",
        "campaign-status",
        "campaign-results",
    }
)

#: Longest profiling window ``/v1/debug/profile`` accepts.  Kept well
#: under the drain grace period so an in-flight window never pins a
#: terminating server.
DEFAULT_PROFILE_MAX_SECONDS = 10.0

#: Operational endpoints served outside the ``/v1/`` namespace, where
#: load balancers and scrapers conventionally look for them.
_OPS_PATHS = {"/healthz": "healthz", "/readyz": "readyz", "/metrics": "metrics"}

#: Default response content type; ``/metrics`` overrides it with the
#: Prometheus text exposition type.
JSON_CONTENT_TYPE = "application/json"
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def error_body(status: int, code: str, message: str) -> bytes:
    """The structured error envelope every failure path emits."""
    return dump_json(
        {
            "schema": SERVICE_ERROR_SCHEMA,
            "error": {"code": code, "message": message, "status": status},
        }
    ).encode("utf-8")


class StreamBody:
    """A response body produced incrementally (chunked JSONL).

    :meth:`ServiceApp.handle` returns one of these instead of ``bytes``
    for streaming endpoints; the connection handler in
    :mod:`repro.service.server` then writes a chunked transfer-encoded
    response, draining the async iterator one chunk at a time.  The
    per-request accounting (metrics, SLI window, access log) is wrapped
    around the iterator and fires when the stream finishes — including
    when the client disconnects mid-stream and the generator is closed.
    """

    def __init__(self, chunks: Any, content_type: str = "application/x-ndjson") -> None:
        self._chunks = chunks
        self.content_type = content_type

    def __aiter__(self) -> Any:
        return self._chunks.__aiter__()


class ServiceApp:
    """Routes parsed requests to queries; transport-independent."""

    def __init__(
        self,
        registry: MetricsRegistry,
        batcher: MicroBatcher,
        result_cache: ResultCache,
        default_deadline_s: float = DEFAULT_DEADLINE_S,
        window: RollingWindow | None = None,
        access_log: AccessLog | None = None,
        tracer: tracing.Tracer | None = None,
        is_ready: Callable[[], bool] | None = None,
        profile_max_seconds: float = DEFAULT_PROFILE_MAX_SECONDS,
        disk_cache: DiskResultCache | None = None,
        shed_watermark: int | None = None,
        span_spool: Any = None,
    ) -> None:
        self.registry = registry
        self.batcher = batcher
        self.result_cache = result_cache
        self.default_deadline_s = default_deadline_s
        self.window = window
        self.access_log = access_log
        self.tracer = tracer
        self.is_ready = is_ready if is_ready is not None else (lambda: True)
        self.profile_max_seconds = profile_max_seconds
        self.disk_cache = disk_cache
        self.shed_watermark = shed_watermark
        self.span_spool = span_spool
        #: Assigned by the server after construction when it was started
        #: with ``--campaign-dir`` (a CampaignService); None => the
        #: campaign endpoints answer 503 ``campaigns_disabled``.
        self.campaign_service: Any = None
        self._latency_ms: dict[str, deque[float]] = {}

    # -- entry point ------------------------------------------------------

    async def handle(
        self, request: Request
    ) -> tuple[int, bytes | StreamBody, str]:
        """One request in, one (status, body, content type) out; never raises.

        The body is ``bytes`` for ordinary endpoints and a
        :class:`StreamBody` for the streaming ones (``/v1/sweep``); a
        streaming body defers the per-request accounting to the moment
        the stream completes, so the access log records the true
        wall-clock of the whole stream.
        """
        endpoint = self._endpoint_of(request.path)
        started = time.perf_counter()
        error_code: str | None = None
        content_type = JSON_CONTENT_TYPE
        body: bytes | StreamBody
        try:
            status, body, content_type = await self._dispatch(endpoint, request)
        except HttpError as error:
            error_code = error.code
            status, body = error.status, error_body(
                error.status, error.code, error.message
            )
        except SchemaError as error:
            error_code = "schema_error"
            status, body = 400, error_body(400, "schema_error", str(error))
        except queries.InvalidQuery as error:
            error_code = "invalid_params"
            status, body = 400, error_body(400, "invalid_params", str(error))
        except QueueFullError as error:
            error_code = "backpressure"
            status, body = 429, error_body(429, "backpressure", str(error))
        except asyncio.TimeoutError:
            error_code = "deadline_exceeded"
            status, body = 504, error_body(
                504, "deadline_exceeded", "request deadline elapsed"
            )
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            error_code = "internal_error"
            status, body = 500, error_body(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )
        if isinstance(body, StreamBody):
            return (
                status,
                self._accounted_stream(request, endpoint, status, started, body),
                content_type,
            )
        self._account(request, endpoint, status, started, error_code)
        return status, body, content_type

    def _account(
        self,
        request: Request,
        endpoint: str | None,
        status: int,
        started: float,
        error_code: str | None,
    ) -> None:
        """Per-request accounting: counters, SLI window, access log."""
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        label = endpoint or "unknown"
        trace_context = tracing.current_trace_context()
        self.registry.inc("service.requests", endpoint=label, status=status)
        self.registry.observe("service.latency_ms", elapsed_ms, endpoint=label)
        self._latency_ms.setdefault(
            label, deque(maxlen=LATENCY_WINDOW)
        ).append(elapsed_ms)
        if self.window is not None:
            self.window.record(
                label,
                status,
                elapsed_ms,
                trace_id=trace_context[0] if trace_context else None,
            )
        if self.access_log is not None:
            annotations = live.current_annotations()
            deadline_ms = annotations.get("deadline_ms")
            if isinstance(deadline_ms, (int, float)):
                annotations["deadline_left_ms"] = round(
                    deadline_ms - elapsed_ms, 3
                )
            worker = live.current_worker_id()
            if worker is not None:
                annotations.setdefault("worker", worker)
            if trace_context is not None:
                # The trace identity joins this line to its span tree:
                # span_id is the request's root span (when tracing is
                # recording), trace_id greps across every process the
                # request touched.
                annotations.setdefault("trace_id", trace_context[0])
                if trace_context[1]:
                    annotations.setdefault("span_id", trace_context[1])
            self.access_log.log(
                access_record(
                    request_id=live.current_request_id() or "-",
                    method=request.method,
                    path=request.path,
                    endpoint=label,
                    status=status,
                    latency_ms=elapsed_ms,
                    error_code=error_code,
                    **annotations,
                )
            )

    def _accounted_stream(
        self,
        request: Request,
        endpoint: str | None,
        status: int,
        started: float,
        body: StreamBody,
    ) -> StreamBody:
        """Wrap a stream so accounting fires when it finishes (or dies)."""

        async def run() -> Any:
            error_code: str | None = None
            try:
                async for chunk in body:
                    yield chunk
            except Exception:
                error_code = "stream_error"
                raise
            finally:
                self._account(request, endpoint, status, started, error_code)

        return StreamBody(run(), content_type=body.content_type)

    @staticmethod
    def _endpoint_of(path: str) -> str | None:
        path = path.partition("?")[0]
        ops = _OPS_PATHS.get(path)
        if ops is not None:
            return ops
        if path == "/v1/debug/trace":
            return "debug-trace"
        if path == "/v1/debug/spans":
            return "debug-spans"
        if path == "/v1/debug/profile":
            return "debug-profile"
        if path == "/v1/campaigns":
            return "campaigns"
        if path.startswith("/v1/campaigns/"):
            rest = path[len("/v1/campaigns/") :]
            if rest.endswith("/results"):
                return "campaign-results"
            return "campaign-status"
        if not path.startswith("/v1/"):
            return None
        return path[len("/v1/") :] or None

    async def _dispatch(
        self, endpoint: str | None, request: Request
    ) -> tuple[int, bytes | StreamBody, str]:
        if endpoint is None or endpoint not in (_POST_ENDPOINTS | _GET_ENDPOINTS):
            raise HttpError(404, "not_found", f"no such endpoint {request.path!r}")
        allowed = {
            method
            for method, members in (
                ("GET", _GET_ENDPOINTS),
                ("POST", _POST_ENDPOINTS),
            )
            if endpoint in members
        }
        if request.method not in allowed:
            raise HttpError(
                405,
                "method_not_allowed",
                f"{endpoint} requires {' or '.join(sorted(allowed))}, "
                f"got {request.method}",
            )
        if endpoint == "health":
            return 200, self._success(endpoint, {"status": "ok"}), JSON_CONTENT_TYPE
        if endpoint == "healthz":
            # Liveness: the process is up and the loop responds — true
            # even while draining, so orchestrators don't kill a server
            # that is still answering in-flight work.
            body = dump_json({"status": "ok"}).encode("utf-8")
            return 200, body, JSON_CONTENT_TYPE
        if endpoint == "readyz":
            if not self.is_ready():
                raise HttpError(
                    503, "draining", "server is draining; send new work elsewhere"
                )
            body = dump_json({"status": "ready"}).encode("utf-8")
            return 200, body, JSON_CONTENT_TYPE
        if endpoint == "metrics":
            return 200, self._metrics_body(), METRICS_CONTENT_TYPE
        if endpoint == "debug-trace":
            return 200, self._trace_tail_body(request.path), JSON_CONTENT_TYPE
        if endpoint == "debug-spans":
            return 200, self._spans_body(request.path), JSON_CONTENT_TYPE
        if endpoint == "debug-profile":
            return (
                200,
                await self._debug_profile_body(request.path),
                JSON_CONTENT_TYPE,
            )
        if endpoint == "stats":
            return 200, self._stats_body(), JSON_CONTENT_TYPE
        if endpoint == "campaigns":
            if request.method == "GET":
                return (
                    200,
                    self._success(
                        endpoint,
                        {"campaigns": self._campaigns_service().list()},
                    ),
                    JSON_CONTENT_TYPE,
                )
            return 200, self._campaigns_submit(request), JSON_CONTENT_TYPE
        if endpoint == "campaign-status":
            campaign = self._campaign_of(request.path)
            live.annotate(campaign=campaign.id[:12])
            return (
                200,
                self._success(
                    endpoint, self._campaigns_service().describe(campaign.id)
                ),
                JSON_CONTENT_TYPE,
            )
        if endpoint == "campaign-results":
            campaign = self._campaign_of(request.path)
            live.annotate(campaign=campaign.id[:12])
            return (
                200,
                StreamBody(self._campaign_result_chunks(campaign)),
                "application/x-ndjson",
            )
        with tracing.span("service.parse", endpoint=endpoint):
            params = self._parse_params(request.body)
        if endpoint == "sweep":
            return 200, self._sweep(params), "application/x-ndjson"
        if endpoint == "simulate":
            status, body = await self._simulate(params)
            return status, body, JSON_CONTENT_TYPE
        validate, query = _ANALYTIC[endpoint]
        with tracing.span("service.dispatch", endpoint=endpoint):
            validated = validate(params)
            result = query(validated)
        with tracing.span("service.serialize", endpoint=endpoint):
            return 200, self._success(endpoint, result), JSON_CONTENT_TYPE

    @staticmethod
    def _parse_params(body: bytes) -> Any:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise HttpError(
                400, "invalid_json", f"request body is not JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "invalid_json", "request body must be a JSON object"
            )
        unknown = sorted(set(payload) - {"params"})
        if unknown:
            raise HttpError(
                400,
                "invalid_json",
                f"unknown top-level keys {unknown}; send {{'params': ...}}",
            )
        return payload.get("params", {})

    # -- the simulation endpoint ------------------------------------------

    @staticmethod
    def _result_key_of(validated: dict[str, Any]) -> str:
        """The content-addressed result key for one validated request."""
        return result_key(
            simulate_key_material(
                queries.trace_fingerprint_of(validated["trace"]),
                queries.cache_config_of(validated),
                validated["policy"],
                validated["memory_cycle"],
                validated["bus_width"],
                validated["write_buffer_depth"],
                validated["pipelined_q"],
                validated["issue_rate"],
            )
        )

    def _cache_lookup(self, key: str) -> bytes | None:
        """Two-tier lookup: memory first, then disk (promoting on hit)."""
        payload = self.result_cache.get(key)
        if payload is not None:
            return payload
        if self.disk_cache is not None:
            payload = self.disk_cache.get(key)
            if payload is not None:
                self.result_cache.put(key, payload)
                return payload
        return None

    def _cache_store(self, key: str, payload: bytes) -> None:
        """Store a freshly computed result in both cache tiers."""
        self.result_cache.put(key, payload)
        if self.disk_cache is not None:
            self.disk_cache.put(key, payload)

    def _deadline_s_of(self, validated: dict[str, Any]) -> float:
        deadline_ms = validated["deadline_ms"]
        return (
            deadline_ms / 1000.0
            if deadline_ms is not None
            else self.default_deadline_s
        )

    async def _simulate(self, params: Any) -> tuple[int, bytes]:
        with tracing.span("service.dispatch", endpoint="simulate"):
            validated = request_schemas.validate_simulate(params)
            key = self._result_key_of(validated)
            payload = self._cache_lookup(key)
        if payload is not None:
            self.registry.inc("service.result_cache.hits")
            live.annotate(cache="hit")
            with tracing.span("service.serialize", endpoint="simulate"):
                return 200, self._success(
                    "simulate", json.loads(payload), cached=True
                )
        self.registry.inc("service.result_cache.misses")
        if (
            self.shed_watermark is not None
            and self.batcher.queue_depth >= self.shed_watermark
        ):
            # Admission control: above the watermark a cache miss is shed
            # *before* it joins the queue, so queued work keeps meeting
            # its deadlines instead of everyone timing out together.
            self.registry.inc("service.admission.shed")
            raise HttpError(
                429,
                "shed",
                f"queue depth at admission watermark "
                f"({self.shed_watermark}); retry with backoff",
            )
        deadline_ms = validated["deadline_ms"]
        live.annotate(cache="miss", batched=True, deadline_ms=deadline_ms)
        with tracing.span("service.batch_wait", key=key[:12]):
            result = await asyncio.wait_for(
                self.batcher.submit(validated),
                timeout=self._deadline_s_of(validated),
            )
        with tracing.span("service.serialize", endpoint="simulate"):
            result_bytes = dump_json(result).encode("utf-8")
            self._cache_store(key, result_bytes)
            return 200, self._success("simulate", result, cached=False)

    # -- the sweep endpoint ------------------------------------------------

    #: Grid points submitted to the batcher at once per sweep stream.
    #: Bounded so a sweep can never occupy the whole admission queue;
    #: one chunk also forms one coalescing opportunity for the batcher.
    SWEEP_CHUNK = 32

    def _sweep(self, params: Any) -> StreamBody:
        """``POST /v1/sweep``: validate eagerly, then stream the grid.

        Validation happens before the stream head is committed, so a bad
        request is still an ordinary 400 envelope.  Everything after the
        first byte of the body is point-level: a point that fails mid-
        stream becomes an ``error`` line, never a broken connection.
        """
        with tracing.span("service.dispatch", endpoint="sweep"):
            validated = request_schemas.validate_sweep(params)
            total = request_schemas.sweep_point_count(validated)
        live.annotate(sweep_points=total)
        return StreamBody(self._sweep_lines(validated, total))

    async def _sweep_lines(self, validated: dict[str, Any], total: int) -> Any:
        header = {
            "schema": SERVICE_SWEEP_SCHEMA,
            "points": total,
            "grid": {
                "caches": len(validated["caches"]),
                "policies": len(validated["policies"]),
                "memory_cycles": len(validated["memory_cycles"]),
            },
        }
        yield (dump_json_line(header) + "\n").encode("utf-8")
        chunk_size = max(1, min(self.SWEEP_CHUNK, self.batcher.max_pending))
        errors = 0
        batch: list[tuple[int, dict[str, Any], dict[str, Any]]] = []
        for item in request_schemas.sweep_grid(validated):
            batch.append(item)
            if len(batch) >= chunk_size:
                lines, failed = await self._sweep_chunk(batch)
                errors += failed
                yield lines
                batch = []
        if batch:
            lines, failed = await self._sweep_chunk(batch)
            errors += failed
            yield lines
        summary = {"done": True, "errors": errors, "points": total}
        yield (dump_json_line(summary) + "\n").encode("utf-8")

    async def _sweep_chunk(
        self, batch: list[tuple[int, dict[str, Any], dict[str, Any]]]
    ) -> tuple[bytes, int]:
        """Resolve one bounded chunk of grid points; returns (lines, errors).

        Cache hits resolve synchronously; the misses are submitted to
        the micro-batcher *together* so shared (trace, geometry) keys in
        the chunk coalesce into shared phase-1 work, exactly as
        concurrent ``/v1/simulate`` requests would.
        """
        resolved: list[tuple[int, dict[str, Any], Any, bool]] = []
        pending: list[tuple[int, dict[str, Any], str, dict[str, Any]]] = []
        for index, point, params in batch:
            key = self._result_key_of(params)
            payload = self._cache_lookup(key)
            if payload is not None:
                self.registry.inc("service.result_cache.hits")
                resolved.append((index, point, json.loads(payload), True))
            else:
                self.registry.inc("service.result_cache.misses")
                pending.append((index, point, key, params))
        if pending:
            with tracing.span("service.batch_wait", points=len(pending)):
                outcomes = await asyncio.gather(
                    *(
                        asyncio.wait_for(
                            self.batcher.submit(params),
                            timeout=self._deadline_s_of(params),
                        )
                        for _, _, _, params in pending
                    ),
                    return_exceptions=True,
                )
            for (index, point, key, _params), outcome in zip(pending, outcomes):
                if isinstance(outcome, BaseException):
                    resolved.append((index, point, outcome, False))
                else:
                    self._cache_store(
                        key, dump_json(outcome).encode("utf-8")
                    )
                    resolved.append((index, point, outcome, False))
        lines: list[str] = []
        failed = 0
        for index, point, outcome, cached in sorted(resolved):
            if isinstance(outcome, BaseException):
                failed += 1
                status, code = self._classify_point_error(outcome)
                record: dict[str, Any] = {
                    "error": {
                        "code": code,
                        "message": str(outcome) or type(outcome).__name__,
                        "status": status,
                    },
                    "index": index,
                    "point": point,
                }
                self.registry.inc("service.sweep.errors")
            else:
                record = {
                    "cached": cached,
                    "index": index,
                    "point": point,
                    "result": outcome,
                }
            self.registry.inc("service.sweep.points")
            lines.append(dump_json_line(record) + "\n")
        return "".join(lines).encode("utf-8"), failed

    @staticmethod
    def _classify_point_error(error: BaseException) -> tuple[int, str]:
        if isinstance(error, QueueFullError):
            return 429, "backpressure"
        if isinstance(error, asyncio.TimeoutError):
            return 504, "deadline_exceeded"
        if isinstance(error, queries.InvalidQuery):
            return 400, "invalid_params"
        return 500, "internal_error"

    # -- the campaign endpoints ---------------------------------------------

    def _campaigns_service(self) -> Any:
        if self.campaign_service is None:
            raise HttpError(
                503,
                "campaigns_disabled",
                "server started without --campaign-dir",
            )
        return self.campaign_service

    def _campaign_of(self, path: str) -> Any:
        """Resolve ``/v1/campaigns/{ref}[/results]`` to a campaign."""
        rest = path.partition("?")[0][len("/v1/campaigns/") :]
        ref = rest[: -len("/results")] if rest.endswith("/results") else rest
        if not ref:
            raise HttpError(404, "not_found", "empty campaign reference")
        try:
            return self._campaigns_service().find(ref)
        except KeyError as error:
            raise HttpError(404, "not_found", str(error)) from None

    def _campaigns_submit(self, request: Request) -> bytes:
        service = self._campaigns_service()
        with tracing.span("service.parse", endpoint="campaigns"):
            params = self._parse_params(request.body)
        if not isinstance(params, dict) or "spec" not in params:
            raise HttpError(
                400,
                "invalid_json",
                "campaign submission must send {'params': {'spec': ...}}",
            )
        with tracing.span("service.dispatch", endpoint="campaigns"):
            view = service.submit(params["spec"])
        live.annotate(campaign=view["campaign"][:12])
        return self._success("campaigns", view)

    async def _campaign_result_chunks(self, campaign: Any) -> Any:
        """The campaign's results stream as chunked JSONL.

        The registry's generator is synchronous (state + artifacts are
        local files); yielding control between lines keeps a long stream
        from monopolising the event loop.
        """
        for line in campaign.result_lines():
            yield line
            await asyncio.sleep(0)

    async def resolve_point(self, validated: dict[str, Any]) -> dict[str, Any]:
        """One campaign point through the interactive caches + batcher.

        The per-point resolver behind :class:`~repro.campaign.service
        .CampaignService` — returns the bare result object (the envelope
        is a transport concern; artifacts store canonical result bytes).
        The router overrides this to forward to the owning worker.
        """
        key = self._result_key_of(validated)
        payload = self._cache_lookup(key)
        if payload is not None:
            self.registry.inc("service.result_cache.hits")
            return json.loads(payload)
        self.registry.inc("service.result_cache.misses")
        result = await asyncio.wait_for(
            self.batcher.submit(validated),
            timeout=self._deadline_s_of(validated),
        )
        self._cache_store(key, dump_json(result).encode("utf-8"))
        return result

    def classify_point_error_doc(self, error: BaseException) -> dict[str, Any]:
        """A resolver failure as the structured point-error object."""
        status, code = self._classify_point_error(error)
        return {
            "code": code,
            "message": str(error) or type(error).__name__,
            "status": status,
        }

    # -- live observability -------------------------------------------------

    def _metrics_body(self) -> bytes:
        """``GET /metrics``: the Prometheus text exposition."""
        gauges = {
            "service.ready": 1.0 if self.is_ready() else 0.0,
            "service.queue.depth_now": float(self.batcher.queue_depth),
            "service.queue.limit": float(self.batcher.max_pending),
            "service.result_cache.entries": float(len(self.result_cache)),
            "service.result_cache.bytes": float(self.result_cache.size_bytes),
            "service.result_cache.capacity_bytes": float(
                self.result_cache.capacity_bytes
            ),
        }
        if self.disk_cache is not None:
            gauges["service.disk_cache.entries"] = float(len(self.disk_cache))
            gauges["service.disk_cache.bytes"] = float(
                self.disk_cache.size_bytes
            )
        if self.campaign_service is not None:
            campaign_stats = self.campaign_service.stats()
            gauges["service.campaigns.registered"] = float(
                campaign_stats["campaigns"]
            )
            gauges["service.campaigns.running"] = float(
                campaign_stats["running"]
            )
            gauges["service.campaigns.complete"] = float(
                campaign_stats["complete"]
            )
        window_summary = (
            self.window.summary() if self.window is not None else None
        )
        text = render_prometheus(
            self.registry.snapshot(), window_summary, gauges
        )
        return text.encode("utf-8")

    @staticmethod
    def _trace_query(path: str) -> tuple[int | None, str | None]:
        """Parse the shared ``?last=N&trace_id=T`` trace-export query."""
        last: int | None = None
        trace_id: str | None = None
        for item in path.partition("?")[2].split("&"):
            name, _, value = item.partition("=")
            if not value:
                continue
            if name == "last":
                try:
                    last = int(value)
                except ValueError:
                    raise HttpError(
                        400,
                        "bad_query",
                        f"last must be an integer, got {value!r}",
                    ) from None
            elif name == "trace_id":
                trace_id = value
        return last, trace_id

    def _trace_tail_body(self, path: str) -> bytes:
        """``GET /v1/debug/trace?last=N&trace_id=T``: the span ring tail."""
        last, trace_id = self._trace_query(path)
        tracer = (
            self.tracer if self.tracer is not None else tracing.current_tracer()
        )
        document = trace_tail_document(tracer, last, trace_id=trace_id)
        return dump_json(document).encode("utf-8")

    def _spans_body(self, path: str) -> bytes:
        """``GET /v1/debug/spans``: this process's ring, collector-shaped.

        Same document as ``/v1/debug/trace`` plus the worker identity —
        the route a fleet router scrapes from each worker to assemble the
        merged cross-process timeline (the ``clock`` block carried by the
        document is what lets the router rebase this process's
        ``perf_counter`` timestamps into its own timeline).
        """
        last, trace_id = self._trace_query(path)
        tracer = (
            self.tracer if self.tracer is not None else tracing.current_tracer()
        )
        document = trace_tail_document(tracer, last, trace_id=trace_id)
        document["worker"] = live.current_worker_id()
        return dump_json(document).encode("utf-8")

    async def _debug_profile_body(self, path: str) -> bytes:
        """``GET /v1/debug/profile?seconds=N&hz=M``: on-demand sampling.

        Runs one :class:`~repro.obs.profile.SamplingProfiler` window over
        the live process and returns the ``repro.obs.profile/1`` document
        (the raw artifact, like ``/v1/debug/trace`` — not the service
        envelope, so it validates offline as-is).  The event loop keeps
        serving during the window; concurrent requests therefore show up
        in the samples, which is the point.  A second window while one is
        active is 409; a draining server refuses new windows with 503.
        """
        from repro.obs.profile import (
            DEFAULT_HZ,
            ProfilerActiveError,
            SamplingProfiler,
        )

        seconds, hz = 1.0, DEFAULT_HZ
        for item in path.partition("?")[2].split("&"):
            name, _, value = item.partition("=")
            if not value:
                continue
            if name == "seconds":
                try:
                    seconds = float(value)
                except ValueError:
                    raise HttpError(
                        400,
                        "bad_query",
                        f"seconds must be a number, got {value!r}",
                    ) from None
            elif name == "hz":
                try:
                    hz = int(value)
                except ValueError:
                    raise HttpError(
                        400,
                        "bad_query",
                        f"hz must be an integer, got {value!r}",
                    ) from None
        if not 0 < seconds <= self.profile_max_seconds:
            raise HttpError(
                400,
                "bad_query",
                f"seconds must be within (0, {self.profile_max_seconds:g}], "
                f"got {seconds:g}",
            )
        if not 1 <= hz <= 1000:
            raise HttpError(
                400, "bad_query", f"hz must be within [1, 1000], got {hz}"
            )
        if not self.is_ready():
            raise HttpError(
                503,
                "draining",
                "server is draining; not starting a profile window",
            )
        try:
            profiler = SamplingProfiler(hz=hz).start()
        except ProfilerActiveError as error:
            raise HttpError(409, "profile_active", str(error)) from None
        live.annotate(profile_id=profiler.id)
        try:
            await asyncio.sleep(seconds)
        finally:
            profiler.stop()
        return dump_json(profiler.document()).encode("utf-8")

    # -- envelopes ---------------------------------------------------------

    @staticmethod
    def _success(endpoint: str, result: Any, cached: bool | None = None) -> bytes:
        envelope: dict[str, Any] = {
            "schema": SERVICE_RESPONSE_SCHEMA,
            "endpoint": endpoint,
            "result": result,
        }
        if cached is not None:
            envelope["cached"] = cached
        return dump_json(envelope).encode("utf-8")

    def _stats_body(self) -> bytes:
        latency = {}
        for endpoint, samples in sorted(self._latency_ms.items()):
            values = list(samples)
            latency[endpoint] = {
                "count": len(values),
                "p50_ms": percentile(values, 50.0),
                "p99_ms": percentile(values, 99.0),
            }
        stats = {
            "schema": SERVICE_STATS_SCHEMA,
            **self.registry.snapshot(),
            "queue": {
                "depth": self.batcher.queue_depth,
                "limit": self.batcher.max_pending,
            },
            "result_cache": {
                "entries": len(self.result_cache),
                "bytes": self.result_cache.size_bytes,
                "capacity_bytes": self.result_cache.capacity_bytes,
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "evictions": self.result_cache.evictions,
                "hit_rate": self.result_cache.hit_rate,
            },
            "latency": latency,
        }
        if self.disk_cache is not None:
            stats["disk_cache"] = self.disk_cache.stats()
        if self.span_spool is not None:
            stats["span_spool"] = self.span_spool.stats()
        if self.campaign_service is not None:
            stats["campaigns"] = self.campaign_service.stats()
        worker = live.current_worker_id()
        if worker is not None:
            stats["worker"] = worker
        return dump_json(stats).encode("utf-8")
