"""Sharded multi-process serving fleet: router, workers, supervision.

``python -m repro serve --workers N`` (N > 1) turns the single-process
server into a fleet:

* the **router** process owns the listening socket and speaks the same
  HTTP/1.1 the single server does — clients cannot tell the difference;
* N **worker** processes (plain ``ReproServer`` instances, spawned as
  ``python -m repro serve --workers 1 --worker-id wK``) each own a
  batcher, an engine, and a result cache, and announce their kernel-
  assigned port on stdout exactly as the foreground server does;
* ``/v1/simulate`` is forwarded to the worker that owns the request's
  **events-store key** (the (trace, geometry) identity batch groups
  coalesce on) under a consistent-hash ring
  (:class:`~repro.service.shard.HashRing`) — the same key always lands
  on the same worker, so phase-1 extractions and result-cache entries
  concentrate instead of duplicating N ways;
* ``/v1/sweep`` is sharded by geometry: each worker receives the
  sub-grid of cache specs it owns, streams it back, and the router
  re-multiplexes the shard streams into one chunked JSONL response,
  rewriting local point indices to global ones on the fly;
* ``/v1/stats`` and ``/metrics`` merge every worker's snapshot into one
  document, re-keying worker counters with a ``worker=<name>`` label;
  the analytic and debug endpoints run in the router process itself;
* a **supervisor** task restarts dead workers into the *same* ring slot
  (slot names ``w0..wN-1`` are stable), so a crash moves no keys — the
  restarted worker simply re-owns its range, re-warming from the shared
  disk cache when one is configured.

Ring slots are named, not addressed: the ring maps keys to slot names
and the fleet maps names to live processes, which is what makes restart
a no-op for placement and ``--workers 1`` degrade to today's behaviour
(``run_fleet`` doesn't even build a router for N=1).
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import live, tracing
from repro.obs.live import QuantileSketch, render_prometheus, trace_tail_document
from repro.obs.metrics import percentile
from repro.obs.schemas import SERVICE_STATS_SCHEMA, SERVICE_SWEEP_SCHEMA
from repro.service import http11
from repro.service import queries
from repro.service import schemas as request_schemas
from repro.service.app import (
    JSON_CONTENT_TYPE,
    METRICS_CONTENT_TYPE,
    ServiceApp,
    StreamBody,
)
from repro.service.http11 import HttpError
from repro.service.server import ReproServer, ServerConfig
from repro.service.shard import HashRing, worker_names
from repro.util.jsonout import dump_json, dump_json_line

#: The "listening on host:port" announcement every server prints; the
#: router parses it off each worker's stdout, exactly as the smoke
#: harness parses the router's own.
_LISTENING_RE = re.compile(r"listening on .*:(\d+)")

#: How many times a mid-sweep worker stream is re-forwarded (after a
#: restart) before the missing points are reported as error lines.
SWEEP_RESUME_LIMIT = 3


class ForwardedPointError(RuntimeError):
    """A worker answered a forwarded campaign point with an error
    envelope; carries the structured point-error doc verbatim."""

    def __init__(self, doc: dict[str, Any]) -> None:
        super().__init__(doc.get("message", "worker error"))
        self.doc = doc


@dataclass
class FleetConfig:
    """One fleet: the router's own server config plus fleet knobs.

    ``base`` configures the router process (listen address, limits,
    access log) *and* is the template for workers: queue limits, batch
    window, caches, shed watermark, and keep-alive timeout are passed
    through to each worker process; workers always bind port 0 on
    loopback and get ``worker_id`` ``w0..wN-1``.
    """

    base: ServerConfig = field(default_factory=ServerConfig)
    workers: int = 2
    supervise_interval_s: float = 0.25
    #: How long a forwarded request keeps retrying through worker
    #: restarts before answering 502.
    forward_deadline_s: float = 15.0
    #: Upper bound on a worker response body the router will relay
    #: (stats merges and big simulate envelopes fit comfortably).
    forward_max_body_bytes: int = 32 * 1024 * 1024
    #: Idle pooled connections kept per worker.
    pool_size: int = 8
    #: How long one worker spawn may take to announce its port.
    ready_timeout_s: float = 60.0


class WorkerHandle:
    """One slot's process: spawn/respawn, port, and connection pool."""

    def __init__(self, name: str, config: FleetConfig) -> None:
        self.name = name
        self.config = config
        self.process: subprocess.Popen[str] | None = None
        self.port: int | None = None
        self.generation = 0  # bumps on every (re)spawn; stale pools die
        self.restarts = 0  # respawns after the initial spawn
        #: ``router perf_counter = worker perf_counter + offset`` — the
        #: clock handshake result, re-measured on every (re)spawn since a
        #: fresh process reads a fresh monotonic epoch.
        self.clock_offset_s = 0.0
        self.lock = asyncio.Lock()
        self._pool: list[tuple[int, asyncio.StreamReader, asyncio.StreamWriter]] = []

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def _command(self) -> list[str]:
        base = self.config.base
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--workers",
            "1",
            "--worker-id",
            self.name,
            "--queue-limit",
            str(base.queue_limit),
            "--batch-window-ms",
            f"{base.batch_window_s * 1000.0:g}",
            "--result-cache-mib",
            f"{base.result_cache_bytes / (1024 * 1024):g}",
            "--default-deadline-s",
            f"{base.default_deadline_s:g}",
            "--span-ring-capacity",
            str(base.span_ring_capacity),
        ]
        if base.keepalive_timeout_s is not None:
            cmd += ["--keepalive-timeout", f"{base.keepalive_timeout_s:g}"]
        if base.shed_watermark is not None:
            cmd += ["--shed-watermark", str(base.shed_watermark)]
        if base.disk_cache_dir is not None:
            # All workers share one directory: entries are content-
            # addressed and written atomically, so this is safe — and it
            # is what makes a restarted worker boot warm.
            cmd += [
                "--disk-cache-dir",
                str(base.disk_cache_dir),
                "--disk-cache-mib",
                f"{base.disk_cache_bytes / (1024 * 1024):g}",
            ]
        if base.access_log_path:
            cmd += ["--access-log", f"{base.access_log_path}.{self.name}"]
        if base.span_spool_dir:
            # One --span-spool-dir fans out into a subdirectory per
            # process: the router claims <dir>/router, each worker its
            # slot name — `repro obs timeline --spool <dir>` merges them.
            cmd += [
                "--span-spool-dir",
                os.path.join(base.span_spool_dir, self.name),
            ]
        return cmd

    def spawn(self) -> None:
        """Start (or restart) the worker process; blocks until it
        announces its port.  Runs on a thread (``asyncio.to_thread``)."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        env["PYTHONUNBUFFERED"] = "1"
        self.process = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        deadline = time.monotonic() + self.config.ready_timeout_s
        port: int | None = None
        assert self.process.stdout is not None
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                if self.process.poll() is not None:
                    raise RuntimeError(
                        f"worker {self.name} exited with "
                        f"{self.process.returncode} during startup"
                    )
                continue
            match = _LISTENING_RE.search(line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            self.process.kill()
            raise RuntimeError(
                f"worker {self.name} did not announce a port within "
                f"{self.config.ready_timeout_s:g}s"
            )
        self.port = port
        self.clock_offset_s = self._clock_handshake()
        self.generation += 1

    def _clock_handshake(self) -> float:
        """Measure this worker's ``perf_counter`` offset from ours.

        ``time.perf_counter()`` epochs are process-local, so a worker's
        span timestamps mean nothing in the router's timeline until the
        two clocks are related.  One GET round trip to the worker's span
        export does it: the document carries the worker's
        ``perf_counter`` reading taken while building the response,
        which corresponds — to within half the RTT, both processes being
        on loopback — to the router-side midpoint of the request.  The
        returned offset converts worker readings into the router's
        domain (``router = worker + offset``); a failed handshake falls
        back to 0, which merely degrades merged-timeline alignment for
        this worker, never serving.
        """
        import http.client

        assert self.port is not None
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", self.port, timeout=5.0
            )
            try:
                t0 = time.perf_counter()
                connection.request("GET", "/v1/debug/spans?last=0")
                payload = connection.getresponse().read()
                t1 = time.perf_counter()
            finally:
                connection.close()
            worker_now = json.loads(payload)["clock"]["perf_counter"]
            return (t0 + t1) / 2.0 - float(worker_now)
        except (OSError, ValueError, KeyError, TypeError):
            return 0.0

    # -- pooled connections ------------------------------------------------

    def checkout(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter] | None:
        """A pooled connection of the current generation, if any."""
        while self._pool:
            generation, reader, writer = self._pool.pop()
            if generation == self.generation and not writer.is_closing():
                return reader, writer
            writer.close()
        return None

    def checkin(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if len(self._pool) < self.config.pool_size:
            self._pool.append((self.generation, reader, writer))
        else:
            writer.close()

    def close_pool(self) -> None:
        while self._pool:
            _, _, writer = self._pool.pop()
            writer.close()

    def terminate(self) -> None:
        """SIGTERM (the drain path) then SIGKILL if it lingers."""
        self.close_pool()
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)


class Fleet:
    """The worker set: ring placement, forwarding, and supervision."""

    def __init__(self, config: FleetConfig) -> None:
        if config.workers < 2:
            raise ValueError(
                f"a fleet needs at least 2 workers, got {config.workers} "
                "(use ReproServer / --workers 1 for a single process)"
            )
        self.config = config
        self.names = worker_names(config.workers)
        self.ring = HashRing(self.names)
        self.workers = {name: WorkerHandle(name, config) for name in self.names}

    def owner_of(self, key: str) -> str:
        return self.ring.owner(key)

    @property
    def restarts_total(self) -> int:
        return sum(handle.restarts for handle in self.workers.values())

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        await asyncio.gather(
            *(
                asyncio.to_thread(handle.spawn)
                for handle in self.workers.values()
            )
        )

    async def stop(self) -> None:
        await asyncio.gather(
            *(
                asyncio.to_thread(handle.terminate)
                for handle in self.workers.values()
            )
        )

    async def ensure_alive(self, name: str) -> None:
        """Respawn a dead worker into its own (unchanged) ring slot."""
        handle = self.workers[name]
        async with handle.lock:
            if handle.alive:
                return
            handle.close_pool()
            await asyncio.to_thread(handle.spawn)
            handle.restarts += 1
            print(
                f"repro.fleet worker {handle.name} restarted "
                f"pid={handle.pid} port={handle.port}",
                flush=True,
            )

    async def supervise(self) -> None:
        """Poll workers and restart any that died; runs until cancelled."""
        while True:
            await asyncio.sleep(self.config.supervise_interval_s)
            for name, handle in self.workers.items():
                if not handle.alive:
                    try:
                        await self.ensure_alive(name)
                    except RuntimeError:
                        # Spawn failed (e.g. mid-shutdown); the next tick
                        # or the next forwarded request retries.
                        continue

    # -- forwarding --------------------------------------------------------

    async def _connect(
        self, handle: WorkerHandle
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if handle.port is None:
            raise ConnectionError(f"worker {handle.name} has no port yet")
        return await asyncio.open_connection("127.0.0.1", handle.port)

    async def forward(
        self,
        name: str,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> http11.Response:
        """One request/response round trip to a worker.

        Retries through worker death: a connection-level failure
        triggers a restart (same ring slot) and a fresh attempt until
        ``forward_deadline_s`` elapses, after which the client gets a
        502.  A request the worker *answered* — any status — is never
        retried; only transport failures are.
        """
        handle = self.workers[name]
        deadline = time.monotonic() + self.config.forward_deadline_s
        while True:
            generation = handle.generation
            connection = handle.checkout()
            try:
                if connection is None:
                    connection = await self._connect(handle)
                reader, writer = connection
                writer.write(
                    http11.render_request(method, path, body=body, headers=headers)
                )
                await writer.drain()
                response = await http11.read_response(
                    reader,
                    max_body_bytes=self.config.forward_max_body_bytes,
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                if connection is not None:
                    connection[1].close()
                if time.monotonic() >= deadline:
                    raise HttpError(
                        502,
                        "bad_upstream",
                        f"worker {name} unreachable after retries",
                    ) from None
                try:
                    await self.ensure_alive(name)
                except RuntimeError:
                    pass
                await asyncio.sleep(0.05)
                continue
            if response.keep_alive and generation == handle.generation:
                handle.checkin(reader, writer)
            else:
                writer.close()
            return response

    async def stream(
        self,
        name: str,
        method: str,
        path: str,
        body: bytes,
    ) -> Any:
        """One streamed (chunked JSONL) worker response, record by record.

        A dedicated connection — the worker closes streaming
        connections when done — yielding each decoded JSON line.
        Transport failures propagate to the caller, which owns the
        resume-and-dedupe policy.
        """
        handle = self.workers[name]
        reader, writer = await self._connect(handle)
        try:
            writer.write(
                http11.render_request(
                    method,
                    path,
                    body=body,
                    headers={"content-type": "application/json"},
                )
            )
            await writer.drain()
            head = await http11.read_response_head(reader)
            if head.status != 200:
                raise HttpError(
                    502,
                    "bad_upstream",
                    f"worker {name} answered {head.status} to {path}",
                )
            if not head.chunked:
                raise HttpError(
                    502, "bad_upstream", f"worker {name} did not stream {path}"
                )
            buffer = b""
            while True:
                chunk = await http11.read_chunk(reader)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line)
        finally:
            writer.close()

    def describe(self) -> dict[str, Any]:
        """JSON-ready per-worker view for the merged ``/v1/stats``."""
        return {
            name: {
                "alive": handle.alive,
                "pid": handle.pid,
                "port": handle.port,
                "generation": handle.generation,
                "restarts": handle.restarts,
            }
            for name, handle in self.workers.items()
        }


def _rekey(key: str, worker: str) -> str:
    """Re-render a registry key with a ``worker=<name>`` label added."""
    name, labels = live._split_key(key)
    labels["worker"] = worker
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class RouterApp(ServiceApp):
    """The router's request handling: shard, forward, merge.

    Subclasses :class:`ServiceApp` so the analytic, health, and debug
    endpoints — and the whole error-mapping / accounting / access-log
    pipeline — are served locally and identically; only ``simulate``,
    ``sweep``, ``stats``, and ``metrics`` take fleet-specific paths.
    The router's batcher exists for the base class's queue gauges but
    never computes: every simulation lands on a worker.
    """

    def __init__(self, *args: Any, fleet: Fleet, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.fleet = fleet
        self._forward_sketches: dict[str, QuantileSketch] = {}

    # -- sharded forwarding ------------------------------------------------

    async def _simulate(self, params: Any) -> tuple[int, bytes]:
        with tracing.span("service.dispatch", endpoint="simulate"):
            validated = request_schemas.validate_simulate(params)
            shard_key = queries.events_key_of(validated)
            owner = self.fleet.owner_of(shard_key)
        live.annotate(worker=owner)
        headers = {}
        request_id = live.current_request_id()
        if request_id:
            headers[live.REQUEST_ID_HEADER] = request_id
        started = time.perf_counter()
        with tracing.span("service.forward", worker=owner):
            # Inside the span: the forward span is now the innermost
            # traced span, so the outbound traceparent names it as the
            # parent — the worker's ingress span becomes its child and
            # the merged timeline can stitch the cross-process edge.
            traceparent = live.current_traceparent()
            if traceparent is not None:
                headers[live.TRACEPARENT_HEADER] = traceparent
            response = await self.fleet.forward(
                owner,
                "POST",
                "/v1/simulate",
                body=json.dumps({"params": params}).encode("utf-8"),
                headers=headers,
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.registry.inc(
            "service.router.forwarded", worker=owner, status=response.status
        )
        self._forward_sketches.setdefault(owner, QuantileSketch()).add(
            elapsed_ms
        )
        # The worker's body — success envelope or error envelope — is
        # relayed verbatim: byte-identical to a single-process answer.
        return response.status, response.body

    # -- campaign point resolution ------------------------------------------

    async def resolve_point(self, validated: dict[str, Any]) -> dict[str, Any]:
        """One campaign point, forwarded to the owning worker.

        Campaigns run on the *router* (workers are spawned without a
        campaign dir), so the background executor rides the same
        consistent-hash forwarding as interactive ``/v1/simulate`` —
        including the retry-through-restart path, which is what lets a
        SIGKILLed worker cost a campaign nothing but latency.
        """
        wire = {
            key: value for key, value in validated.items() if value is not None
        }
        shard_key = queries.events_key_of(validated)
        owner = self.fleet.owner_of(shard_key)
        headers: dict[str, str] = {}
        traceparent = live.current_traceparent()
        if traceparent is not None:
            headers[live.TRACEPARENT_HEADER] = traceparent
        response = await self.fleet.forward(
            owner,
            "POST",
            "/v1/simulate",
            body=json.dumps({"params": wire}).encode("utf-8"),
            headers=headers or None,
        )
        self.registry.inc(
            "service.router.forwarded", worker=owner, status=response.status
        )
        envelope = json.loads(response.body)
        if response.status != 200:
            error = (
                envelope.get("error", {}) if isinstance(envelope, dict) else {}
            )
            raise ForwardedPointError(
                {
                    "code": error.get("code", "bad_upstream"),
                    "message": error.get("message", "worker error"),
                    "status": response.status,
                }
            )
        return envelope["result"]

    def classify_point_error_doc(self, error: BaseException) -> dict[str, Any]:
        if isinstance(error, ForwardedPointError):
            return error.doc
        if isinstance(error, HttpError):
            return {
                "code": error.code,
                "message": error.message,
                "status": error.status,
            }
        return super().classify_point_error_doc(error)

    # -- sharded sweep streaming -------------------------------------------

    def _sweep(self, params: Any) -> StreamBody:
        with tracing.span("service.dispatch", endpoint="sweep"):
            validated = request_schemas.validate_sweep(params)
            total = request_schemas.sweep_point_count(validated)
        live.annotate(sweep_points=total)
        return StreamBody(self._fanout_lines(validated, total))

    def _assignments(self, validated: dict[str, Any]) -> dict[str, list[int]]:
        """Which worker owns which global cache indices.

        Sharding by geometry == sharding by events key: the key depends
        only on (trace, cache geometry), so every point of one cache
        column lands on that column's owner — simulate requests for the
        same column hit the same worker's warm caches.
        """
        assignments: dict[str, list[int]] = {}
        for index, cache in enumerate(validated["caches"]):
            key = queries.events_key_of(
                {"trace": validated["trace"], "cache": cache}
            )
            assignments.setdefault(self.fleet.owner_of(key), []).append(index)
        return assignments

    @staticmethod
    def _sub_params(
        validated: dict[str, Any], cache_indices: list[int]
    ) -> dict[str, Any]:
        """A worker's sub-sweep request: its cache columns, full inner grid."""
        sub: dict[str, Any] = {
            "trace": validated["trace"],
            "caches": [validated["caches"][i] for i in cache_indices],
            "policies": validated["policies"],
            "memory_cycles": validated["memory_cycles"],
            "bus_width": validated["bus_width"],
            "issue_rate": validated["issue_rate"],
        }
        for optional in ("write_buffer_depth", "pipelined_q", "deadline_ms"):
            if validated[optional] is not None:
                sub[optional] = validated[optional]
        return sub

    async def _fanout_lines(self, validated: dict[str, Any], total: int) -> Any:
        header = {
            "schema": SERVICE_SWEEP_SCHEMA,
            "points": total,
            "grid": {
                "caches": len(validated["caches"]),
                "policies": len(validated["policies"]),
                "memory_cycles": len(validated["memory_cycles"]),
            },
        }
        yield (dump_json_line(header) + "\n").encode("utf-8")
        per = len(validated["policies"]) * len(validated["memory_cycles"])
        queue: asyncio.Queue[Any] = asyncio.Queue(maxsize=512)
        done = object()
        tasks = [
            asyncio.ensure_future(
                self._pump(worker, validated, indices, per, queue, done)
            )
            for worker, indices in sorted(self._assignments(validated).items())
        ]
        errors = 0
        try:
            remaining = len(tasks)
            while remaining:
                record = await queue.get()
                if record is done:
                    remaining -= 1
                    continue
                if "error" in record:
                    errors += 1
                    self.registry.inc("service.sweep.errors")
                self.registry.inc("service.sweep.points")
                yield (dump_json_line(record) + "\n").encode("utf-8")
            summary = {"done": True, "errors": errors, "points": total}
            yield (dump_json_line(summary) + "\n").encode("utf-8")
        finally:
            for task in tasks:
                task.cancel()

    async def _pump(
        self,
        worker: str,
        validated: dict[str, Any],
        cache_indices: list[int],
        per: int,
        queue: asyncio.Queue[Any],
        done: object,
    ) -> None:
        """Stream one worker's sub-sweep into the shared queue.

        Rewrites the worker's local point indices to global ones.  A
        transport failure mid-stream restarts the worker (same slot)
        and re-forwards the whole sub-sweep — already-relayed points are
        deduplicated by global index, and the re-run is cheap because
        the worker's result cache already holds them.  After
        :data:`SWEEP_RESUME_LIMIT` resumes, never-received points are
        reported as error lines so the stream still terminates with a
        complete index space.
        """
        body = json.dumps(
            {"params": self._sub_params(validated, cache_indices)}
        ).encode("utf-8")
        expected = len(cache_indices) * per
        emitted: set[int] = set()
        try:
            for attempt in range(1 + SWEEP_RESUME_LIMIT):
                if attempt:
                    self.registry.inc(
                        "service.router.sweep_resumes", worker=worker
                    )
                try:
                    async for record in self.fleet.stream(
                        worker, "POST", "/v1/sweep", body
                    ):
                        local = record.get("index")
                        if not isinstance(local, int):
                            continue  # the worker's header/summary lines
                        global_cache = cache_indices[local // per]
                        global_index = global_cache * per + (local % per)
                        if global_index in emitted:
                            continue  # replay overlap after a resume
                        emitted.add(global_index)
                        record["index"] = global_index
                        point = record.get("point")
                        if isinstance(point, dict):
                            point["cache_index"] = global_cache
                        await queue.put(record)
                except (
                    ConnectionError,
                    OSError,
                    asyncio.IncompleteReadError,
                    HttpError,
                ):
                    try:
                        await self.fleet.ensure_alive(worker)
                    except RuntimeError:
                        pass
                    continue
                break  # the worker's stream ended cleanly
            if len(emitted) < expected:
                for global_cache in cache_indices:
                    for rem in range(per):
                        global_index = global_cache * per + rem
                        if global_index not in emitted:
                            await queue.put(
                                self._missing_point(
                                    validated, worker, global_index, per
                                )
                            )
        finally:
            await queue.put(done)

    @staticmethod
    def _missing_point(
        validated: dict[str, Any], worker: str, global_index: int, per: int
    ) -> dict[str, Any]:
        """An error line for a point its shard never delivered."""
        n_beta = len(validated["memory_cycles"])
        cache_index = global_index // per
        rem = global_index % per
        return {
            "error": {
                "code": "bad_upstream",
                "message": f"shard {worker} did not deliver this point",
                "status": 502,
            },
            "index": global_index,
            "point": {
                "cache_index": cache_index,
                "cache": validated["caches"][cache_index],
                "policy": validated["policies"][rem // n_beta],
                "memory_cycle": validated["memory_cycles"][rem % n_beta],
            },
        }

    # -- merged observability ----------------------------------------------

    async def _dispatch(
        self, endpoint: str | None, request: http11.Request
    ) -> tuple[int, bytes | StreamBody, str]:
        if endpoint == "stats" and request.method == "GET":
            return 200, await self._merged_stats_body(), JSON_CONTENT_TYPE
        if endpoint == "metrics" and request.method == "GET":
            return 200, await self._merged_metrics_body(), METRICS_CONTENT_TYPE
        if endpoint == "debug-trace" and request.method == "GET":
            return (
                200,
                await self._merged_trace_body(request.path),
                JSON_CONTENT_TYPE,
            )
        return await super()._dispatch(endpoint, request)

    async def _merged_trace_body(self, path: str) -> bytes:
        """``GET /v1/debug/trace``: one Perfetto document for the fleet.

        The router turns collector: it scrapes every worker's span ring
        over ``/v1/debug/spans``, rebases each worker's ``perf_counter``
        timestamps into its own timeline using the spawn-time clock
        handshake (:meth:`WorkerHandle._clock_handshake`), and emits one
        Chrome-trace document with a process track per fleet member plus
        flow events stitching each ``service.forward`` span to the
        worker spans it fathered.  ``?trace_id=`` narrows every track to
        one request's tree; ``?last=N`` bounds each ring tail.  The
        whole document is normalised so its earliest timestamp is zero —
        a respawned worker's fresh (earlier) monotonic epoch can never
        produce negative or pre-epoch timestamps.
        """
        last, trace_id = self._trace_query(path)
        tracer = (
            self.tracer if self.tracer is not None else tracing.current_tracer()
        )
        document = trace_tail_document(tracer, last, trace_id=trace_id)
        if tracer is None or not document.get("enabled"):
            return dump_json(document).encode("utf-8")

        query = []
        if last is not None:
            query.append(f"last={last}")
        if trace_id is not None:
            query.append(f"trace_id={trace_id}")
        suffix = "?" + "&".join(query) if query else ""

        async def fetch(name: str) -> dict[str, Any] | None:
            try:
                response = await self.fleet.forward(
                    name, "GET", "/v1/debug/spans" + suffix
                )
                if response.status != 200:
                    return None
                return json.loads(response.body)
            except (HttpError, ValueError):
                return None

        names = self.fleet.names
        docs = dict(
            zip(names, await asyncio.gather(*(fetch(name) for name in names)))
        )

        # Synthetic pids give each fleet member its own process track
        # regardless of OS pid reuse across respawns: router = 0,
        # workers = ring order + 1.
        events: list[dict[str, Any]] = []
        meta: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": f"router (pid {os.getpid()})"},
            }
        ]
        forward_spans: dict[str, dict[str, Any]] = {}
        for event in document["traceEvents"]:
            event = dict(event)
            event["pid"] = 0
            if event.get("ph") == "M":
                meta.append(event)
                continue
            events.append(event)
            span_id = event.get("args", {}).get("span_id")
            if event.get("name") == "service.forward" and span_id:
                forward_spans[span_id] = event

        flows: list[dict[str, Any]] = []
        for index, name in enumerate(names):
            doc = docs.get(name)
            if doc is None:
                continue
            pid = index + 1
            handle = self.fleet.workers[name]
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{name} (pid {handle.pid})"},
                }
            )
            epoch = doc.get("clock", {}).get("epoch")
            if epoch is None:
                continue  # worker ring disabled: track stays empty
            # Rebase: worker-relative µs -> absolute worker seconds ->
            # (handshake offset) -> absolute router seconds -> µs
            # relative to the router tracer's epoch.
            shift_us = (
                epoch + handle.clock_offset_s - tracer.epoch
            ) * 1_000_000.0
            for event in doc.get("traceEvents", []):
                event = dict(event)
                event["pid"] = pid
                if event.get("ph") == "M":
                    meta.append(event)
                    continue
                event["ts"] = round(event["ts"] + shift_us, 3)
                events.append(event)
                parent = event.get("args", {}).get("parent_span_id")
                source = forward_spans.get(parent) if parent else None
                if source is not None:
                    flow = {
                        "name": "forward",
                        "cat": "repro.flow",
                        "id": parent,
                    }
                    flows.append(
                        {
                            **flow,
                            "ph": "s",
                            "ts": source["ts"],
                            "pid": source["pid"],
                            "tid": source["tid"],
                        }
                    )
                    flows.append(
                        {
                            **flow,
                            "ph": "f",
                            "bp": "e",
                            "ts": event["ts"],
                            "pid": pid,
                            "tid": event["tid"],
                        }
                    )

        # Normalise the merged timeline to start at zero: respawned
        # workers read fresh monotonic epochs that may predate the
        # router's, and Perfetto dislikes negative timestamps.
        base = min((event["ts"] for event in events + flows), default=0.0)
        for event in events + flows:
            event["ts"] = round(event["ts"] - base, 3)

        document["traceEvents"] = meta + events + flows
        document["fleet"] = {
            name: {
                "reachable": docs.get(name) is not None,
                "pid": index + 1,
                "clock_offset_s": round(
                    self.fleet.workers[name].clock_offset_s, 6
                ),
            }
            for index, name in enumerate(names)
        }
        document["otherData"] = {"producer": "repro.service.router"}
        return dump_json(document).encode("utf-8")

    async def _collect_worker_stats(self) -> dict[str, dict[str, Any] | None]:
        async def fetch(name: str) -> dict[str, Any] | None:
            try:
                response = await self.fleet.forward(name, "GET", "/v1/stats")
                if response.status != 200:
                    return None
                return json.loads(response.body)
            except (HttpError, ValueError):
                return None

        names = self.fleet.names
        results = await asyncio.gather(*(fetch(name) for name in names))
        return dict(zip(names, results))

    def _merged_snapshot(
        self, docs: dict[str, dict[str, Any] | None]
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Router counters plus every worker's, worker-labelled."""
        snapshot = self.registry.snapshot()
        counters = dict(snapshot["counters"])
        histograms = dict(snapshot["histograms"])
        for name, doc in docs.items():
            if doc is None:
                continue
            for key, value in doc.get("counters", {}).items():
                counters[_rekey(key, name)] = value
            for key, entry in doc.get("histograms", {}).items():
                histograms[_rekey(key, name)] = entry
        return (
            {k: counters[k] for k in sorted(counters)},
            {k: histograms[k] for k in sorted(histograms)},
        )

    async def _merged_stats_body(self) -> bytes:
        docs = await self._collect_worker_stats()
        counters, histograms = self._merged_snapshot(docs)
        queue = {"depth": 0, "limit": 0}
        cache_totals = {
            "entries": 0,
            "bytes": 0,
            "capacity_bytes": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        disk_totals: dict[str, int] | None = None
        for doc in docs.values():
            if doc is None:
                continue
            queue["depth"] += doc.get("queue", {}).get("depth", 0)
            queue["limit"] += doc.get("queue", {}).get("limit", 0)
            for field_name in cache_totals:
                cache_totals[field_name] += doc.get("result_cache", {}).get(
                    field_name, 0
                )
            disk = doc.get("disk_cache")
            if disk is not None:
                if disk_totals is None:
                    disk_totals = {
                        "entries": 0,
                        "bytes": 0,
                        "capacity_bytes": 0,
                        "hits": 0,
                        "misses": 0,
                        "evictions": 0,
                    }
                for field_name in disk_totals:
                    disk_totals[field_name] += disk.get(field_name, 0)
        lookups = cache_totals["hits"] + cache_totals["misses"]
        latency = {}
        for endpoint, samples in sorted(self._latency_ms.items()):
            values = list(samples)
            latency[endpoint] = {
                "count": len(values),
                "p50_ms": percentile(values, 50.0),
                "p99_ms": percentile(values, 99.0),
            }
        fleet_quantiles = QuantileSketch()
        per_worker_forward: dict[str, dict[str, float]] = {}
        for name in self.fleet.names:
            sketch = self._forward_sketches.get(name)
            if sketch is None:
                continue
            fleet_quantiles.merge(sketch)
            per_worker_forward[name] = {
                "count": sketch.total,
                "p50_ms": round(sketch.quantile(0.5), 3),
                "p99_ms": round(sketch.quantile(0.99), 3),
            }
        stats: dict[str, Any] = {
            "schema": SERVICE_STATS_SCHEMA,
            "counters": counters,
            "histograms": histograms,
            "queue": queue,
            "result_cache": {
                **cache_totals,
                "hit_rate": (
                    cache_totals["hits"] / lookups if lookups else 0.0
                ),
            },
            "latency": latency,
            "fleet": {
                "workers": {
                    name: {
                        **info,
                        "reachable": docs.get(name) is not None,
                    }
                    for name, info in self.fleet.describe().items()
                },
                "restarts": self.fleet.restarts_total,
                "forward_latency_ms": {
                    "workers": per_worker_forward,
                    "p50_ms": round(fleet_quantiles.quantile(0.5), 3),
                    "p99_ms": round(fleet_quantiles.quantile(0.99), 3),
                },
            },
        }
        if disk_totals is not None:
            stats["disk_cache"] = disk_totals
        if self.campaign_service is not None:
            stats["campaigns"] = self.campaign_service.stats()
        return dump_json(stats).encode("utf-8")

    async def _merged_metrics_body(self) -> bytes:
        docs = await self._collect_worker_stats()
        counters, histograms = self._merged_snapshot(docs)
        alive = sum(1 for h in self.fleet.workers.values() if h.alive)
        gauges = {
            "service.ready": 1.0 if self.is_ready() else 0.0,
            "fleet.workers": float(len(self.fleet.names)),
            "fleet.workers_alive": float(alive),
            "fleet.restarts": float(self.fleet.restarts_total),
        }
        if self.campaign_service is not None:
            campaign_stats = self.campaign_service.stats()
            gauges["service.campaigns.registered"] = float(
                campaign_stats["campaigns"]
            )
            gauges["service.campaigns.running"] = float(
                campaign_stats["running"]
            )
            gauges["service.campaigns.complete"] = float(
                campaign_stats["complete"]
            )
        window_summary = (
            self.window.summary() if self.window is not None else None
        )
        text = render_prometheus(
            {"counters": counters, "histograms": histograms},
            window_summary,
            gauges,
        )
        return text.encode("utf-8")


class RouterServer(ReproServer):
    """A :class:`ReproServer` whose app shards across a worker fleet.

    Reuses the whole single-process transport — connection handling,
    keep-alive timeout, streaming writes, drain — and swaps in
    :class:`RouterApp`.  The router's own batcher idles (nothing local
    ever submits to it); its drain is what stops it again.
    """

    def __init__(
        self, config: FleetConfig, registry: Any | None = None
    ) -> None:
        super().__init__(config.base, registry=registry)
        self.fleet_config = config
        self.fleet = Fleet(config)
        self._supervisor: asyncio.Task[None] | None = None

    async def start(self) -> None:
        await self.fleet.start()
        await super().start()
        assert self.app is not None
        self._supervisor = asyncio.ensure_future(self.fleet.supervise())

    def _make_app(self) -> ServiceApp:
        assert self.registry is not None
        assert self.batcher is not None
        assert self.result_cache is not None
        return RouterApp(
            self.registry,
            self.batcher,
            self.result_cache,
            default_deadline_s=self.config.default_deadline_s,
            window=self.window,
            access_log=self.access_log,
            tracer=tracing.current_tracer(),
            is_ready=lambda: not self._draining,
            profile_max_seconds=self.config.profile_max_seconds,
            span_spool=self.span_spool,
            fleet=self.fleet,
        )

    def _span_spool_dir(self) -> str:
        # The router claims the `router` subdirectory of the shared
        # spool root; _command() hands each worker its slot name.
        assert self.config.span_spool_dir is not None
        return os.path.join(self.config.span_spool_dir, "router")

    async def _drain(self) -> None:
        # Stop supervision first so draining workers are not "restarted",
        # keep workers up through the base drain (in-flight forwards need
        # them), then take the fleet down.
        if self._supervisor is not None:
            self._supervisor.cancel()
            self._supervisor = None
        await super()._drain()
        await self.fleet.stop()


def run_fleet(config: FleetConfig) -> None:
    """Foreground entry: spawn workers, serve until SIGTERM, drain all."""

    async def main() -> None:
        server = RouterServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, server.begin_shutdown)
        print(
            f"repro.service listening on {config.base.host}:{server.port}",
            flush=True,
        )
        for name, handle in server.fleet.workers.items():
            print(
                f"repro.fleet worker {name} pid={handle.pid} "
                f"port={handle.port}",
                flush=True,
            )
        await server.serve_until_shutdown()
        print("repro.service drained, bye", flush=True)

    asyncio.run(main())


class FleetThread:
    """A router + fleet on a daemon thread (tests, the load generator)."""

    def __init__(
        self, config: FleetConfig | None = None, registry: Any | None = None
    ) -> None:
        import threading

        self.config = config or FleetConfig()
        self.server = RouterServer(self.config, registry=registry)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "FleetThread":
        import threading

        assert self._thread is None, "already started"
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=120.0):
            raise RuntimeError("fleet thread failed to start")
        if self._startup_error is not None:
            raise RuntimeError("fleet startup failed") from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as error:  # noqa: BLE001 - surface to starter
            self._startup_error = error
            self._ready.set()
            await self.server.fleet.stop()
            return
        self._ready.set()
        await self.server.serve_until_shutdown()

    def begin_shutdown(self) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.server.begin_shutdown)

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread is None:
            return
        self.begin_shutdown()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("fleet thread did not drain in time")
        self._thread = None

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
