"""Hand-rolled request schemas for the tradeoff-query service.

Extends the :mod:`repro.obs.schemas` approach (offline environment, no
``jsonschema``) to *inbound* payloads: every endpoint's parameters are
structurally validated — types, ranges, enum membership, unknown-key
rejection — before any domain object is built, so a malformed request
costs a 400 with a JSON-path-style message, never a stack trace from
deep inside the engine.

Limits guard the simulation-backed path: ``instructions`` and matmul
``n`` are capped so a single request cannot monopolise the batch worker
(see ``docs/SERVICE.md`` for the knobs).
"""

from __future__ import annotations

from typing import Any

from repro.core.stalling import StallPolicy
from repro.obs.schemas import SchemaError, require, require_number
from repro.trace.spec92 import SPEC92_PROFILES

__all__ = [
    "SchemaError",
    "MAX_INSTRUCTIONS",
    "MAX_MATMUL_N",
    "MAX_SWEEP_POINTS",
    "validate_execution_time",
    "validate_tradeoff",
    "validate_ranking",
    "validate_advise",
    "validate_simulate",
    "validate_sweep",
    "validate_trace_spec",
    "validate_cache_spec",
    "sweep_grid",
    "sweep_point_count",
]

#: Largest trace a single simulate request may ask for.
MAX_INSTRUCTIONS = 500_000

#: Largest square-matmul dimension a single simulate request may ask for.
MAX_MATMUL_N = 96

#: Largest grid one ``/v1/sweep`` request may expand to.  The stream
#: never buffers the grid, so this bounds *work*, not memory.
MAX_SWEEP_POINTS = 1_000_000

#: The analytic feature names accepted by ``/v1/tradeoff``.
FEATURES = ("doubling-bus", "write-buffers", "pipelined-memory", "partial-stalling")

_POLICIES = tuple(policy.value for policy in StallPolicy)


def _object(params: Any, path: str) -> dict[str, Any]:
    require(isinstance(params, dict), path, "must be a JSON object")
    return params


def _reject_unknown(params: dict[str, Any], allowed: set[str], path: str) -> None:
    unknown = sorted(set(params) - allowed)
    require(not unknown, path, f"unknown parameter(s) {unknown}")


def _number(
    params: dict[str, Any],
    name: str,
    path: str,
    default: float | None = None,
    minimum: float | None = None,
    maximum: float | None = None,
    required: bool = False,
) -> float | None:
    if name not in params:
        require(not required, f"{path}.{name}", "is required")
        return default
    value = params[name]
    require_number(value, f"{path}.{name}")
    if minimum is not None:
        require(value >= minimum, f"{path}.{name}", f"must be >= {minimum}")
    if maximum is not None:
        require(value <= maximum, f"{path}.{name}", f"must be <= {maximum}")
    return float(value)


def _integer(
    params: dict[str, Any],
    name: str,
    path: str,
    default: int | None = None,
    minimum: int | None = None,
    maximum: int | None = None,
    required: bool = False,
) -> int | None:
    if name not in params:
        require(not required, f"{path}.{name}", "is required")
        return default
    value = params[name]
    require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{path}.{name}",
        f"expected an integer, got {type(value).__name__}",
    )
    if minimum is not None:
        require(value >= minimum, f"{path}.{name}", f"must be >= {minimum}")
    if maximum is not None:
        require(value <= maximum, f"{path}.{name}", f"must be <= {maximum}")
    return value


def _choice(
    params: dict[str, Any],
    name: str,
    choices: tuple[str, ...],
    path: str,
    default: str | None = None,
    required: bool = False,
) -> str | None:
    if name not in params:
        require(not required, f"{path}.{name}", "is required")
        return default
    value = params[name]
    require(
        isinstance(value, str) and value in choices,
        f"{path}.{name}",
        f"must be one of {list(choices)}",
    )
    return value


def _bool(
    params: dict[str, Any], name: str, path: str, default: bool = False
) -> bool:
    if name not in params:
        return default
    value = params[name]
    require(isinstance(value, bool), f"{path}.{name}", "must be a bool")
    return value


def _geometry(params: dict[str, Any], path: str) -> dict[str, Any]:
    """Shared ``bus_width``/``line_size``/``memory_cycle`` block."""
    return {
        "bus_width": _integer(params, "bus_width", path, default=4, minimum=1),
        "line_size": _integer(params, "line_size", path, default=32, minimum=1),
        "memory_cycle": _number(
            params, "memory_cycle", path, default=8.0, minimum=1.0
        ),
        "turnaround": _number(params, "turnaround", path, default=2.0, minimum=1.0),
    }


def validate_execution_time(params: Any) -> dict[str, Any]:
    """``/v1/execution-time``: Eq. (2) on a hit-ratio-derived workload."""
    params = _object(params, "$.params")
    _reject_unknown(
        params,
        {
            "hit_ratio",
            "bus_width",
            "line_size",
            "memory_cycle",
            "turnaround",
            "flush_ratio",
            "loadstore_fraction",
            "instructions",
            "policy",
            "stall_factor",
            "write_buffers",
        },
        "$.params",
    )
    out = _geometry(params, "$.params")
    out["hit_ratio"] = _number(
        params, "hit_ratio", "$.params", minimum=1e-9, maximum=1.0, required=True
    )
    out["flush_ratio"] = _number(
        params, "flush_ratio", "$.params", default=0.5, minimum=0.0, maximum=1.0
    )
    out["loadstore_fraction"] = _number(
        params,
        "loadstore_fraction",
        "$.params",
        default=0.3,
        minimum=1e-9,
        maximum=1.0 - 1e-9,
    )
    out["instructions"] = _number(
        params, "instructions", "$.params", default=1_000_000.0, minimum=1.0
    )
    out["policy"] = _choice(params, "policy", _POLICIES, "$.params", default="FS")
    out["stall_factor"] = _number(params, "stall_factor", "$.params", minimum=0.0)
    out["write_buffers"] = _bool(params, "write_buffers", "$.params")
    return out


def validate_tradeoff(params: Any) -> dict[str, Any]:
    """``/v1/tradeoff``: one feature's traded hit ratio (Eq. 6)."""
    params = _object(params, "$.params")
    _reject_unknown(
        params,
        {
            "feature",
            "base_hit_ratio",
            "bus_width",
            "line_size",
            "memory_cycle",
            "turnaround",
            "flush_ratio",
            "stall_factor",
        },
        "$.params",
    )
    out = _geometry(params, "$.params")
    out["feature"] = _choice(
        params, "feature", FEATURES, "$.params", required=True
    )
    out["base_hit_ratio"] = _number(
        params,
        "base_hit_ratio",
        "$.params",
        minimum=0.0,
        maximum=1.0 - 1e-9,
        required=True,
    )
    out["flush_ratio"] = _number(
        params, "flush_ratio", "$.params", default=0.5, minimum=0.0, maximum=1.0
    )
    out["stall_factor"] = _number(params, "stall_factor", "$.params", minimum=0.0)
    require(
        out["feature"] != "partial-stalling" or out["stall_factor"] is not None,
        "$.params.stall_factor",
        "is required for feature 'partial-stalling' (a trace-measured phi)",
    )
    return out


def validate_ranking(params: Any) -> dict[str, Any]:
    """``/v1/ranking``: the Table 3 / Figures 3-5 unified comparison."""
    params = _object(params, "$.params")
    _reject_unknown(
        params,
        {
            "base_hit_ratio",
            "bus_width",
            "line_size",
            "turnaround",
            "flush_ratio",
            "betas",
            "stall_factors",
        },
        "$.params",
    )
    out = _geometry({k: v for k, v in params.items() if k != "betas"}, "$.params")
    del out["memory_cycle"]
    out["base_hit_ratio"] = _number(
        params,
        "base_hit_ratio",
        "$.params",
        minimum=0.0,
        maximum=1.0 - 1e-9,
        required=True,
    )
    out["flush_ratio"] = _number(
        params, "flush_ratio", "$.params", default=0.5, minimum=0.0, maximum=1.0
    )
    betas = params.get("betas")
    require(
        isinstance(betas, list) and betas and len(betas) <= 64,
        "$.params.betas",
        "must be a non-empty list of at most 64 numbers",
    )
    for i, beta in enumerate(betas):
        require_number(beta, f"$.params.betas[{i}]")
        require(beta >= 1.0, f"$.params.betas[{i}]", "must be >= 1")
    out["betas"] = [float(b) for b in betas]
    stall_factors = params.get("stall_factors")
    if stall_factors is not None:
        require(
            isinstance(stall_factors, list)
            and len(stall_factors) == len(betas),
            "$.params.stall_factors",
            "must be a list parallel to betas (one measured phi per beta)",
        )
        for i, phi in enumerate(stall_factors):
            require_number(phi, f"$.params.stall_factors[{i}]")
            require(phi >= 0.0, f"$.params.stall_factors[{i}]", "must be >= 0")
        out["stall_factors"] = [float(p) for p in stall_factors]
    else:
        out["stall_factors"] = None
    return out


def validate_advise(params: Any) -> dict[str, Any]:
    """``/v1/advise``: the design advisor (Section 5.3 as a service)."""
    params = _object(params, "$.params")
    _reject_unknown(
        params,
        {
            "bus_width",
            "line_size",
            "memory_cycle",
            "turnaround",
            "cache_kib",
            "flush_ratio",
            "stall_factor",
        },
        "$.params",
    )
    out = _geometry(params, "$.params")
    out["cache_kib"] = _integer(
        params, "cache_kib", "$.params", default=8, minimum=1, maximum=1 << 16
    )
    out["flush_ratio"] = _number(
        params, "flush_ratio", "$.params", default=0.5, minimum=0.0, maximum=1.0
    )
    out["stall_factor"] = _number(params, "stall_factor", "$.params", minimum=0.0)
    return out


def validate_trace_spec(
    spec: Any, path: str = "$.params.trace"
) -> dict[str, Any]:
    """One trace spec (spec92 or matmul), normalized with defaults.

    Shared between the simulate/sweep request validators and the
    campaign spec validator (:mod:`repro.campaign.spec`), which passes
    its own ``path`` so errors point into the campaign document.
    """
    spec = _object(spec, path)
    kind = _choice(spec, "kind", ("spec92", "matmul"), path, required=True)
    if kind == "spec92":
        _reject_unknown(spec, {"kind", "name", "instructions", "seed"}, path)
        name = spec.get("name", "swm256")
        require(
            isinstance(name, str) and name in SPEC92_PROFILES,
            f"{path}.name",
            f"must be one of {sorted(SPEC92_PROFILES)}",
        )
        return {
            "kind": "spec92",
            "name": name,
            "instructions": _integer(
                spec,
                "instructions",
                path,
                default=8_000,
                minimum=1,
                maximum=MAX_INSTRUCTIONS,
            ),
            "seed": _integer(spec, "seed", path, default=7, minimum=0),
        }
    _reject_unknown(
        spec,
        {"kind", "n", "tile", "element_size", "alu_per_reference"},
        path,
    )
    tile = None
    if spec.get("tile") is not None:
        tile = _integer(spec, "tile", path, minimum=1)
    return {
        "kind": "matmul",
        "n": _integer(
            spec, "n", path, minimum=1, maximum=MAX_MATMUL_N, required=True
        ),
        "tile": tile,
        "element_size": _integer(
            spec, "element_size", path, default=8, minimum=1
        ),
        "alu_per_reference": _integer(
            spec, "alu_per_reference", path, default=2, minimum=0
        ),
    }


def validate_cache_spec(
    spec: Any, path: str = "$.params.cache"
) -> dict[str, Any]:
    """One cache-geometry spec, normalized with defaults (shared like
    :func:`validate_trace_spec`)."""
    spec = _object(spec, path)
    _reject_unknown(spec, {"total_bytes", "line_size", "associativity"}, path)
    out = {
        "total_bytes": _integer(
            spec,
            "total_bytes",
            path,
            default=8192,
            minimum=1,
            maximum=1 << 24,
        ),
        "line_size": _integer(spec, "line_size", path, default=32, minimum=1),
        "associativity": _integer(
            spec, "associativity", path, default=2, minimum=1
        ),
    }
    for name in ("total_bytes", "line_size"):
        require(
            out[name] & (out[name] - 1) == 0,
            f"{path}.{name}",
            "must be a power of two",
        )
    return out


# Internal aliases predating the shared (path-parameterized) names.
_validate_trace = validate_trace_spec
_validate_cache = validate_cache_spec


def validate_simulate(params: Any) -> dict[str, Any]:
    """``/v1/simulate``: an exact per-configuration ``TimingResult``."""
    params = _object(params, "$.params")
    _reject_unknown(
        params,
        {
            "trace",
            "cache",
            "policy",
            "memory_cycle",
            "bus_width",
            "write_buffer_depth",
            "pipelined_q",
            "issue_rate",
            "deadline_ms",
        },
        "$.params",
    )
    out = {
        "trace": _validate_trace(params.get("trace", {"kind": "spec92"})),
        "cache": _validate_cache(params.get("cache", {})),
        "policy": _choice(params, "policy", _POLICIES, "$.params", default="FS"),
        "memory_cycle": _number(
            params, "memory_cycle", "$.params", default=8.0, minimum=1.0
        ),
        "bus_width": _integer(params, "bus_width", "$.params", default=4, minimum=1),
        "write_buffer_depth": _integer(
            params, "write_buffer_depth", "$.params", minimum=0
        ),
        "pipelined_q": _number(params, "pipelined_q", "$.params", minimum=1.0),
        "issue_rate": _number(
            params, "issue_rate", "$.params", default=1.0, minimum=1.0
        ),
        "deadline_ms": _number(params, "deadline_ms", "$.params", minimum=1.0),
    }
    require(
        out["cache"]["line_size"] % out["bus_width"] == 0,
        "$.params.cache.line_size",
        f"must be a multiple of bus_width ({out['bus_width']})",
    )
    return out


def validate_sweep(params: Any) -> dict[str, Any]:
    """``/v1/sweep``: a (geometry x policy x beta_m) grid over one trace.

    The grid is the cross product ``caches x policies x memory_cycles``
    — exactly the empirical-grid shape the paper's methodology is swept
    with (Figures 3-5 ask the same question at many betas; the related
    split-cache studies sweep geometry).  Grid *enumeration* is
    deterministic and cache-major (see :func:`sweep_grid`), which is
    what lets the fleet router shard a sweep by geometry and re-merge
    the stream (``docs/SERVICE.md``, "Fleet mode").
    """
    params = _object(params, "$.params")
    _reject_unknown(
        params,
        {
            "trace",
            "caches",
            "policies",
            "memory_cycles",
            "bus_width",
            "write_buffer_depth",
            "pipelined_q",
            "issue_rate",
            "deadline_ms",
        },
        "$.params",
    )
    out: dict[str, Any] = {
        "trace": _validate_trace(params.get("trace", {"kind": "spec92"})),
        "bus_width": _integer(params, "bus_width", "$.params", default=4, minimum=1),
        "write_buffer_depth": _integer(
            params, "write_buffer_depth", "$.params", minimum=0
        ),
        "pipelined_q": _number(params, "pipelined_q", "$.params", minimum=1.0),
        "issue_rate": _number(
            params, "issue_rate", "$.params", default=1.0, minimum=1.0
        ),
        "deadline_ms": _number(params, "deadline_ms", "$.params", minimum=1.0),
    }

    caches = params.get("caches", [{}])
    require(
        isinstance(caches, list) and caches and len(caches) <= 64,
        "$.params.caches",
        "must be a non-empty list of at most 64 cache specs",
    )
    out["caches"] = [_validate_cache(spec) for spec in caches]
    for i, cache in enumerate(out["caches"]):
        require(
            cache["line_size"] % out["bus_width"] == 0,
            f"$.params.caches[{i}].line_size",
            f"must be a multiple of bus_width ({out['bus_width']})",
        )

    policies = params.get("policies", ["FS"])
    require(
        isinstance(policies, list) and policies,
        "$.params.policies",
        "must be a non-empty list of stall policies",
    )
    for i, policy in enumerate(policies):
        require(
            isinstance(policy, str) and policy in _POLICIES,
            f"$.params.policies[{i}]",
            f"must be one of {list(_POLICIES)}",
        )
    out["policies"] = list(policies)

    betas = params.get("memory_cycles")
    require(
        isinstance(betas, list) and betas,
        "$.params.memory_cycles",
        "must be a non-empty list of numbers",
    )
    for i, beta in enumerate(betas):
        require_number(beta, f"$.params.memory_cycles[{i}]")
        require(beta >= 1.0, f"$.params.memory_cycles[{i}]", "must be >= 1")
    out["memory_cycles"] = [float(beta) for beta in betas]

    points = len(out["caches"]) * len(out["policies"]) * len(out["memory_cycles"])
    require(
        points <= MAX_SWEEP_POINTS,
        "$.params",
        f"grid expands to {points} points, more than the "
        f"{MAX_SWEEP_POINTS}-point limit",
    )
    return out


def sweep_point_count(validated: dict[str, Any]) -> int:
    """How many points a validated sweep expands to."""
    return (
        len(validated["caches"])
        * len(validated["policies"])
        * len(validated["memory_cycles"])
    )


def sweep_grid(validated: dict[str, Any]):
    """Lazily expand a validated sweep into ``(index, point, params)``.

    A generator — a million-point grid is never materialized.
    Enumeration is **cache-major** (geometry outer, then policy, then
    beta_m): consecutive points share an events-store key, so they
    coalesce in one worker's micro-batch, and a geometry subset of the
    grid is itself a valid sub-grid — the property the fleet router's
    sharding relies on to forward one sub-sweep per worker and rewrite
    local indices back to global ones.
    """
    index = 0
    for cache_index, cache in enumerate(validated["caches"]):
        for policy in validated["policies"]:
            for beta in validated["memory_cycles"]:
                point = {
                    "cache_index": cache_index,
                    "cache": cache,
                    "policy": policy,
                    "memory_cycle": beta,
                }
                params = {
                    "trace": validated["trace"],
                    "cache": cache,
                    "policy": policy,
                    "memory_cycle": beta,
                    "bus_width": validated["bus_width"],
                    "write_buffer_depth": validated["write_buffer_depth"],
                    "pipelined_q": validated["pipelined_q"],
                    "issue_rate": validated["issue_rate"],
                    "deadline_ms": validated["deadline_ms"],
                }
                yield index, point, params
                index += 1
