"""Content-addressed in-process result cache for simulation queries.

Keys are derived exactly like :mod:`repro.cache.events_store` keys — the
SHA-256 of a human-readable key-material string that joins every input
that can influence the answer (trace fingerprint, cache geometry and
policies, stall policy, memory model and its parameters, schema
versions).  Two requests that normalise to the same material are the
same query, whatever their JSON spelling was.

The cache is a plain LRU bounded by *payload bytes*, not entry count:
entries store the serialized ``result`` object (the bytes the server
would send), so the bound is an honest memory budget and a hit skips
both the engine and JSON re-serialization.  Single-threaded by design —
the server only touches it from the event-loop thread.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.cache.cache import CacheConfig
from repro.cache.events import EVENT_SCHEMA_VERSION

#: Bump when the response payload layout for a given query changes.
RESULT_CACHE_VERSION = 1


def simulate_key_material(
    trace_fingerprint: str,
    config: CacheConfig,
    policy: str,
    memory_cycle: float,
    bus_width: int,
    write_buffer_depth: int | None,
    pipelined_q: float | None,
    issue_rate: float,
) -> str:
    """The human-readable string whose SHA-256 addresses one query."""
    return (
        f"service/{RESULT_CACHE_VERSION}"
        f"|events/{EVENT_SCHEMA_VERSION}"
        f"|trace/{trace_fingerprint}"
        f"|cache/{config.total_bytes}/{config.line_size}"
        f"/{config.associativity}/{config.replacement}"
        f"/{config.write_policy.name}/{config.allocate_policy.name}"
        f"|policy/{policy}"
        f"|mem/{memory_cycle!r}/{bus_width}"
        f"|wb/{write_buffer_depth}"
        f"|pipe/{pipelined_q!r}"
        f"|issue/{issue_rate!r}"
    )


def result_key(material: str) -> str:
    """Content address (hex SHA-256) of one query."""
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Byte-size-bounded LRU of serialized query results."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Current payload footprint."""
        return self._bytes

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: str) -> bytes | None:
        """Look one key up, refreshing its recency."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: str, payload: bytes) -> None:
        """Insert (or refresh) one entry, evicting LRU entries to fit.

        A payload larger than the whole capacity is simply not cached —
        it would evict everything and then miss anyway.
        """
        if len(payload) > self.capacity_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        self._entries[key] = payload
        self._bytes += len(payload)
        while self._bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
        self._bytes = 0
