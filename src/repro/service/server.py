"""The asyncio server: connections, drain-then-shutdown, CLI entry.

:class:`ReproServer` owns the listening socket, one coroutine per
connection (persistent HTTP/1.1, one request at a time per connection),
the :class:`~repro.service.batching.MicroBatcher`, and the
:class:`~repro.service.result_cache.ResultCache`.  Shutdown is a
*drain*: :meth:`ReproServer.begin_shutdown` (wired to SIGTERM/SIGINT by
:func:`run_server`, callable directly from tests) closes the listener,
lets every in-flight request finish and be answered — with
``Connection: close`` so clients re-dial elsewhere — force-closes idle
connections, and only then stops the batch worker.

Metrics land in the *process-global* registry by default
(``repro.obs.metrics``): the engine's own instrumentation
(``engine.replay.dispatches``, ``engine.step_fallback.dispatches``,
events-store hits) uses module-global counters, so sharing the registry
is what lets ``GET /v1/stats`` report engine dispatch alongside queue
depth and cache hit ratios in one snapshot.  Counter keys are
partitioned by thread — ``service.batch.*``/``service.queue.*`` from
the event loop, ``service.phase1.*``/``engine.*`` from the single batch
worker — so the shared registry needs no lock.

:class:`ServerThread` runs the whole loop on a daemon thread for tests
and the load generator; ``python -m repro serve`` uses
:func:`run_server` in the foreground.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from dataclasses import dataclass

from repro.obs import live, metrics, tracing
from repro.obs.access_log import AccessLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.span_spool import DEFAULT_BUDGET_BYTES, SpanSpool
from repro.service import disk_cache as disk_cache_mod
from repro.service import http11
from repro.service.app import ServiceApp, StreamBody, error_body
from repro.service.batching import MicroBatcher
from repro.service.disk_cache import DiskResultCache
from repro.service.http11 import HttpError
from repro.service.result_cache import ResultCache


@dataclass
class ServerConfig:
    """Everything tunable about one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (tests, load generator)
    queue_limit: int = 64
    batch_window_s: float = 0.002
    result_cache_bytes: int = 8 * 1024 * 1024
    default_deadline_s: float = 30.0
    events_memo_entries: int = 8
    max_header_bytes: int = http11.DEFAULT_MAX_HEADER_BYTES
    max_body_bytes: int = http11.DEFAULT_MAX_BODY_BYTES
    drain_grace_s: float = 30.0
    access_log_path: str | None = None
    span_ring_capacity: int = 4096  # 0 disables the server-owned ring
    # Durable span collection: finished spans are appended to a JSONL
    # spool under this directory (see repro.obs.span_spool).  Off by
    # default, and never active while tracing itself is disabled.
    span_spool_dir: str | None = None
    span_spool_bytes: int = DEFAULT_BUDGET_BYTES
    sli_window_s: float = 60.0
    sli_bucket_s: float = 1.0
    profile_max_seconds: float = 10.0  # /v1/debug/profile window cap
    # Idle keep-alive connections are closed after this many seconds
    # without a request (None = never).
    keepalive_timeout_s: float | None = 75.0
    # Admission control: cache-miss simulate work is shed with 429 once
    # the batch queue is at least this deep (None = disabled).
    shed_watermark: int | None = None
    # Fleet identity: stamped into spans, access-log records, and
    # /v1/stats when set (workers get w0..wN-1 from the router).
    worker_id: str | None = None
    # Disk-backed result cache: off unless a directory is configured
    # (or REPRO_RESULT_CACHE_DIR overrides one in).
    disk_cache_dir: str | None = None
    disk_cache_bytes: int = disk_cache_mod.DEFAULT_CAPACITY_BYTES
    # Campaign registry: the /v1/campaigns endpoints are enabled only
    # when a directory is configured (REPRO_CAMPAIGN_DIR overrides the
    # location, not the opt-in).
    campaign_dir: str | None = None


class ReproServer:
    """One listening socket plus its batcher, cache, and connections."""

    def __init__(
        self, config: ServerConfig | None = None, registry: MetricsRegistry | None = None
    ) -> None:
        self.config = config or ServerConfig()
        self._registry_override = registry
        self.registry: MetricsRegistry | None = None
        self.app: ServiceApp | None = None
        self.batcher: MicroBatcher | None = None
        self.result_cache: ResultCache | None = None
        self.disk_cache: DiskResultCache | None = None
        self.campaign_service = None  # set in start() with --campaign-dir
        self._server: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self.window: live.RollingWindow | None = None
        self.access_log: AccessLog | None = None
        self.span_spool: SpanSpool | None = None
        self._installed_tracer: tracing.Tracer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._draining = False
        self._shutdown_requested = asyncio.Event()
        self._drained = asyncio.Event()

    @property
    def port(self) -> int:
        """The bound port (meaningful once started; resolves port 0)."""
        assert self._port is not None, "server not started"
        return self._port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the batch scheduler."""
        self.registry = (
            self._registry_override
            or metrics.current_metrics()
            or metrics.enable_metrics()
        )
        if self.config.worker_id is not None:
            live.set_worker_id(self.config.worker_id)
        self.result_cache = ResultCache(self.config.result_cache_bytes)
        if (
            self.config.disk_cache_dir is not None
            and disk_cache_mod.cache_enabled()
        ):
            self.disk_cache = DiskResultCache(
                disk_cache_mod.resolve_cache_dir(self.config.disk_cache_dir),
                capacity_bytes=self.config.disk_cache_bytes,
            )
        self.batcher = MicroBatcher(
            self.registry,
            max_pending=self.config.queue_limit,
            batch_window_s=self.config.batch_window_s,
            events_memo_entries=self.config.events_memo_entries,
        )
        self.batcher.start()
        # A server-owned bounded ring keeps span tracing on for the whole
        # run (it feeds /v1/debug/trace) without unbounded growth; an
        # externally installed tracer takes precedence.  The spool is
        # the ring's durable tap and exists only when tracing does —
        # tracing off means no spool, by contract.
        if tracing.current_tracer() is None and self.config.span_ring_capacity > 0:
            if self.config.span_spool_dir:
                self.span_spool = SpanSpool(
                    self._span_spool_dir(),
                    budget_bytes=self.config.span_spool_bytes,
                )
            self._installed_tracer = tracing.install_tracer(
                live.RingTracer(
                    capacity=self.config.span_ring_capacity,
                    sink=(
                        self.span_spool.append
                        if self.span_spool is not None
                        else None
                    ),
                )
            )
        self.window = live.RollingWindow(
            window_s=self.config.sli_window_s,
            bucket_s=self.config.sli_bucket_s,
        )
        if self.config.access_log_path:
            self.access_log = AccessLog(self.config.access_log_path)
        self.app = self._make_app()
        if self.config.campaign_dir is not None:
            # Imported here so servers without campaigns never pay for
            # the campaign package.
            from repro.campaign.registry import (
                CampaignRegistry,
                resolve_registry_dir,
            )
            from repro.campaign.service import CampaignService

            self.campaign_service = CampaignService(
                CampaignRegistry(
                    resolve_registry_dir(self.config.campaign_dir)
                ),
                self.app.resolve_point,
                self.app.classify_point_error_doc,
                self.registry,
            )
            self.app.campaign_service = self.campaign_service
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            # readuntil() overruns at the stream limit, which is how the
            # header-block cap in http11.read_request actually triggers.
            limit=self.config.max_header_bytes,
        )
        self._port = self._server.sockets[0].getsockname()[1]

    def _span_spool_dir(self) -> str:
        """Where this process's span spool lives.

        The fleet router overrides this to claim the ``router``
        subdirectory, leaving ``<dir>/w0``.. to the workers it spawns,
        so one ``--span-spool-dir`` fans out into one subdirectory per
        process.
        """
        assert self.config.span_spool_dir is not None
        return self.config.span_spool_dir

    def _make_app(self) -> ServiceApp:
        """Build the request-handling app; the fleet router overrides
        this to swap in its sharding/forwarding app on the same server
        skeleton (see :mod:`repro.service.router`)."""
        assert self.registry is not None
        assert self.batcher is not None
        assert self.result_cache is not None
        return ServiceApp(
            self.registry,
            self.batcher,
            self.result_cache,
            default_deadline_s=self.config.default_deadline_s,
            window=self.window,
            access_log=self.access_log,
            tracer=tracing.current_tracer(),
            is_ready=lambda: not self._draining,
            profile_max_seconds=self.config.profile_max_seconds,
            disk_cache=self.disk_cache,
            shed_watermark=self.config.shed_watermark,
            span_spool=self.span_spool,
        )

    def begin_shutdown(self) -> None:
        """Request a drain (signal handlers, tests); returns immediately."""
        self._shutdown_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`begin_shutdown`, then drain and stop."""
        await self._shutdown_requested.wait()
        await self._drain()

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight work, stop the batcher."""
        self._draining = True
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace_s
        while self._active_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):  # idle keep-alive connections
            writer.close()
        # Stop background campaigns while the batcher (and, on the
        # router, the fleet) still works: each task checkpoints its
        # partial chunk on the way out, so a drained server resumes
        # exactly where it stopped when the spec is re-submitted.
        if self.campaign_service is not None:
            await self.campaign_service.shutdown()
        assert self.batcher is not None
        await self.batcher.drain()
        if self.access_log is not None:
            self.access_log.close()
        if (
            self._installed_tracer is not None
            and tracing.current_tracer() is self._installed_tracer
        ):
            tracing.disable_tracing()
            self._installed_tracer = None
        if self.span_spool is not None:
            # Seals the active file into a checksummed segment, so a
            # drained server leaves a spool the offline validator
            # accepts end to end.
            self.span_spool.close()
        self._drained.set()

    async def wait_drained(self) -> None:
        """Block until a requested drain has completed."""
        await self._drained.wait()

    # -- connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        loop = asyncio.get_running_loop()
        keepalive = self.config.keepalive_timeout_s
        try:
            while True:
                # Idle keep-alive: a plain timer handle, not wait_for —
                # arming and cancelling it is a heap operation, so the
                # warm hot path never pays for a wrapper task.  When it
                # fires, close() sends a FIN and the pending read lands
                # on the clean-EOF path below.  A client mid-request is
                # unaffected — the timer spans the wait for the *next*
                # request and is disarmed as soon as one is read.
                idle_timer = (
                    loop.call_later(keepalive, writer.close)
                    if keepalive is not None
                    else None
                )
                try:
                    request = await http11.read_request(
                        reader,
                        max_header_bytes=self.config.max_header_bytes,
                        max_body_bytes=self.config.max_body_bytes,
                    )
                except HttpError as error:
                    body = error_body(error.status, error.code, error.message)
                    writer.write(
                        http11.render_response(error.status, body, keep_alive=False)
                    )
                    await writer.drain()
                    return
                except (ConnectionError, asyncio.IncompleteReadError):
                    return  # client vanished mid-request
                finally:
                    if idle_timer is not None:
                        idle_timer.cancel()
                if request is None:
                    return  # clean close (client EOF or idle expiry)
                request_id = live.request_id_from_header(
                    request.headers.get("x-repro-request-id")
                )
                # Trace identity: honour a well-formed inbound
                # traceparent (the router's forward hop), mint a fresh
                # root otherwise.  Malformed headers are discarded
                # whole, mirroring the request-id sanitization.
                trace_context = live.trace_context_from_header(
                    request.headers.get("traceparent")
                )
                self._active_requests += 1
                try:
                    with live.request_context(request_id):
                        with tracing.trace_context(trace_context):
                            with tracing.span(
                                "service.request", path=request.path
                            ):
                                assert self.app is not None
                                status, body, content_type = (
                                    await self.app.handle(request)
                                )
                                if isinstance(body, StreamBody):
                                    # Streams write inside the request
                                    # context and span so mid-stream
                                    # work is attributed like any other;
                                    # they always close the connection
                                    # when done.
                                    await self._write_stream(
                                        writer,
                                        status,
                                        body,
                                        content_type,
                                        request_id,
                                        trace_context[0],
                                    )
                                    return
                finally:
                    self._active_requests -= 1
                keep_alive = request.keep_alive and not self._draining
                try:
                    writer.write(
                        http11.render_response(
                            status,
                            body,
                            keep_alive=keep_alive,
                            content_type=content_type,
                            extra_headers={
                                live.REQUEST_ID_HEADER: request_id,
                                live.TRACE_ID_HEADER: trace_context[0],
                            },
                        )
                    )
                    await writer.drain()
                except ConnectionError:
                    return
                if not keep_alive:
                    return
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write_stream(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: StreamBody,
        content_type: str,
        request_id: str,
        trace_id: str,
    ) -> None:
        """Drain one streaming body as a chunked transfer-encoded response.

        The stream's own accounting wrapper (see
        :meth:`~repro.service.app.ServiceApp.handle`) fires from the
        ``finally`` of the underlying generator, so it runs whether the
        stream completes or the client disconnects mid-way — which is
        why the generator is closed explicitly here, not left to GC.
        """
        writer.write(
            http11.render_stream_head(
                status,
                content_type=content_type,
                extra_headers={
                    live.REQUEST_ID_HEADER: request_id,
                    live.TRACE_ID_HEADER: trace_id,
                },
            )
        )
        stream = body.__aiter__()
        try:
            while True:
                try:
                    chunk = await stream.__anext__()
                except StopAsyncIteration:
                    break
                writer.write(http11.encode_chunk(chunk))
                await writer.drain()
            writer.write(http11.last_chunk())
            await writer.drain()
        except ConnectionError:
            pass  # client went away mid-stream
        except Exception:  # noqa: BLE001 - truncation is the error signal
            # A generator failure after the head is committed cannot
            # become an error envelope; the missing summary line tells
            # the client the stream is truncated.
            pass
        finally:
            aclose = getattr(stream, "aclose", None)
            if aclose is not None:
                try:
                    await aclose()
                except Exception:  # noqa: BLE001 - closing is best-effort
                    pass


def run_server(config: ServerConfig | None = None) -> None:
    """Foreground entry point: serve until SIGTERM/SIGINT, then drain."""
    config = config or ServerConfig()

    async def main() -> None:
        server = ReproServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, server.begin_shutdown)
        print(f"repro.service listening on {config.host}:{server.port}")
        await server.serve_until_shutdown()
        print("repro.service drained, bye")

    asyncio.run(main())


class ServerThread:
    """A server on a daemon thread, for tests and the load generator.

    Usage::

        with ServerThread() as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            ...

    ``stop()`` performs the full drain (the SIGTERM path) before the
    thread joins, so anything in flight when the ``with`` block exits is
    still answered.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.server = ReproServer(self.config, registry=registry)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        assert self._thread is None, "already started"
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("service thread failed to start")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def begin_shutdown(self) -> None:
        """Trigger the drain from any thread without waiting for it."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.server.begin_shutdown)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and join (idempotent)."""
        if self._thread is None:
            return
        self.begin_shutdown()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not drain in time")
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
