"""Minimal asyncio HTTP/1.1 framing for :mod:`repro.service`.

The reproduction environment is stdlib-only, so the service speaks a
deliberately small slice of HTTP/1.1 directly over asyncio streams:

* request line + headers + optional ``Content-Length`` body (no chunked
  *request* bodies, no trailers, no upgrades);
* chunked *response* bodies for the streaming endpoints
  (:func:`render_stream_head` / :func:`encode_chunk` on the sending
  side, :func:`read_chunk` on the router's fan-in side);
* client-side response parsing (:func:`render_request` /
  :func:`read_response`) for the fleet router's persistent worker
  connections;
* persistent connections by default (``Connection: close`` honoured in
  both directions);
* hard limits on header-block and body size, enforced *before* any
  JSON parsing, so an oversized or malformed request costs the server
  one bounded read and a 4xx — never memory.

Anything outside that slice raises :class:`HttpError` with the
appropriate status; the connection handler in
:mod:`repro.service.server` turns it into a structured JSON error
response (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

#: Upper bound on the request line + headers block, in bytes.
DEFAULT_MAX_HEADER_BYTES = 16 * 1024

#: Upper bound on a request body, in bytes.
DEFAULT_MAX_BODY_BYTES = 1024 * 1024

#: Methods the service routes; anything else is a 405.
ALLOWED_METHODS = frozenset({"GET", "POST"})

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that cannot be serviced, with its HTTP status."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Request | None:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on protocol violations and limit
    breaches, ``ConnectionError``/``asyncio.IncompleteReadError`` on a
    mid-request disconnect.
    """
    try:
        blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise
    except asyncio.LimitOverrunError:
        raise HttpError(
            431, "headers_too_large", "request header block exceeds the limit"
        ) from None
    if len(blob) > max_header_bytes:
        raise HttpError(
            431, "headers_too_large", "request header block exceeds the limit"
        )

    head, _, _ = blob.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request_line", f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    if method not in ALLOWED_METHODS:
        raise HttpError(405, "method_not_allowed", f"method {method} not allowed")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad_header", f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(
                400, "bad_content_length", f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise HttpError(
                400, "bad_content_length", f"bad Content-Length {length_text!r}"
            )
        if length > max_body_bytes:
            raise HttpError(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        if length:
            body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(
            400,
            "unsupported_transfer_encoding",
            "chunked transfer encoding is not supported",
        )
    return Request(method=method, path=path, headers=headers, body=body)


@dataclass
class Response:
    """One parsed HTTP response (the router's view of a worker answer)."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the server kept the connection open."""
        return self.headers.get("connection", "keep-alive").lower() != "close"

    @property
    def chunked(self) -> bool:
        return "chunked" in self.headers.get("transfer-encoding", "").lower()


async def read_response_head(
    reader: asyncio.StreamReader,
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
) -> Response:
    """Read one response's status line + headers (body not consumed).

    Used by the fleet router on its worker-side connections.  Raises
    ``ConnectionError``/``asyncio.IncompleteReadError`` when the worker
    vanished, :class:`HttpError` (502-flavoured) on garbage.
    """
    try:
        blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise ConnectionError("worker closed the connection") from None
        raise
    except asyncio.LimitOverrunError:
        raise HttpError(
            502, "bad_upstream", "worker response header block too large"
        ) from None
    if len(blob) > max_header_bytes:
        raise HttpError(
            502, "bad_upstream", "worker response header block too large"
        )
    head, _, _ = blob.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(
            502, "bad_upstream", f"malformed status line {lines[0]!r}"
        )
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(
            502, "bad_upstream", f"malformed status line {lines[0]!r}"
        ) from None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(502, "bad_upstream", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    return Response(status=status, headers=headers)


async def read_response(
    reader: asyncio.StreamReader,
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Response:
    """Read one complete non-chunked response off the stream.

    The router's request/response path: every ordinary worker answer
    carries ``Content-Length``.  Chunked upstream bodies (a worker's
    ``/v1/sweep``) are consumed incrementally via
    :func:`read_chunk` instead.
    """
    response = await read_response_head(reader, max_header_bytes)
    if response.chunked:
        raise HttpError(
            502, "bad_upstream", "unexpected chunked response body"
        )
    length_text = response.headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(
            502, "bad_upstream", f"bad Content-Length {length_text!r}"
        ) from None
    if length < 0 or length > max_body_bytes:
        raise HttpError(
            502, "bad_upstream", f"unacceptable Content-Length {length}"
        )
    if length:
        response.body = await reader.readexactly(length)
    return response


async def read_chunk(reader: asyncio.StreamReader) -> bytes:
    """One chunk of a chunked response body; ``b""`` on the last chunk.

    The caller loops until the empty chunk, after which trailers (none
    are sent by this service) and the final CRLF are consumed.
    """
    size_line = await reader.readuntil(b"\r\n")
    try:
        size = int(size_line.strip().split(b";")[0], 16)
    except ValueError:
        raise HttpError(
            502, "bad_upstream", f"bad chunk size line {size_line!r}"
        ) from None
    if size == 0:
        await reader.readuntil(b"\r\n")  # the terminating CRLF
        return b""
    data = await reader.readexactly(size)
    await reader.readexactly(2)  # chunk-trailing CRLF
    return data


def render_request(
    method: str,
    path: str,
    body: bytes = b"",
    headers: dict[str, str] | None = None,
    host: str = "",
) -> bytes:
    """Serialize one HTTP/1.1 request (the router's worker-side egress)."""
    extra = ""
    for name, value in (headers or {}).items():
        clean = str(value).replace("\r", "").replace("\n", "")
        extra += f"{name}: {clean}\r\n"
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host or 'fleet'}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "\r\n"
    )
    return head.encode("latin-1") + body


def render_stream_head(
    status: int,
    content_type: str = "application/x-ndjson",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Headers opening a chunked (streaming) response.

    Streaming responses always close the connection when done — the
    sweep endpoint trades keep-alive for not having to promise a length.
    """
    reason = _REASONS.get(status, "Unknown")
    extra = ""
    for name, value in (extra_headers or {}).items():
        clean = str(value).replace("\r", "").replace("\n", "")
        extra += f"{name}: {clean}\r\n"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Transfer-Encoding: chunked\r\n"
        f"{extra}"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1")


def encode_chunk(data: bytes) -> bytes:
    """Frame one non-empty chunk of a chunked body."""
    if not data:
        return b""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


def last_chunk() -> bytes:
    """The terminal zero-length chunk ending a chunked body."""
    return b"0\r\n\r\n"


def render_response(
    status: int,
    body: bytes,
    keep_alive: bool,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one HTTP/1.1 response (headers + body).

    ``extra_headers`` values are sanitized against CR/LF so a
    caller-supplied string (an echoed request id) can never split the
    header block.
    """
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    extra = ""
    for name, value in (extra_headers or {}).items():
        clean = str(value).replace("\r", "").replace("\n", "")
        extra += f"{name}: {clean}\r\n"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
