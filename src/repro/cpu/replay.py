"""Phase 2 of the two-phase simulation engine: timing replay.

Given an :class:`~repro.cache.events.EventStream` (the functional pass
of :func:`repro.cache.events.extract_events`), the replay engines
compute the **exact** cycle accounting that
:class:`~repro.cpu.processor.TimingSimulator` (or
:class:`~repro.cpu.nonblocking.MSHRSimulator`) would produce — by
iterating over the trace's timing-relevant accesses (typically 5-10 %
of references, under 1 % of instructions) instead of stepping every
instruction.

Why this is exact, not approximate: between timing-relevant events every
instruction retires in exactly one cycle, so time between events is pure
index arithmetic; at the events themselves (misses, copy-backs, timed
writes, and the Table 2 stalls of accesses that engage an in-flight
fill), the replay performs the *same floating-point operations in the
same order* as the step simulator.  The equivalence suite
(``tests/cpu/test_replay_equivalence.py``) pins ``TimingResult``
equality field by field across traces, geometries and ``beta_m``.

Three kernels cover the registry:

* :func:`_replay` — the fast per-fill kernel for the common case
  (write-back + write-allocate, no write buffer, plain
  :class:`~repro.memory.MainMemory`), policies FS/BL/BNL1-3/NB;
* :func:`_replay_general` — an event-walk kernel for everything the
  single-fill-port :class:`~repro.cpu.processor.TimingSimulator` can
  express: read-bypassing write buffers (a real
  :class:`~repro.memory.write_buffer.WriteBuffer` instance runs inside
  the kernel), :class:`~repro.memory.PipelinedMemory` (Eq. 9),
  :class:`~repro.memory.dram.PageModeDram`, and
  write-through/write-around traffic;
* :func:`replay_mshr` — the k-MSHR non-blocking kernel mirroring
  :class:`~repro.cpu.nonblocking.MSHRSimulator` (including the
  load-use-distance knob).

:func:`replay_fs_sweep` additionally vectorizes full-stall accounting
array-at-a-time over a ``beta_m`` grid: with FS the per-miss recurrence
telescopes into a closed form whose terms are all integer-valued when
``beta_m`` is, so numpy reproduces the loop bitwise; fractional grids
fall back to the per-point kernel automatically.

The only configuration still outside replay is multi-issue
(``issue_rate > 1``), which goes through the step simulator via
:func:`simulate` — one call site for both engines.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cache.cache import CacheConfig
from repro.cache.events import EventStream, extract_events
from repro.cache.write_policy import AllocatePolicy, WritePolicy
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingResult, TimingSimulator
from repro.memory.dram import PageModeDram
from repro.memory.mainmem import FillSchedule, MainMemory
from repro.memory.pipelined import PipelinedMemory
from repro.memory.write_buffer import WriteBuffer
from repro.obs import metrics, tracing
from repro.trace.record import Instruction

#: Policies the replay engine reproduces exactly.
REPLAY_POLICIES = frozenset(
    {
        StallPolicy.FULL_STALL,
        StallPolicy.BUS_LOCKED,
        StallPolicy.BUS_NOT_LOCKED_1,
        StallPolicy.BUS_NOT_LOCKED_2,
        StallPolicy.BUS_NOT_LOCKED_3,
        StallPolicy.NON_BLOCKING,
    }
)

#: Memory models the replay engine reproduces exactly.  Exact types, not
#: isinstance: a subclass overriding the timing hooks must be vetted
#: (and listed) before replay may claim bitwise equality for it.
REPLAY_MEMORY_TYPES = (MainMemory, PipelinedMemory, PageModeDram)


def unsupported_reason(
    config: CacheConfig,
    memory: MainMemory,
    policy: StallPolicy,
    write_buffer_depth: int | None = None,
    issue_rate: float = 1.0,
) -> str | None:
    """Why :func:`replay` cannot cover this configuration (None = it can).

    The returned token labels ``engine.step_fallback.dispatches`` so
    any future coverage gap is visible in metrics snapshots.
    """
    del write_buffer_depth  # every depth (and None) is covered
    if policy not in REPLAY_POLICIES:
        return "policy"
    if issue_rate != 1.0:
        return "multi-issue"
    if type(memory) not in REPLAY_MEMORY_TYPES:
        return "memory-model"
    if config.line_size % memory.bus_width:
        return "geometry"
    return None


def supports_replay(
    config: CacheConfig,
    memory: MainMemory,
    policy: StallPolicy,
    write_buffer_depth: int | None = None,
    issue_rate: float = 1.0,
) -> bool:
    """Whether :func:`replay` reproduces this configuration exactly."""
    return (
        unsupported_reason(config, memory, policy, write_buffer_depth, issue_rate)
        is None
    )


def _is_fast_path(
    config: CacheConfig, memory: MainMemory, write_buffer_depth: int | None
) -> bool:
    """Whether the per-fill kernel applies (vs the general event walk)."""
    return (
        type(memory) is MainMemory
        and not write_buffer_depth
        and config.write_policy is WritePolicy.WRITE_BACK
        and config.allocate_policy is AllocatePolicy.WRITE_ALLOCATE
    )


def replay(
    events: EventStream,
    memory: MainMemory,
    policy: StallPolicy,
    write_buffer_depth: int | None = None,
) -> TimingResult:
    """Exact cycle accounting for one ``(policy, memory)`` point.

    Walks the sparse event structures; never touches the instruction
    stream.  Use :func:`supports_replay` first — unsupported
    configurations raise ``ValueError``.
    """
    reason = unsupported_reason(events.config, memory, policy, write_buffer_depth)
    if reason is not None:
        raise ValueError(
            f"replay does not cover (policy={policy.value}, "
            f"memory={type(memory).__name__}, config={events.config}): "
            f"{reason}; use the TimingSimulator oracle"
        )
    if _is_fast_path(events.config, memory, write_buffer_depth):
        kernel = _replay
        args = (events, memory, policy)
    else:
        kernel = _replay_general
        args = (events, memory, policy, write_buffer_depth)
    if not tracing.spans_active():
        return kernel(*args)
    with tracing.span(
        "phase2.replay",
        policy=policy.value,
        beta=memory.memory_cycle,
        fills=events.n_fills,
        kernel=kernel.__name__.lstrip("_"),
    ):
        return kernel(*args)


def _replay(
    events: EventStream, memory: MainMemory, policy: StallPolicy
) -> TimingResult:
    """The per-fill replay kernel (pre-validated inputs)."""
    beta = memory.memory_cycle
    bus_width = memory.bus_width
    n_chunks = events.line_size // bus_width
    # Mirrors MainMemory.line_fill_duration / copy_back_duration.
    fill_duration = n_chunks * beta

    d = events.derived
    miss_index = d.miss_index
    miss_offset = d.miss_offset
    miss_dirty = d.miss_dirty
    first_after = d.first_access_after_miss
    touch_ptr = d.touch_ptr
    touch_index = d.touch_index
    touch_offset = d.touch_offset

    is_fs = policy is StallPolicy.FULL_STALL
    is_bl = policy is StallPolicy.BUS_LOCKED
    is_bnl1 = policy is StallPolicy.BUS_NOT_LOCKED_1
    is_bnl2 = policy is StallPolicy.BUS_NOT_LOCKED_2
    is_nb = policy is StallPolicy.NON_BLOCKING

    time = 0.0
    bus_busy = 0.0
    read_stall = 0.0
    flush_stall = 0.0
    last_index = -1  # instruction whose processing ended at `time`
    # The in-flight fill left behind by the previous miss (partial
    # policies only): (start, end, critical_chunk) or None.
    fill: tuple[float, float, int] | None = None

    for j, index in enumerate(miss_index):
        # ---- the window of the previous fill -------------------------
        if fill is not None:
            start, end, critical = fill
            if is_bl:
                # Any load/store during the fill waits for fill end.
                engaged = first_after[j - 1]
                if engaged >= 0:
                    at = time + (engaged - last_index - 1)
                    if at < end:
                        read_stall += end - at
                        time = end + 1.0  # the engaged hit's issue slot
                        last_index = engaged
            elif is_bnl1:
                # Only a re-touch of the in-flight line waits (to end).
                lo, hi = touch_ptr[j - 1], touch_ptr[j]
                if hi > lo:
                    engaged = touch_index[lo]
                    at = time + (engaged - last_index - 1)
                    if at < end:
                        read_stall += end - at
                        time = end + 1.0
                        last_index = engaged
            else:
                # BNL2/BNL3/NB: walk the re-touches until the fill ends.
                for p in range(touch_ptr[j - 1], touch_ptr[j]):
                    engaged = touch_index[p]
                    at = time + (engaged - last_index - 1)
                    if at >= end:
                        break
                    position = (touch_offset[p] // bus_width - critical) % n_chunks
                    arrival = start + (position + 1) * beta
                    if is_bnl2:
                        if arrival <= at:
                            continue  # word already there: no stall
                        read_stall += end - at
                        time = end + 1.0
                        last_index = engaged
                        break
                    # BNL3/NB: wait just for the word itself.
                    resume = arrival if arrival > at else at
                    read_stall += resume - at
                    time = resume + 1.0
                    last_index = engaged

        # ---- the miss itself -----------------------------------------
        time += index - last_index - 1  # plain 1-cycle instructions
        if fill is not None and time < fill[1]:
            # A second miss waits for the single fill port (all
            # partial policies; FS never leaves a fill outstanding).
            read_stall += fill[1] - time
            time = fill[1]
        start = time if time > bus_busy else bus_busy
        bus_busy = start + fill_duration
        end = start + n_chunks * beta  # == FillSchedule.end_time
        if is_fs:
            resume = end
        elif is_nb:
            resume = start  # ideal NB: the miss itself retires freely
        else:
            resume = start + 1 * beta  # critical word
        stall = resume - time
        read_stall += stall if stall > 0.0 else 0.0
        time = resume if resume > time else time
        fill = None if is_fs else (start, end, miss_offset[j] // bus_width)
        if miss_dirty[j]:
            # Copy-back: the processor pays the transfer time only; the
            # bus reservation starts once the fill clears the bus.
            flush_start = time if time > bus_busy else bus_busy
            bus_busy = flush_start + fill_duration
            flush_stall += fill_duration
            time += fill_duration
        last_index = index

    # ---- the window of the last fill, then the tail of the trace -----
    if fill is not None:
        start, end, critical = fill
        j = len(miss_index)
        if is_bl:
            engaged = first_after[j - 1]
            if engaged >= 0:
                at = time + (engaged - last_index - 1)
                if at < end:
                    read_stall += end - at
                    time = end + 1.0
                    last_index = engaged
        elif is_bnl1:
            lo, hi = touch_ptr[j - 1], touch_ptr[j]
            if hi > lo:
                engaged = touch_index[lo]
                at = time + (engaged - last_index - 1)
                if at < end:
                    read_stall += end - at
                    time = end + 1.0
                    last_index = engaged
        else:
            for p in range(touch_ptr[j - 1], touch_ptr[j]):
                engaged = touch_index[p]
                at = time + (engaged - last_index - 1)
                if at >= end:
                    break
                position = (touch_offset[p] // bus_width - critical) % n_chunks
                arrival = start + (position + 1) * beta
                if is_bnl2:
                    if arrival <= at:
                        continue
                    read_stall += end - at
                    time = end + 1.0
                    last_index = engaged
                    break
                resume = arrival if arrival > at else at
                read_stall += resume - at
                time = resume + 1.0
                last_index = engaged

    time += events.n_instructions - 1 - last_index

    result = TimingResult(
        instructions=events.n_instructions,
        cycles=time,
        read_miss_stall_cycles=read_stall,
        flush_stall_cycles=flush_stall,
        write_stall_cycles=0.0,
        line_fills=events.stats.line_fills,
        memory_cycle=beta,
    )
    metrics.record_timing("replay", result)
    return result


def _replay_general(
    events: EventStream,
    memory: MainMemory,
    policy: StallPolicy,
    write_buffer_depth: int | None,
) -> TimingResult:
    """The event-walk kernel: write buffers, pipelined memory, page-mode
    DRAM and write-through/write-around traffic (pre-validated inputs).

    Visits ``events.derived.general_walk`` — misses, timed writes,
    in-window fill-line re-touches and the first access after each miss
    — performing exactly the oracle's float operations at each.  Every
    skipped access is a trafficless hit off the fill line: the oracle
    would compute ``resume == time`` and charge only the 1-cycle issue
    slot, which index arithmetic accounts for.  The write buffer is a
    real :class:`WriteBuffer` driven at the walked accesses only — the
    skipped ones cannot touch it (no post, and a conflict drain
    requires a reference that misses the cache).

    For :class:`PageModeDram` the kernel calls ``schedule_fill`` once
    per fill in program order, so the DRAM's page-hit counters (which
    the ablation reads post-run) come out identical to the oracle's.
    """
    line_size = events.line_size
    bus_width = memory.bus_width
    fill_duration = memory.line_fill_duration(line_size)
    flush_duration = memory.copy_back_duration(line_size)
    schedule_fill = memory.schedule_fill
    write_duration = memory.write_duration

    walk = events.derived.general_walk
    w_index = walk.index
    w_line = walk.line
    w_offset = walk.offset
    w_miss = walk.is_miss
    w_flush = walk.flush_line
    w_timed = walk.timed_write
    w_around = walk.write_around
    w_size = walk.size

    is_fs = policy is StallPolicy.FULL_STALL
    is_bl = policy is StallPolicy.BUS_LOCKED
    is_bnl1 = policy is StallPolicy.BUS_NOT_LOCKED_1
    is_bnl2 = policy is StallPolicy.BUS_NOT_LOCKED_2
    is_nb = policy is StallPolicy.NON_BLOCKING

    # Mirrors TimingSimulator.__init__ (a 0 depth disables the buffer,
    # a negative one raises inside WriteBuffer, like the oracle).
    wb = WriteBuffer(write_buffer_depth) if write_buffer_depth else None

    time = 0.0
    bus_busy = 0.0  # Bus.busy_until
    read_stall = 0.0
    flush_stall = 0.0
    write_stall = 0.0
    last_index = -1
    fill: FillSchedule | None = None
    fill_end = 0.0

    for p in range(len(w_index)):
        index = w_index[p]
        time += index - last_index - 1  # plain 1-cycle instructions
        line = w_line[p]
        miss = w_miss[p]
        around = w_around[p]

        # 1. Stalls imposed by an in-flight fill (Table 2 semantics,
        #    inlined from StallEngine.subsequent_access_resume).
        if fill is not None:
            if time < fill_end:
                if is_bl:
                    resume = fill_end
                elif line != fill.line_address:
                    resume = fill_end if (miss or around) else time
                elif is_bnl1:
                    resume = fill_end
                else:
                    word = fill.arrival_for_offset(w_offset[p], bus_width)
                    if is_bnl2:
                        resume = time if word <= time else fill_end
                    else:  # BNL3 / NB: wait just for the word
                        resume = word if word > time else time
                read_stall += resume - time
                time = resume
            if time >= fill_end:
                fill = None

        # 2. Read-bypass conflict: a reference missing the cache that
        #    hits a buffered dirty line forces a full drain first.
        if wb is not None and (miss or around) and wb.conflicts_with(line):
            drained = wb.flush_all(time)
            write_stall += drained - time
            time = drained

        # 4a. Line fill (mirrors TimingSimulator._start_fill).
        if miss:
            if wb is not None:
                freed = wb.drain_idle(bus_busy, time)
                if freed > bus_busy:
                    bus_busy = freed
            start = time if time > bus_busy else bus_busy  # Bus.reserve
            bus_busy = start + fill_duration
            schedule = schedule_fill(line, line_size, w_offset[p], start)
            if is_fs:
                resume = schedule.end_time
            elif is_nb:
                resume = schedule.start_time
            else:
                resume = schedule.first_arrival
            stall = resume - time
            read_stall += stall if stall > 0.0 else 0.0
            time = resume if resume > time else time
            if is_fs:
                fill = None
            else:
                fill = schedule
                fill_end = schedule.end_time
            flush_line = w_flush[p]
            if flush_line >= 0:
                if wb is not None:
                    stall = wb.post(flush_line, flush_duration, time)
                    flush_stall += stall
                    time += stall
                else:
                    flush_start = time if time > bus_busy else bus_busy
                    bus_busy = flush_start + flush_duration
                    flush_stall += flush_duration
                    time += flush_duration

        # 4b. Write-through / write-around traffic.
        if w_timed[p]:
            duration = write_duration(w_size[p])
            if wb is not None:
                stall = wb.post(line, duration, time)
                write_stall += stall
                time += stall
            else:
                wstart = time if time > bus_busy else bus_busy
                bus_busy = wstart + duration
                done = wstart + duration
                write_stall += done - time
                time = done

        # 5. The issue slot applies to everything but fills/arounds.
        if not (miss or around):
            time += 1.0
        last_index = index

    time += events.n_instructions - 1 - last_index

    result = TimingResult(
        instructions=events.n_instructions,
        cycles=time,
        read_miss_stall_cycles=read_stall,
        flush_stall_cycles=flush_stall,
        write_stall_cycles=write_stall,
        line_fills=events.stats.line_fills,
        memory_cycle=memory.memory_cycle,
    )
    metrics.record_timing("replay", result)
    if wb is not None:
        # Same lifetime counters the oracle records after a run.
        for name, value in wb.counter_snapshot().items():
            metrics.inc(f"write_buffer.{name}", value)
    return result


def replay_mshr(
    events: EventStream,
    memory: MainMemory,
    mshr_count: int = 4,
    load_use_distance: float | None = None,
) -> TimingResult:
    """Exact replay of :class:`~repro.cpu.nonblocking.MSHRSimulator`.

    Covers the MSHR model's own scope: write-back + write-allocate
    caches on plain :class:`MainMemory`.  Visits
    ``events.derived.mshr_walk(k)`` — misses plus the hits whose owning
    fill can still be outstanding — and reproduces the simulator's
    float operations (the fill table is a dict of the same
    :class:`FillSchedule` objects the oracle builds).
    """
    if mshr_count <= 0:
        raise ValueError(f"mshr_count must be positive, got {mshr_count}")
    if load_use_distance is not None and load_use_distance < 0:
        raise ValueError(
            f"load_use_distance must be non-negative, got {load_use_distance}"
        )
    config = events.config
    if (
        type(memory) is not MainMemory
        or config.write_policy is not WritePolicy.WRITE_BACK
        or config.allocate_policy is not AllocatePolicy.WRITE_ALLOCATE
        or config.line_size % memory.bus_width
    ):
        raise ValueError(
            f"replay_mshr covers write-back/write-allocate caches on plain "
            f"MainMemory only (got memory={type(memory).__name__}, "
            f"config={config})"
        )
    if not tracing.spans_active():
        return _replay_mshr(events, memory, mshr_count, load_use_distance)
    with tracing.span(
        "phase2.replay_mshr",
        mshr_count=mshr_count,
        beta=memory.memory_cycle,
        fills=events.n_fills,
    ):
        return _replay_mshr(events, memory, mshr_count, load_use_distance)


def _replay_mshr(
    events: EventStream,
    memory: MainMemory,
    mshr_count: int,
    load_use_distance: float | None,
) -> TimingResult:
    """The k-MSHR replay kernel (pre-validated inputs)."""
    line_size = events.line_size
    bus_width = memory.bus_width
    fill_duration = memory.line_fill_duration(line_size)
    flush_duration = memory.copy_back_duration(line_size)
    schedule_fill = memory.schedule_fill

    walk = events.derived.mshr_walk(mshr_count)
    w_index = walk.index
    w_line = walk.line
    w_offset = walk.offset
    w_miss = walk.is_miss
    w_flush = walk.flush_line
    w_load = walk.is_load

    time = 0.0
    bus_busy = 0.0
    read_stall = 0.0
    flush_stall = 0.0
    last_index = -1
    fills: dict[int, FillSchedule] = {}

    for p in range(len(w_index)):
        index = w_index[p]
        time += index - last_index - 1
        line = w_line[p]

        # MSHRSimulator._expire at access issue.
        if fills:
            fills = {
                ln: f for ln, f in fills.items() if f.end_time > time
            }
        fill = fills.get(line)
        if fill is not None:
            # Access to an in-flight line: wait for the word.
            arrival = fill.arrival_for_offset(w_offset[p], bus_width)
            if arrival > time:
                read_stall += arrival - time
                time = arrival
            fills = {
                ln: f for ln, f in fills.items() if f.end_time > time
            }

        if w_miss[p]:
            if len(fills) >= mshr_count:
                freed_at = min(f.end_time for f in fills.values())
                if freed_at > time:
                    read_stall += freed_at - time
                    time = freed_at
                fills = {
                    ln: f for ln, f in fills.items() if f.end_time > time
                }
            start = time if time > bus_busy else bus_busy  # Bus.reserve
            bus_busy = start + fill_duration
            schedule = schedule_fill(line, line_size, w_offset[p], start)
            fills[line] = schedule
            # Ideal NB: the missing access itself retires for free; a
            # finite load-use distance stalls the consumer d later.
            if load_use_distance is not None and w_load[p]:
                use_time = time + load_use_distance
                first = schedule.first_arrival
                if first > use_time:
                    read_stall += first - use_time
                    time = first - load_use_distance
            flush_line = w_flush[p]
            if flush_line >= 0:
                flush_start = time if time > bus_busy else bus_busy
                bus_busy = flush_start + flush_duration
                flush_stall += flush_duration
                time += flush_duration
        else:
            time += 1.0
        last_index = index

    time += events.n_instructions - 1 - last_index

    result = TimingResult(
        instructions=events.n_instructions,
        cycles=time,
        read_miss_stall_cycles=read_stall,
        flush_stall_cycles=flush_stall,
        write_stall_cycles=0.0,
        line_fills=events.stats.line_fills,
        memory_cycle=memory.memory_cycle,
    )
    metrics.record_timing("replay", result)
    return result


def replay_fs_sweep(
    events: EventStream, betas: Sequence[float], bus_width: int
) -> tuple[TimingResult, ...]:
    """Vectorized full-stall accounting over a whole ``beta_m`` grid.

    Under FS nothing overlaps: every fill stalls the processor for the
    full ``(L/D) * beta_m`` and the bus never delays anyone, so the
    per-miss recurrence telescopes into a closed form.  When every
    ``beta_m`` is integer-valued all terms are exact integers and numpy
    multiplication reproduces the kernel's repeated addition bitwise;
    a fractional grid falls back to the per-point kernel (whose
    operation order is then the only bitwise-faithful one).
    """
    config = events.config
    memory_probe = MainMemory(betas[0] if len(betas) else 1.0, bus_width)
    if not _is_fast_path(config, memory_probe, None) or not supports_replay(
        config, memory_probe, StallPolicy.FULL_STALL
    ):
        raise ValueError(
            f"replay_fs_sweep covers write-back/write-allocate caches on "
            f"plain MainMemory only (config={events.config})"
        )
    grid = np.asarray(betas, dtype=float)
    if not np.all(grid == np.floor(grid)):
        return tuple(
            _replay(events, MainMemory(beta, bus_width), StallPolicy.FULL_STALL)
            for beta in betas
        )
    n_chunks = events.line_size // bus_width
    fills = events.stats.line_fills
    dirty = int(events.dirty_victim.sum())
    n = events.n_instructions
    fill_durations = n_chunks * grid
    read_stalls = fills * fill_durations
    flush_stalls = dirty * fill_durations
    cycles = float(n - fills) + (fills + dirty) * fill_durations
    results = []
    for i, beta in enumerate(betas):
        result = TimingResult(
            instructions=n,
            cycles=float(cycles[i]),
            read_miss_stall_cycles=float(read_stalls[i]),
            flush_stall_cycles=float(flush_stalls[i]),
            write_stall_cycles=0.0,
            line_fills=fills,
            memory_cycle=float(beta),
        )
        metrics.record_timing("replay", result)
        results.append(result)
    return tuple(results)


def simulate(
    instructions: Sequence[Instruction],
    config: CacheConfig,
    memory: MainMemory,
    policy: StallPolicy = StallPolicy.FULL_STALL,
    write_buffer_depth: int | None = None,
    issue_rate: float = 1.0,
    events: EventStream | None = None,
) -> TimingResult:
    """One call site for both engines.

    Uses the two-phase replay when the configuration supports it (pass
    ``events`` to reuse a memoized phase-1 extraction), otherwise falls
    back to the step-simulator oracle.
    """
    reason = unsupported_reason(
        config, memory, policy, write_buffer_depth, issue_rate
    )
    if reason is None:
        if events is None:
            events = extract_events(instructions, config)
        return replay(events, memory, policy, write_buffer_depth)
    metrics.inc("engine.step_fallback.dispatches", reason=reason)
    simulator = TimingSimulator(
        config,
        memory,
        policy=policy,
        write_buffer_depth=write_buffer_depth,
        issue_rate=issue_rate,
    )
    with tracing.span(
        "engine.step_simulate",
        policy=policy.value,
        beta=memory.memory_cycle,
        write_buffer_depth=write_buffer_depth,
    ):
        return simulator.run(instructions)
