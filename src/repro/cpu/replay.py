"""Phase 2 of the two-phase simulation engine: timing replay.

Given an :class:`~repro.cache.events.EventStream` (the functional pass
of :func:`repro.cache.events.extract_events`), the replay engine
computes the **exact** cycle accounting that
:class:`~repro.cpu.processor.TimingSimulator` would produce — by
iterating over the trace's line fills (typically 5-10 % of references,
under 1 % of instructions) instead of stepping every instruction.

Why this is exact, not approximate: between timing-relevant events every
instruction retires in exactly one cycle, so time between events is pure
index arithmetic; at the events themselves (misses, copy-backs, and the
Table 2 stalls of accesses that engage an in-flight fill), the replay
performs the *same floating-point operations in the same order* as the
step simulator.  The equivalence suite
(``tests/cpu/test_replay_equivalence.py``) pins ``TimingResult``
equality field by field for FS/BL/BNL1/BNL2/BNL3 across traces,
geometries and ``beta_m``.

The engine intentionally covers only what the event stream can express:

* write-back, write-allocate caches (the paper's Figure 1 configuration
  and everything built on it) — write-through/write-around traffic
  interleaves timed writes between fills and is left to the oracle;
* no write buffer (copy-backs stall synchronously);
* plain non-pipelined :class:`~repro.memory.MainMemory`;
* single-issue processors;
* the FS, BL and BNL1-3 policies — NB and MSHR-style overlap depend on
  per-access dependency timing the compact stream does not carry.

Everything else falls back to the step simulator via :func:`simulate`,
which keeps one call site for both engines.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cache.cache import CacheConfig
from repro.cache.events import EventStream, extract_events
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingResult, TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.obs import metrics, tracing
from repro.trace.record import Instruction

#: Policies the replay engine reproduces exactly.
REPLAY_POLICIES = frozenset(
    {
        StallPolicy.FULL_STALL,
        StallPolicy.BUS_LOCKED,
        StallPolicy.BUS_NOT_LOCKED_1,
        StallPolicy.BUS_NOT_LOCKED_2,
        StallPolicy.BUS_NOT_LOCKED_3,
    }
)


def supports_replay(
    config: CacheConfig,
    memory: MainMemory,
    policy: StallPolicy,
    write_buffer_depth: int | None = None,
    issue_rate: float = 1.0,
) -> bool:
    """Whether :func:`replay` reproduces this configuration exactly."""
    from repro.cache.write_policy import AllocatePolicy, WritePolicy

    return (
        policy in REPLAY_POLICIES
        and write_buffer_depth is None
        and issue_rate == 1.0
        and type(memory) is MainMemory
        and config.write_policy is WritePolicy.WRITE_BACK
        and config.allocate_policy is AllocatePolicy.WRITE_ALLOCATE
        and config.line_size % memory.bus_width == 0
    )


def replay(
    events: EventStream, memory: MainMemory, policy: StallPolicy
) -> TimingResult:
    """Exact cycle accounting for one ``(policy, memory)`` point.

    Walks the per-fill event structures; never touches the instruction
    stream.  Use :func:`supports_replay` first — unsupported
    configurations raise ``ValueError``.
    """
    if not supports_replay(events.config, memory, policy):
        raise ValueError(
            f"replay does not cover (policy={policy.value}, "
            f"memory={type(memory).__name__}, config={events.config}); "
            "use the TimingSimulator oracle"
        )
    if not tracing.tracing_enabled():
        return _replay(events, memory, policy)
    with tracing.span(
        "phase2.replay",
        policy=policy.value,
        beta=memory.memory_cycle,
        fills=events.n_fills,
    ):
        return _replay(events, memory, policy)


def _replay(
    events: EventStream, memory: MainMemory, policy: StallPolicy
) -> TimingResult:
    """The replay kernel (pre-validated inputs)."""
    beta = memory.memory_cycle
    bus_width = memory.bus_width
    n_chunks = events.line_size // bus_width
    # Mirrors MainMemory.line_fill_duration / copy_back_duration.
    fill_duration = n_chunks * beta

    d = events.derived
    miss_index = d.miss_index
    miss_offset = d.miss_offset
    miss_dirty = d.miss_dirty
    first_after = d.first_access_after_miss
    touch_ptr = d.touch_ptr
    touch_index = d.touch_index
    touch_offset = d.touch_offset

    is_fs = policy is StallPolicy.FULL_STALL
    is_bl = policy is StallPolicy.BUS_LOCKED
    is_bnl1 = policy is StallPolicy.BUS_NOT_LOCKED_1
    is_bnl2 = policy is StallPolicy.BUS_NOT_LOCKED_2

    time = 0.0
    bus_busy = 0.0
    read_stall = 0.0
    flush_stall = 0.0
    last_index = -1  # instruction whose processing ended at `time`
    # The in-flight fill left behind by the previous miss (partial
    # policies only): (start, end, critical_chunk) or None.
    fill: tuple[float, float, int] | None = None

    for j, index in enumerate(miss_index):
        # ---- the window of the previous fill -------------------------
        if fill is not None:
            start, end, critical = fill
            if is_bl:
                # Any load/store during the fill waits for fill end.
                engaged = first_after[j - 1]
                if engaged >= 0:
                    at = time + (engaged - last_index - 1)
                    if at < end:
                        read_stall += end - at
                        time = end + 1.0  # the engaged hit's issue slot
                        last_index = engaged
            elif is_bnl1:
                # Only a re-touch of the in-flight line waits (to end).
                lo, hi = touch_ptr[j - 1], touch_ptr[j]
                if hi > lo:
                    engaged = touch_index[lo]
                    at = time + (engaged - last_index - 1)
                    if at < end:
                        read_stall += end - at
                        time = end + 1.0
                        last_index = engaged
            else:
                # BNL2/BNL3: walk the re-touches until the fill is over.
                for p in range(touch_ptr[j - 1], touch_ptr[j]):
                    engaged = touch_index[p]
                    at = time + (engaged - last_index - 1)
                    if at >= end:
                        break
                    position = (touch_offset[p] // bus_width - critical) % n_chunks
                    arrival = start + (position + 1) * beta
                    if is_bnl2:
                        if arrival <= at:
                            continue  # word already there: no stall
                        read_stall += end - at
                        time = end + 1.0
                        last_index = engaged
                        break
                    # BNL3: wait just for the word itself.
                    resume = arrival if arrival > at else at
                    read_stall += resume - at
                    time = resume + 1.0
                    last_index = engaged

        # ---- the miss itself -----------------------------------------
        time += index - last_index - 1  # plain 1-cycle instructions
        if fill is not None and time < fill[1]:
            # A second miss waits for the single fill port (all
            # partial policies; FS never leaves a fill outstanding).
            read_stall += fill[1] - time
            time = fill[1]
        start = time if time > bus_busy else bus_busy
        bus_busy = start + fill_duration
        end = start + n_chunks * beta  # == FillSchedule.end_time
        resume = end if is_fs else start + 1 * beta  # critical word
        stall = resume - time
        read_stall += stall if stall > 0.0 else 0.0
        time = resume if resume > time else time
        fill = None if is_fs else (start, end, miss_offset[j] // bus_width)
        if miss_dirty[j]:
            # Copy-back: the processor pays the transfer time only; the
            # bus reservation starts once the fill clears the bus.
            flush_start = time if time > bus_busy else bus_busy
            bus_busy = flush_start + fill_duration
            flush_stall += fill_duration
            time += fill_duration
        last_index = index

    # ---- the window of the last fill, then the tail of the trace -----
    if fill is not None:
        n = events.n_instructions
        start, end, critical = fill
        j = len(miss_index)
        if is_bl:
            engaged = first_after[j - 1]
            if engaged >= 0:
                at = time + (engaged - last_index - 1)
                if at < end:
                    read_stall += end - at
                    time = end + 1.0
                    last_index = engaged
        elif is_bnl1:
            lo, hi = touch_ptr[j - 1], touch_ptr[j]
            if hi > lo:
                engaged = touch_index[lo]
                at = time + (engaged - last_index - 1)
                if at < end:
                    read_stall += end - at
                    time = end + 1.0
                    last_index = engaged
        else:
            for p in range(touch_ptr[j - 1], touch_ptr[j]):
                engaged = touch_index[p]
                at = time + (engaged - last_index - 1)
                if at >= end:
                    break
                position = (touch_offset[p] // bus_width - critical) % n_chunks
                arrival = start + (position + 1) * beta
                if is_bnl2:
                    if arrival <= at:
                        continue
                    read_stall += end - at
                    time = end + 1.0
                    last_index = engaged
                    break
                resume = arrival if arrival > at else at
                read_stall += resume - at
                time = resume + 1.0
                last_index = engaged

    time += events.n_instructions - 1 - last_index

    result = TimingResult(
        instructions=events.n_instructions,
        cycles=time,
        read_miss_stall_cycles=read_stall,
        flush_stall_cycles=flush_stall,
        write_stall_cycles=0.0,
        line_fills=events.stats.line_fills,
        memory_cycle=beta,
    )
    metrics.record_timing("replay", result)
    return result


def simulate(
    instructions: Sequence[Instruction],
    config: CacheConfig,
    memory: MainMemory,
    policy: StallPolicy = StallPolicy.FULL_STALL,
    write_buffer_depth: int | None = None,
    issue_rate: float = 1.0,
    events: EventStream | None = None,
) -> TimingResult:
    """One call site for both engines.

    Uses the two-phase replay when the configuration supports it (pass
    ``events`` to reuse a memoized phase-1 extraction), otherwise falls
    back to the step-simulator oracle.
    """
    if supports_replay(config, memory, policy, write_buffer_depth, issue_rate):
        if events is None:
            events = extract_events(instructions, config)
        return replay(events, memory, policy)
    metrics.inc("engine.step_fallback.dispatches")
    simulator = TimingSimulator(
        config,
        memory,
        policy=policy,
        write_buffer_depth=write_buffer_depth,
        issue_rate=issue_rate,
    )
    with tracing.span(
        "engine.step_simulate",
        policy=policy.value,
        beta=memory.memory_cycle,
        write_buffer_depth=write_buffer_depth,
    ):
        return simulator.run(instructions)
