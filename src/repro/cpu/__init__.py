"""Processor timing substrate.

An in-order RISC timing model (one instruction per cycle when nothing
stalls — paper assumption 4) that composes the cache state model with the
memory timing models and charges stall cycles according to the Table 2
blocking policies.  Its headline product is the measured stalling factor
``phi`` that the analytic tradeoffs consume (Figure 1, Eq. 8).
"""

from repro.cpu.nonblocking import MSHRSimulator, mshr_stall_factors
from repro.cpu.processor import TimingResult, TimingSimulator
from repro.cpu.replay import REPLAY_POLICIES, replay, simulate, supports_replay
from repro.cpu.stall_engine import StallEngine
from repro.cpu.stall_measure import (
    average_stall_percentages,
    measure_stall_factor,
    stall_factor_eq8,
)

__all__ = [
    "TimingSimulator",
    "TimingResult",
    "MSHRSimulator",
    "mshr_stall_factors",
    "StallEngine",
    "REPLAY_POLICIES",
    "replay",
    "simulate",
    "supports_replay",
    "measure_stall_factor",
    "stall_factor_eq8",
    "average_stall_percentages",
]
