"""Stalling-factor measurement (paper Section 4.2, Eq. 8, Figure 1).

Two independent estimators are provided:

* :func:`measure_stall_factor` — run the full timing simulator and read
  ``phi`` off the cycle accounting (the ground truth for this codebase);
* :func:`stall_factor_eq8` — the paper's Eq. (8) for BNL1, computed from
  the distribution of instruction distances between consecutive
  references that engage an in-flight line::

      phi = (1 / Lambda_m) * sum_i max((L/D - 1) beta_m - dc_i, 0) / beta_m + 1

  where ``dc_i`` is the instruction distance from a miss to the next
  load/store that stalls on its fill.  The "+1" is the basic read-miss
  time (the critical word's ``beta_m``).

Figure 1 averages the simulator's ``phi`` (as a percentage of ``L/D``)
over the six SPEC92 stand-in programs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.cache.cache import Cache, CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.processor import TimingSimulator
from repro.memory.mainmem import MainMemory
from repro.trace.record import Instruction, OpKind


def measure_stall_factor(
    instructions: Iterable[Instruction],
    cache_config: CacheConfig,
    policy: StallPolicy,
    memory_cycle: float,
    bus_width: int,
) -> float:
    """Simulated ``phi`` for one trace/policy/``beta_m`` combination.

    Routed through the two-phase engine (:mod:`repro.cpu.replay`) when
    the configuration supports it; the step simulator otherwise.  The
    two produce identical cycle counts (the replay equivalence suite
    pins this), so callers see one oracle either way.
    """
    from repro.cpu.replay import simulate

    if not isinstance(instructions, Sequence):
        instructions = list(instructions)
    return simulate(
        instructions,
        cache_config,
        MainMemory(memory_cycle, bus_width),
        policy=policy,
    ).stall_factor


def miss_distances(
    instructions: Iterable[Instruction], cache_config: CacheConfig
) -> list[int]:
    """Instruction distances feeding Eq. (8).

    For each cache miss, the number of instructions until the *first*
    subsequent load/store that engages the in-flight line — either by
    re-touching the missed line or by missing again.  A BNL1 cache stalls
    that access until the fill completes
    (``max((L/D - 1) beta_m - dc, 0)`` cycles), after which the line is
    resident and later accesses are free, so exactly one distance is
    recorded per miss.  Misses whose fill is never engaged contribute no
    distance (no overlap stall).  Functional (untimed) pass.
    """
    cache = Cache(cache_config)
    amap = cache.address_map
    distances: list[int] = []
    last_miss_index: int | None = None
    last_miss_line: int | None = None
    window_open = False
    for index, inst in enumerate(instructions):
        if inst.kind is OpKind.ALU:
            continue
        line_address = amap.line_address(inst.address)
        if inst.kind is OpKind.LOAD:
            outcome = cache.read(inst.address)
        else:
            outcome = cache.write(inst.address)
        engages = (not outcome.hit) or (line_address == last_miss_line)
        if engages and window_open and last_miss_index is not None:
            distances.append(index - last_miss_index)
            window_open = False
        if not outcome.hit:
            last_miss_index = index
            last_miss_line = line_address
            window_open = True
    return distances


def stall_factor_eq8(
    distances: Sequence[int],
    n_misses: int,
    bus_cycles_per_line: int,
    memory_cycle: float,
) -> float:
    """Eq. (8) evaluated over a miss-distance sample.

    ``distances`` are the ``dc_i`` from :func:`miss_distances`;
    ``n_misses`` is ``Lambda_m`` for the same run.  The result is clipped
    to the BNL1 bounds ``[1, L/D]``.
    """
    if n_misses <= 0:
        raise ValueError("n_misses must be positive")
    if memory_cycle < 1:
        raise ValueError("memory_cycle must be >= 1")
    fill_tail = (bus_cycles_per_line - 1) * memory_cycle
    overlap = sum(max(fill_tail - dc, 0.0) for dc in distances)
    phi = overlap / (n_misses * memory_cycle) + 1.0
    return min(float(bus_cycles_per_line), max(1.0, phi))


def average_stall_percentages(
    traces: Mapping[str, Sequence[Instruction]],
    cache_config: CacheConfig,
    policies: Sequence[StallPolicy],
    memory_cycles: Sequence[float],
    bus_width: int,
) -> dict[StallPolicy, list[float]]:
    """Figure 1's data: mean ``phi`` (% of L/D) per policy per ``beta_m``.

    Accepts any sequence type per trace (tuples pass straight through
    from the memoized trace cache — no defensive copies).  Phase 1 of
    the two-phase engine runs once per trace; every (policy,
    ``beta_m``) grid point is then a timing replay over the event
    stream, averaged across traces exactly as the paper averages its
    six SPEC92 programs.  Policies the replay cannot express fall back
    to the step simulator with identical results.
    """
    from repro.cache.events import extract_events
    from repro.cpu.replay import replay, supports_replay

    if not traces:
        raise ValueError("need at least one trace")
    bus_cycles_per_line = cache_config.line_size // bus_width
    probe = MainMemory(memory_cycles[0] if memory_cycles else 1.0, bus_width)
    any_fast = any(supports_replay(cache_config, probe, p) for p in policies)
    events = (
        {
            name: extract_events(instructions, cache_config)
            for name, instructions in traces.items()
        }
        if any_fast
        else {}
    )
    result: dict[StallPolicy, list[float]] = {}
    for policy in policies:
        row: list[float] = []
        for beta_m in memory_cycles:
            memory = MainMemory(beta_m, bus_width)
            fast = supports_replay(cache_config, memory, policy)
            total = 0.0
            for name, instructions in traces.items():
                if fast:
                    timing = replay(events[name], memory, policy)
                else:
                    timing = TimingSimulator(
                        cache_config, memory, policy=policy
                    ).run(instructions)
                total += timing.stall_percentage(bus_cycles_per_line)
            row.append(total / len(traces))
        result[policy] = row
    return result
