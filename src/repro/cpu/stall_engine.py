"""Per-policy stall semantics during a line fill (paper Section 3.2).

Given an in-flight fill and a subsequent memory access, each Table 2
policy answers two questions:

1. *miss resume* — after a miss issues its fill, when may the processor
   continue?  FS waits for the whole line; every partial policy resumes
   when the critical (requested) chunk arrives.
2. *subsequent access* — a load/store issued while the fill is still in
   progress may stall depending on what it touches:

   ========  ===========================  ==========================
   policy    access to the filling line    miss to another line
   ========  ===========================  ==========================
   BL        wait for fill end             wait for fill end (and any
                                           *hit* also waits: the whole
                                           cache bus is locked)
   BNL1      wait for fill end             wait for fill end
   BNL2      proceed if its chunk has      wait for fill end
             arrived, else fill end
   BNL3      wait for its chunk            wait for fill end
   NB        wait for its chunk            wait for fill end
   ========  ===========================  ==========================

   (NB additionally does not stall on the *original* miss at all —
   modelling an ideal non-blocking load whose value is not needed until
   the data returns.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stalling import StallPolicy
from repro.memory.mainmem import FillSchedule


@dataclass(frozen=True)
class AccessContext:
    """What the engine needs to know about a pending access."""

    time: float
    line_address: int
    offset_in_line: int
    would_hit: bool


class StallEngine:
    """Implements the Table 2 blocking semantics for one policy."""

    def __init__(self, policy: StallPolicy, bus_width: int) -> None:
        self.policy = policy
        self.bus_width = bus_width

    def miss_resume_time(self, fill: FillSchedule) -> float:
        """When the processor resumes after its own miss starts ``fill``."""
        if self.policy is StallPolicy.FULL_STALL:
            return fill.end_time
        if self.policy is StallPolicy.NON_BLOCKING:
            return fill.start_time  # ideal non-blocking load: no stall
        return fill.first_arrival

    def subsequent_access_resume(
        self, fill: FillSchedule, access: AccessContext
    ) -> float:
        """Earliest time ``access`` may proceed while ``fill`` is active.

        Returns ``access.time`` when no stall applies.  Callers must only
        invoke this while ``access.time < fill.end_time``.
        """
        policy = self.policy
        time = access.time
        if policy is StallPolicy.FULL_STALL:
            # FS never leaves a fill outstanding past the miss itself.
            return time

        on_fill_line = access.line_address == fill.line_address

        if policy is StallPolicy.BUS_LOCKED:
            # The cache bus is locked for the remainder of the fill:
            # every load/store waits, hit or miss, any line.
            return max(time, fill.end_time)

        if not on_fill_line:
            # BNL*/NB: other lines are accessible, but a second *miss*
            # must wait for the single fill port to free up.
            if access.would_hit:
                return time
            return max(time, fill.end_time)

        # Access to the line currently being filled.
        if policy is StallPolicy.BUS_NOT_LOCKED_1:
            return max(time, fill.end_time)
        word_arrival = fill.arrival_for_offset(access.offset_in_line, self.bus_width)
        if policy is StallPolicy.BUS_NOT_LOCKED_2:
            # Satisfied by a partially filled line only if the word is
            # already there; otherwise wait for the entire line.
            return time if word_arrival <= time else max(time, fill.end_time)
        # BNL3 and NB: wait just for the word itself.
        return max(time, word_arrival)
