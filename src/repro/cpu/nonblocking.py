"""Non-blocking cache with multiple outstanding misses (MSHRs).

The paper bounds the NB stalling factor at 0 but notes it "was not
evaluated from the simulation" and that "subsequent load/store accesses
will be stalled unless the mechanism for supporting multiple load/store
miss is provided" (Section 5.3).  This module provides that mechanism:
miss status holding registers (Kroft-style) allow up to ``mshr_count``
fills in flight, so a second miss no longer waits for the first fill to
finish — only for a free MSHR and its turn on the bus.

:class:`MSHRSimulator` mirrors :class:`~repro.cpu.TimingSimulator`'s
accounting (the Eq. 2 attribution rules), so its measured ``phi`` drops
into the Section 4.2 tradeoff unchanged, extending Figure 1 with the
curve the paper left open.  With ``mshr_count = 1`` it reduces to the
single-outstanding NB engine (verified in tests).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cache.cache import Cache, CacheConfig
from repro.cpu.processor import TimingResult
from repro.memory.bus import Bus
from repro.memory.mainmem import FillSchedule, MainMemory
from repro.trace.record import Instruction, OpKind


class MSHRSimulator:
    """Timing simulation of an ideal non-blocking cache with k MSHRs.

    Model (all per the paper's assumptions elsewhere):

    * a miss allocates an MSHR and schedules its fill on the shared bus
      (fills serialize on the bus but overlap with execution);
    * the missing load itself does not stall (ideal NB: the value is not
      needed before the data returns);
    * an access to any in-flight line waits for its word's arrival;
    * a miss with every MSHR busy stalls until the earliest fill
      completes;
    * dirty victims stall for the copy-back like the FS baseline
      (combine with a write buffer analytically via Section 4.3).
    """

    def __init__(
        self,
        cache_config: CacheConfig,
        memory: MainMemory,
        mshr_count: int = 4,
        load_use_distance: float | None = None,
    ) -> None:
        if mshr_count <= 0:
            raise ValueError(f"mshr_count must be positive, got {mshr_count}")
        if load_use_distance is not None and load_use_distance < 0:
            raise ValueError(
                f"load_use_distance must be non-negative, got {load_use_distance}"
            )
        if cache_config.line_size % memory.bus_width:
            raise ValueError(
                f"cache line ({cache_config.line_size}) must be a multiple "
                f"of the bus width ({memory.bus_width})"
            )
        self.cache = Cache(cache_config)
        self.memory = memory
        self.mshr_count = mshr_count
        #: The NB idealization knob.  ``None`` (default) assumes a missing
        #: load's value is never needed before the data returns — the
        #: Table 2 phi -> 0 bound.  A finite value d means the consumer
        #: sits d instructions behind the load, so the processor stalls
        #: ``max(0, word_arrival - (t + d))`` when it reaches the use —
        #: d = 0 degenerates to blocking-on-use, large d recovers the
        #: ideal.  This interpolates across the paper's NB interval.
        self.load_use_distance = load_use_distance
        self.bus = Bus()
        self._fills: dict[int, FillSchedule] = {}
        self.peak_outstanding = 0

    def _expire(self, time: float) -> None:
        self._fills = {
            line: fill
            for line, fill in self._fills.items()
            if fill.end_time > time
        }

    def _earliest_completion(self) -> float:
        return min(fill.end_time for fill in self._fills.values())

    def run(self, instructions: Iterable[Instruction]) -> TimingResult:
        """Simulate a stream; returns the standard cycle accounting."""
        time = 0.0
        read_stall = flush_stall = write_stall = 0.0
        count = 0
        line_size = self.cache.config.line_size

        for inst in instructions:
            count += 1
            if inst.kind is OpKind.ALU:
                time += 1.0
                continue

            self._expire(time)
            amap = self.cache.address_map
            line_address = amap.line_address(inst.address)
            offset = amap.offset(inst.address)

            # Access to an in-flight line: wait for the word.
            fill = self._fills.get(line_address)
            if fill is not None:
                arrival = fill.arrival_for_offset(offset, self.memory.bus_width)
                if arrival > time:
                    read_stall += arrival - time
                    time = arrival
                self._expire(time)

            if inst.kind is OpKind.LOAD:
                outcome = self.cache.read(inst.address)
            else:
                outcome = self.cache.write(inst.address)

            if outcome.fill_line:
                # Need an MSHR; stall until one frees if all busy.
                if len(self._fills) >= self.mshr_count:
                    freed_at = self._earliest_completion()
                    if freed_at > time:
                        read_stall += freed_at - time
                        time = freed_at
                    self._expire(time)
                duration = self.memory.line_fill_duration(line_size)
                start = self.bus.reserve(time, duration)
                schedule = self.memory.schedule_fill(
                    line_address, line_size, offset, start
                )
                self._fills[line_address] = schedule
                self.peak_outstanding = max(
                    self.peak_outstanding, len(self._fills)
                )
                # Ideal NB: the missing access itself retires for free
                # (phi may approach 0 when MSHRs absorb everything).  With
                # a finite load-use distance, the dependent consumer d
                # instructions later stalls for the critical word.
                if (
                    self.load_use_distance is not None
                    and inst.kind is OpKind.LOAD
                ):
                    use_time = time + self.load_use_distance
                    if schedule.first_arrival > use_time:
                        read_stall += schedule.first_arrival - use_time
                        time = schedule.first_arrival - self.load_use_distance
                if outcome.flush_line_address is not None:
                    flush_duration = self.memory.copy_back_duration(line_size)
                    self.bus.reserve(time, flush_duration)
                    flush_stall += flush_duration
                    time += flush_duration
            elif outcome.write_around:
                duration = self.memory.write_duration(inst.size)
                start = self.bus.reserve(time, duration)
                done = start + duration
                write_stall += done - time
                time = done
            else:
                time += 1.0

        stats = self.cache.stats
        return TimingResult(
            instructions=count,
            cycles=time,
            read_miss_stall_cycles=read_stall,
            flush_stall_cycles=flush_stall,
            write_stall_cycles=write_stall,
            line_fills=stats.line_fills,
            memory_cycle=self.memory.memory_cycle,
        )


def mshr_stall_factors(
    instructions: list[Instruction],
    cache_config: CacheConfig,
    memory_cycle: float,
    bus_width: int,
    mshr_counts: tuple[int, ...] = (1, 2, 4, 8),
    events=None,
) -> dict[int, float]:
    """Measured NB ``phi`` per MSHR count — the paper's open curve.

    Diminishing returns appear quickly: most of the benefit of multiple
    outstanding misses is captured by 2-4 MSHRs on cache-friendly codes.

    Pass a pre-extracted ``events`` stream (phase 1 of the two-phase
    engine) to run each count through the exact
    :func:`repro.cpu.replay.replay_mshr` kernel instead of stepping the
    simulator; results are bitwise identical either way.
    """
    if events is not None:
        # Lazy import keeps this module importable without the replay
        # engine (and guards against future import cycles).
        from repro.cpu.replay import replay_mshr

        memory = MainMemory(memory_cycle, bus_width)
        return {
            count: replay_mshr(events, memory, mshr_count=count).stall_factor
            for count in mshr_counts
        }
    result = {}
    for count in mshr_counts:
        simulator = MSHRSimulator(
            cache_config, MainMemory(memory_cycle, bus_width), mshr_count=count
        )
        result[count] = simulator.run(instructions).stall_factor
    return result
