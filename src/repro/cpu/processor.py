"""In-order processor timing simulator.

Composes the cache state model (:mod:`repro.cache`), a memory timing
model (:mod:`repro.memory`) and the Table 2 stall semantics
(:mod:`repro.cpu.stall_engine`) into a cycle-count simulation of an
instruction stream.  Beyond the total cycle count it keeps the stall
cycles *attributed by cause* — read misses, copy-backs, write traffic —
because the paper's Eq. (2) models exactly those three terms and the
measured stalling factor is ``phi = read-miss stalls / (Lambda_m *
beta_m)``.

Model notes (all per the paper's assumptions in Section 3):

* one instruction retires per cycle when nothing stalls;
* at most one line fill is outstanding (single fill port);
* fills are critical-word-first;
* without write buffers, a dirty victim's copy-back stalls the processor
  for the full ``(L/D) * beta_m`` right at the miss;
* with read-bypassing write buffers, copy-backs are posted and drain
  while the bus is idle; a read conflicting with a buffered line first
  forces a full drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.cache.cache import Cache, CacheConfig
from repro.core.stalling import StallPolicy
from repro.cpu.stall_engine import AccessContext, StallEngine
from repro.obs import metrics as obs_metrics
from repro.memory.bus import Bus
from repro.memory.mainmem import FillSchedule, MainMemory
from repro.memory.write_buffer import WriteBuffer
from repro.trace.record import Instruction, OpKind


@dataclass(frozen=True)
class TimingResult:
    """Cycle accounting of one simulated run."""

    instructions: int
    cycles: float
    read_miss_stall_cycles: float
    flush_stall_cycles: float
    write_stall_cycles: float
    line_fills: int
    memory_cycle: float

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def stall_factor(self) -> float:
        """Measured ``phi``: read-miss stall per miss, in ``beta_m`` units."""
        if self.line_fills == 0:
            return 0.0
        return self.read_miss_stall_cycles / (self.line_fills * self.memory_cycle)

    def stall_percentage(self, bus_cycles_per_line: int) -> float:
        """Figure 1's y axis: ``phi`` as a percentage of ``L/D``."""
        if bus_cycles_per_line <= 0:
            raise ValueError("bus_cycles_per_line must be positive")
        return 100.0 * self.stall_factor / bus_cycles_per_line


class TimingSimulator:
    """Cycle-count simulation of an instruction stream.

    Parameters
    ----------
    cache_config:
        Data-cache geometry/policies.
    memory:
        Timing model — :class:`~repro.memory.MainMemory` or
        :class:`~repro.memory.PipelinedMemory`.
    policy:
        Blocking behaviour during fills (Table 2).
    write_buffer_depth:
        ``None`` disables write buffers (copy-backs stall synchronously);
        otherwise a read-bypassing buffer of that depth is used.
    """

    def __init__(
        self,
        cache_config: CacheConfig,
        memory: MainMemory,
        policy: StallPolicy = StallPolicy.FULL_STALL,
        write_buffer_depth: int | None = None,
        issue_rate: float = 1.0,
    ) -> None:
        if cache_config.line_size % memory.bus_width:
            raise ValueError(
                f"cache line ({cache_config.line_size}) must be a multiple "
                f"of the bus width ({memory.bus_width})"
            )
        if issue_rate < 1.0:
            raise ValueError(f"issue_rate must be >= 1, got {issue_rate}")
        #: instructions retired per cycle when nothing stalls (Section 6
        #: extension); memory stalls are serialization points and do not
        #: scale with issue width.
        self.issue_rate = float(issue_rate)
        self.cache = Cache(cache_config)
        self.memory = memory
        self.policy = policy
        self.engine = StallEngine(policy, memory.bus_width)
        self.bus = Bus()
        self.write_buffer = (
            WriteBuffer(write_buffer_depth) if write_buffer_depth else None
        )
        self._active_fill: FillSchedule | None = None

    def run(self, instructions: Iterable[Instruction]) -> TimingResult:
        """Simulate a stream and return the cycle accounting."""
        time = 0.0
        read_miss_stall = 0.0
        flush_stall = 0.0
        write_stall = 0.0
        count = 0

        issue_cost = 1.0 / self.issue_rate
        for inst in instructions:
            count += 1
            if inst.kind is OpKind.ALU:
                time += issue_cost
                continue
            time, dr, df, dw = self._memory_op(inst, time)
            read_miss_stall += dr
            flush_stall += df
            write_stall += dw

        stats = self.cache.stats
        result = TimingResult(
            instructions=count,
            cycles=time,
            read_miss_stall_cycles=read_miss_stall,
            flush_stall_cycles=flush_stall,
            write_stall_cycles=write_stall,
            line_fills=stats.line_fills,
            memory_cycle=self.memory.memory_cycle,
        )
        obs_metrics.record_timing("step", result)
        if self.write_buffer is not None:
            for name, value in self.write_buffer.counter_snapshot().items():
                obs_metrics.inc(f"write_buffer.{name}", value)
        return result

    # -- internals -------------------------------------------------------

    def _memory_op(
        self, inst: Instruction, time: float
    ) -> tuple[float, float, float, float]:
        """One load/store; returns (new_time, d_read, d_flush, d_write)."""
        read_stall = flush_stall = write_stall = 0.0
        amap = self.cache.address_map
        line_address = amap.line_address(inst.address)
        offset = amap.offset(inst.address)

        # 1. Stalls imposed by an in-flight fill (partial policies).
        fill = self._active_fill
        if fill is not None and time < fill.end_time:
            resume = self.engine.subsequent_access_resume(
                fill,
                AccessContext(
                    time=time,
                    line_address=line_address,
                    offset_in_line=offset,
                    would_hit=self.cache.contains(inst.address),
                ),
            )
            read_stall += resume - time
            time = resume
        if fill is not None and time >= fill.end_time:
            self._active_fill = None

        # 2. Read-bypass conflict: a reference to a buffered dirty line
        #    forces the write buffer to drain before memory is consistent.
        if (
            self.write_buffer is not None
            and not self.cache.contains(inst.address)
            and self.write_buffer.conflicts_with(line_address)
        ):
            drained = self.write_buffer.flush_all(time)
            write_stall += drained - time
            time = drained

        # 3. The cache access itself.
        if inst.kind is OpKind.LOAD:
            outcome = self.cache.read(inst.address)
        else:
            outcome = self.cache.write(inst.address)

        # 4. Memory-side consequences.
        if outcome.fill_line:
            time, dr, df = self._start_fill(line_address, offset, time, outcome)
            read_stall += dr
            flush_stall += df
        if outcome.write_around or outcome.write_through:
            duration = self.memory.write_duration(inst.size)
            if self.write_buffer is not None:
                stall = self.write_buffer.post(line_address, duration, time)
                write_stall += stall
                time += stall
            else:
                start = self.bus.reserve(time, duration)
                done = start + duration
                write_stall += done - time
                time = done

        # 5. The instruction's own issue slot.  Eq. (2) charges a missing
        # load/store phi*beta_m (or beta_m for a write-around) *instead of*
        # its issue slot — the (E - Lambda_m) term excludes misses — so
        # the slot (1/issue_rate cycles) applies only to hits.
        if not (outcome.fill_line or outcome.write_around):
            time += 1.0 / self.issue_rate
        return time, read_stall, flush_stall, write_stall

    def _start_fill(
        self,
        line_address: int,
        offset: int,
        time: float,
        outcome,
    ) -> tuple[float, float, float]:
        """Launch a line fill (and handle the victim copy-back)."""
        read_stall = flush_stall = 0.0
        line_size = self.cache.config.line_size

        # Give the write buffer any idle bus time that has elapsed.
        if self.write_buffer is not None:
            freed = self.write_buffer.drain_idle(self.bus.busy_until, time)
            if freed > self.bus.busy_until:
                self.bus.busy_until = freed

        duration = self.memory.line_fill_duration(line_size)
        start = self.bus.reserve(time, duration)
        schedule = self.memory.schedule_fill(line_address, line_size, offset, start)

        resume = self.engine.miss_resume_time(schedule)
        read_stall += max(0.0, resume - time)
        time = max(time, resume)
        if self.policy is StallPolicy.FULL_STALL:
            self._active_fill = None
        else:
            self._active_fill = schedule

        if outcome.flush_line_address is not None:
            flush_duration = self.memory.copy_back_duration(line_size)
            if self.write_buffer is not None:
                stall = self.write_buffer.post(
                    outcome.flush_line_address, flush_duration, time
                )
                flush_stall += stall
                time += stall
            else:
                # Eq. (2) charges flushes exactly (alpha R / D) * beta_m —
                # the transfer time, not any wait for the fill to clear the
                # bus — so the processor stalls for the duration only; the
                # bus reservation keeps occupancy accounting honest.
                self.bus.reserve(time, flush_duration)
                flush_stall += flush_duration
                time += flush_duration
        return time, read_stall, flush_stall
